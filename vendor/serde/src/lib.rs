//! Vendored, offline subset of the `serde` API used by the `dlsr`
//! workspace.
//!
//! Unlike real serde's zero-copy serializer/deserializer architecture, this
//! stub serializes through an owned JSON-like [`Value`] tree: `Serialize`
//! lowers to a `Value`, `Deserialize` lifts from one. `serde_json` (also
//! vendored) renders and parses that tree. The `#[derive(Serialize,
//! Deserialize)]` macros come from the vendored `serde_derive` and target
//! these traits. The call-site surface used by the workspace —
//! `#[derive(..)]`, `#[serde(from/into)]`, `serde_json::{json!, Value,
//! to_string, to_string_pretty, to_vec, from_str, from_slice}` — behaves
//! like the real crates for the types this workspace serializes.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like data model shared by `Serialize` and `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (ordered map for deterministic output).
    Object(BTreeMap<String, Value>),
}

/// The `Value` returned for absent keys/indices, so indexing chains like
/// `v["a"][0]["b"]` behave like serde_json.
static NULL: Value = Value::Null;

impl Value {
    /// Self as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Self as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Self as i64, if an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Self as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Self as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Self as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Self as an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether self is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lower a value into the [`Value`] data model.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Lift a value out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string to obtain `'static` lifetime. Real serde borrows
    /// from the input buffer instead; this stub has no buffer to borrow
    /// from. Fine at test scale, where `&'static str` fields are rare and
    /// deserialized a bounded number of times.
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::msg(concat!("expected integer ", stringify!($t)))),
                }
            }
        }
    )*};
}

serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|n| n as $t).ok_or_else(|| Error::msg("expected number"))
            }
        }
    )*};
}

serialize_float!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if arr.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} elements", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u64, "x".to_string(), 2.5f64);
        assert_eq!(<(u64, String, f64)>::from_value(&t.to_value()).unwrap(), t);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn indexing_missing_is_null() {
        let v = Value::Object(Default::default());
        assert!(v["nope"][3].is_null());
    }
}
