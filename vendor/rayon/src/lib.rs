//! Vendored, offline subset of the `rayon` API used by the `dlsr` workspace.
//!
//! This is **not** the real rayon: the container this workspace builds in has
//! no access to crates.io, so the workspace ships a minimal data-parallelism
//! layer with the same call-site surface (`par_iter`, `par_iter_mut`,
//! `par_chunks`, `par_chunks_mut`, `enumerate`, `zip`, `for_each`,
//! `current_num_threads`). Semantics relevant to the workspace hold:
//!
//! - Work is partitioned into **contiguous, disjoint** index ranges, so any
//!   kernel whose output regions are disjoint per item is race-free and
//!   bitwise deterministic for every thread count.
//! - The thread count honours `RAYON_NUM_THREADS` (falling back to
//!   [`std::thread::available_parallelism`]), read once per process.
//! - Parallelism is implemented with [`std::thread::scope`], so borrowed
//!   data works exactly like real rayon. With one thread the closure runs
//!   inline with zero dispatch overhead.

use std::sync::OnceLock;

pub mod iter;
pub mod slice;

/// Everything the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::ParallelProducer;
    pub use crate::slice::{AsParallelSlice, AsParallelSliceMut};
}

static NUM_THREADS: OnceLock<usize> = OnceLock::new();

/// Number of worker threads parallel iterators fan out to.
///
/// Honours `RAYON_NUM_THREADS` (values `< 1` are clamped to 1), otherwise
/// uses the machine's available parallelism.
pub fn current_num_threads() -> usize {
    *NUM_THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon::join worker panicked"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v = vec![0u64; 10_000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u64);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn par_chunks_mut_is_disjoint_and_ordered() {
        let mut v = vec![0u32; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i as u32;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, (i / 10) as u32);
        }
    }

    #[test]
    fn zip_pairs_in_lockstep() {
        let a: Vec<u32> = (0..5000).collect();
        let mut b = vec![0u32; 5000];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(y, &x)| *y = x * 2);
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i as u32));
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
