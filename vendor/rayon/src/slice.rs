//! Extension traits putting `par_iter`/`par_iter_mut`/`par_chunks`/
//! `par_chunks_mut` on slices and `Vec`, mirroring rayon's
//! `ParallelSlice`/`ParallelSliceMut`/`IntoParallelRefIterator` surface.

use crate::iter::{ParChunks, ParChunksMut, ParIter, ParIterMut};

/// Parallel views over shared slices.
pub trait AsParallelSlice<T: Sync> {
    /// The underlying shared slice.
    fn as_parallel_slice(&self) -> &[T];

    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter(self.as_parallel_slice())
    }

    /// Parallel iterator over `chunk_size`-sized pieces (last may be short).
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ParChunks {
            slice: self.as_parallel_slice(),
            chunk: chunk_size,
        }
    }
}

/// Parallel views over mutable slices.
pub trait AsParallelSliceMut<T: Send> {
    /// The underlying mutable slice.
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut(self.as_parallel_slice_mut())
    }

    /// Parallel iterator over mutable `chunk_size`-sized pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size != 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self.as_parallel_slice_mut(),
            chunk: chunk_size,
        }
    }
}

impl<T: Sync> AsParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

impl<T: Send> AsParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T: Sync> AsParallelSlice<T> for Vec<T> {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

impl<T: Send> AsParallelSliceMut<T> for Vec<T> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}
