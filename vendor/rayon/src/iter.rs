//! Splittable parallel producers and the adaptors (`enumerate`, `zip`)
//! used across the workspace.
//!
//! A producer knows its length, can be split at an index, and lowers to a
//! plain sequential iterator; `for_each` cuts it into one contiguous piece
//! per worker thread and drains the pieces on scoped threads. Partition
//! boundaries depend only on the thread count, and every element is visited
//! exactly once by exactly one thread.

use crate::current_num_threads;

/// A splittable, exactly-sized source of items that can be consumed in
/// parallel. This plays the role of rayon's `ParallelIterator` +
/// `IndexedParallelIterator` for the subset of chains the workspace uses.
pub trait ParallelProducer: Sized + Send {
    /// The item handed to `for_each`.
    type Item: Send;
    /// Sequential lowering of this producer.
    type Seq: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;

    /// Whether the producer is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Lower to a sequential iterator over the remaining items.
    fn into_seq(self) -> Self::Seq;

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: 0,
            inner: self,
        }
    }

    /// Walk two equally-long producers in lockstep.
    fn zip<B: ParallelProducer>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Consume every item, fanning out to [`current_num_threads`] scoped
    /// threads over contiguous disjoint splits.
    fn for_each(self, f: impl Fn(Self::Item) + Sync + Send) {
        let threads = current_num_threads().min(self.len()).max(1);
        if threads <= 1 {
            self.into_seq().for_each(f);
            return;
        }
        let mut parts = Vec::with_capacity(threads);
        let mut rest = self;
        for i in 0..threads - 1 {
            let remaining = rest.len();
            let take = remaining / (threads - i);
            let (head, tail) = rest.split_at(take);
            parts.push(head);
            rest = tail;
        }
        parts.push(rest);
        std::thread::scope(|s| {
            for part in parts {
                let f = &f;
                s.spawn(move || part.into_seq().for_each(f));
            }
        });
    }
}

/// Shared-slice producer yielding `&T`.
pub struct ParIter<'a, T: Sync>(pub(crate) &'a [T]);

impl<'a, T: Sync> ParallelProducer for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (ParIter(a), ParIter(b))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter()
    }
}

/// Mutable-slice producer yielding `&mut T`.
pub struct ParIterMut<'a, T: Send>(pub(crate) &'a mut [T]);

impl<'a, T: Send> ParallelProducer for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(mid);
        (ParIterMut(a), ParIterMut(b))
    }

    fn into_seq(self) -> Self::Seq {
        self.0.iter_mut()
    }
}

/// Shared chunked producer yielding `&[T]`.
pub struct ParChunks<'a, T: Sync> {
    pub(crate) slice: &'a [T],
    pub(crate) chunk: usize,
}

impl<'a, T: Sync> ParallelProducer for ParChunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at(at);
        (
            ParChunks {
                slice: a,
                chunk: self.chunk,
            },
            ParChunks {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks(self.chunk)
    }
}

/// Mutable chunked producer yielding `&mut [T]`.
pub struct ParChunksMut<'a, T: Send> {
    pub(crate) slice: &'a mut [T],
    pub(crate) chunk: usize,
}

impl<'a, T: Send> ParallelProducer for ParChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (
            ParChunksMut {
                slice: a,
                chunk: self.chunk,
            },
            ParChunksMut {
                slice: b,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.chunk)
    }
}

/// `enumerate()` adaptor: items become `(global_index, item)`.
pub struct Enumerate<P> {
    base: usize,
    inner: P,
}

impl<P: ParallelProducer> ParallelProducer for Enumerate<P> {
    type Item = (usize, P::Item);
    type Seq = std::iter::Zip<std::ops::RangeFrom<usize>, P::Seq>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(mid);
        (
            Enumerate {
                base: self.base,
                inner: a,
            },
            Enumerate {
                base: self.base + mid,
                inner: b,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        (self.base..).zip(self.inner.into_seq())
    }
}

/// `zip()` adaptor over two lockstep-split producers.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelProducer, B: ParallelProducer> ParallelProducer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a0, a1) = self.a.split_at(mid);
        let (b0, b1) = self.b.split_at(mid);
        (Zip { a: a0, b: b0 }, Zip { a: a1, b: b1 })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}
