//! Vendored, offline subset of the `proptest` API used by the `dlsr`
//! workspace: the [`proptest!`] macro, range/tuple/`collection::vec`
//! strategies, `prop_map`, `bool::ANY`, and the `prop_assert*` family.
//!
//! Differences from real proptest, acceptable for this workspace's tests:
//! inputs are drawn from a deterministic per-test RNG (seed = FNV of the
//! test name, overridable via `PROPTEST_SEED`) and failing cases are
//! reported with their seed but **not shrunk**. `.proptest-regressions`
//! files are ignored.

use rand::{Rng, SeedableRng};

/// Re-exports used by property tests via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// RNG handed to strategies while generating a case.
pub struct TestRng(rand::rngs::SmallRng);

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen(&mut rng.0)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy yielding `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rand::Rng::gen_range(&mut rng.0, self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Test driver used by the expansion of [`proptest!`]. Runs `config.cases`
/// generated cases; panics with the case index and seed on the first
/// failure so the run can be reproduced with `PROPTEST_SEED`.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(test_name));
    let mut rejected = 0u32;
    for i in 0..config.cases {
        let seed = base_seed.wrapping_add(i as u64);
        let mut rng = TestRng(rand::rngs::SmallRng::seed_from_u64(seed));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {test_name}: case {i} failed (seed {seed}): {msg}")
            }
        }
    }
    if rejected == config.cases && config.cases > 0 {
        panic!("proptest {test_name}: every case was rejected by prop_assume!");
    }
}

/// Define property tests. Mirrors proptest's surface: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_internal!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_internal!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_internal {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_internal!(($config) $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert two values differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                __l, __r
            )));
        }
    }};
}

/// Skip the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, f32)>> {
        crate::collection::vec((0u64..10, -1.0f32..1.0), 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, f in -2.0f32..2.0, b in crate::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(u8::from(b) <= 1);
        }

        /// collection::vec honours length and element strategies.
        #[test]
        fn vec_strategy_bounds(v in pairs()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (n, f) in v {
                prop_assert!(n < 10, "n = {n}");
                prop_assert!((-1.0..1.0).contains(&f));
            }
        }

        /// prop_map applies its transform.
        #[test]
        fn map_applies(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assume!(doubled > 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
