//! Vendored, offline subset of the `criterion` API used by the `dlsr`
//! workspace: `Criterion`, `benchmark_group`/`sample_size`/`bench_function`/
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated so one sample takes a
//! few milliseconds, then `sample_size` samples are timed and the min /
//! median / max ns-per-iteration are printed. There is no statistical
//! regression analysis, plotting, or result persistence. `--test` (used by
//! CI smoke runs) executes every benchmark body exactly once without
//! timing; a bare positional argument filters benchmarks by substring,
//! matching cargo-bench conventions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id with only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called in a loop. In `--test` mode `f` runs once,
    /// untimed.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate the per-sample iteration count so one sample lands
        // near 5 ms, keeping total time bounded for slow kernels.
        let target = Duration::from_millis(5);
        let mut iters: u64 = 1;
        let mut elapsed;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            elapsed = t0.elapsed();
            if elapsed >= target || iters >= 1 << 24 {
                break;
            }
            let scale = if elapsed.is_zero() {
                16.0
            } else {
                (target.as_secs_f64() / elapsed.as_secs_f64()).clamp(1.5, 16.0)
            };
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }
        self.samples_ns
            .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
        for _ in 1..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Build from CLI arguments: `--test` enables smoke mode, the first
    /// bare argument becomes a substring filter, other flags are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => c.test_mode = true,
                // Flags with a value we must consume and ignore.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with('-') => {}
                s => {
                    if c.filter.is_none() {
                        c.filter = Some(s.to_owned());
                    }
                }
            }
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let name = id.into().label();
        run_one(self, &name, 10, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark (min 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(self.criterion, &label, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label());
        run_one(self.criterion, &label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group. Present for API parity; reporting is per-benchmark.
    pub fn finish(self) {}
}

fn run_one(
    criterion: &mut Criterion,
    label: &str,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: criterion.test_mode,
        sample_size,
        samples_ns: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if criterion.test_mode {
        println!("Testing {label} ... ok");
        return;
    }
    if b.samples_ns.is_empty() {
        println!("{label}: no samples (closure never called Bencher::iter)");
        return;
    }
    b.samples_ns.sort_by(|x, y| x.total_cmp(y));
    let min = b.samples_ns[0];
    let med = b.samples_ns[b.samples_ns.len() / 2];
    let max = b.samples_ns[b.samples_ns.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(med),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generate `main` running the given groups with CLI-derived config.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 5,
            samples_ns: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            black_box(n)
        });
        assert_eq!(b.samples_ns.len(), 5);
        assert!(b.samples_ns.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            sample_size: 10,
            samples_ns: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 64).label(), "f/64");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
