//! Vendored, offline subset of the `parking_lot` API used by the `dlsr`
//! workspace: `Mutex` and `RwLock` with panic-free (`lock()` without
//! `unwrap()`) guards, backed by `std::sync`. Poisoning is translated into
//! a panic at the lock site, matching parking_lot's behaviour of never
//! returning a `Result`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's `lock() -> Guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's unwrapped guard signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
