//! Vendored, offline subset of the `crossbeam` API used by the `dlsr`
//! workspace: `crossbeam::channel::{unbounded, Sender, Receiver}`.
//!
//! Backed by `std::sync::mpsc`; the receiver is wrapped in an
//! `Arc<Mutex<..>>` so it is `Clone + Send + Sync` like crossbeam's MPMC
//! receiver.

/// Multi-producer channels (crossbeam-channel surface).
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors only if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel (cloneable; clones share the
    /// queue, each message is delivered to exactly one receiver).
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner().recv_timeout(timeout)
        }

        /// Drain messages until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_delivery() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            drop((tx, tx2));
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn disconnect_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
