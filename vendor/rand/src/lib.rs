//! Vendored, offline subset of the `rand` 0.8 API used by the `dlsr`
//! workspace: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::gen` and
//! `Rng::gen_range` over primitive ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand 0.8's 64-bit `SmallRng` uses — so statistical quality
//! is comparable, though exact output streams are not guaranteed to match
//! the real crate. Nothing in this workspace depends on the concrete
//! stream, only on per-seed determinism, which holds.

/// Random number generators.
pub mod rngs {
    pub use crate::small::SmallRng;

    /// Alias: the workspace treats the standard RNG as the small one.
    pub type StdRng = SmallRng;
}

mod small {
    /// xoshiro256++ — small, fast, non-cryptographic PRNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as recommended by the xoshiro
            // authors and used by rand for seed_from_u64.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sources of randomness: the minimal core trait.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64(seed)
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 24 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = r.gen_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
