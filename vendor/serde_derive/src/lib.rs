//! `#[derive(Serialize, Deserialize)]` for the vendored value-tree serde
//! stub. Hand-rolled token parsing (no `syn`/`quote` available offline).
//!
//! Supported shapes — the ones the `dlsr` workspace uses:
//! - structs with named fields (serialized as JSON objects),
//! - tuple structs (serialized as JSON arrays),
//! - enums with unit variants (serialized as the variant-name string) and
//!   data variants (externally tagged, `{"Variant": ...}`),
//! - the container attribute `#[serde(from = "T", into = "T")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct ContainerAttrs {
    from: Option<String>,
    into: Option<String>,
}

#[derive(Debug)]
enum Shape {
    /// Named-field struct with field names.
    Struct(Vec<String>),
    /// Tuple struct with field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, variant shape).
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

/// Split a token list at top-level commas. Tracks `<`/`>` depth so commas
/// inside generic arguments (`BTreeMap<String, Vec<usize>>`) do not split —
/// angle brackets are plain puncts, not token groups.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading `#[...]` attribute pairs and `pub`/`pub(..)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // '#' + [..] group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Field name of one named-field segment: first ident before the `:`.
fn field_name(segment: &[TokenTree]) -> Option<String> {
    let seg = skip_attrs_and_vis(segment);
    match seg.first() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Parse `#[serde(from = "T", into = "T")]` out of an attribute group body.
fn parse_serde_attr(body: &[TokenTree], attrs: &mut ContainerAttrs) {
    let mut i = 0;
    while i < body.len() {
        if let TokenTree::Ident(key) = &body[i] {
            let key = key.to_string();
            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                (body.get(i + 1), body.get(i + 2))
            {
                if eq.as_char() == '=' {
                    let v = lit.to_string().trim_matches('"').to_string();
                    match key.as_str() {
                        "from" => attrs.from = Some(v),
                        "into" => attrs.into = Some(v),
                        _ => {}
                    }
                    i += 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;

    // Container attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let body: Vec<TokenTree> = args.stream().into_iter().collect();
                                parse_serde_attr(&body, &mut attrs);
                            }
                        }
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name} is not supported by the vendored derive"
            ));
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_commas(&body)
                    .iter()
                    .filter(|seg| !seg.is_empty())
                    .filter_map(|seg| field_name(seg))
                    .collect::<Vec<_>>();
                Shape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let n = split_commas(&body).iter().filter(|s| !s.is_empty()).count();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for seg in split_commas(&body) {
                    let seg = skip_attrs_and_vis(&seg);
                    if seg.is_empty() {
                        continue;
                    }
                    let vname = match &seg[0] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => return Err(format!("bad enum variant token {other:?}")),
                    };
                    let vshape = match seg.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            let n = split_commas(&body).iter().filter(|s| !s.is_empty()).count();
                            VariantShape::Tuple(n)
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            let fields = split_commas(&body)
                                .iter()
                                .filter(|s| !s.is_empty())
                                .filter_map(|s| field_name(s))
                                .collect::<Vec<_>>();
                            VariantShape::Struct(fields)
                        }
                        _ => VariantShape::Unit,
                    };
                    variants.push((vname, vshape));
                }
                Shape::Enum(variants)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        other => return Err(format!("cannot derive for {other}")),
    };

    Ok(Item { name, attrs, shape })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(into) = &item.attrs.into {
        return format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{\n\
                     let wire: {into} = <{name} as ::std::clone::Clone>::clone(self).into();\n\
                     serde::Serialize::to_value(&wire)\n\
                 }}\n\
             }}\n"
        );
    }
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("serde::Value::Object(m)");
            s
        }
        Shape::Tuple(n) => {
            let elems = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("serde::Value::Array(vec![{elems}])")
        }
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::String(\"{v}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders = (0..*n)
                            .map(|i| format!("ref __f{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("serde::Value::Array(vec![{elems}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => {{\n\
                                 let mut m = ::std::collections::BTreeMap::new();\n\
                                 m.insert(\"{v}\".to_string(), {payload});\n\
                                 serde::Value::Object(m)\n\
                             }},\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| format!("ref {f}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner =
                            String::from("let mut fm = ::std::collections::BTreeMap::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\".to_string(), serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{\n\
                                 {inner}\
                                 let mut m = ::std::collections::BTreeMap::new();\n\
                                 m.insert(\"{v}\".to_string(), serde::Value::Object(fm));\n\
                                 serde::Value::Object(m)\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    if let Some(from) = &item.attrs.from {
        return format!(
            "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
                     let wire: {from} = serde::Deserialize::from_value(v)?;\n\
                     ::std::result::Result::Ok(wire.into())\n\
                 }}\n\
             }}\n"
        );
    }
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| serde::Error::msg(\"expected object for {name}\"))?;\n\
                 static __NULL: serde::Value = serde::Value::Null;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::Deserialize::from_value(obj.get(\"{f}\").unwrap_or(&__NULL))\
                         .map_err(|e| serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let arr = v.as_array().ok_or_else(|| serde::Error::msg(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(serde::Error::msg(format!(\n\
                         \"expected {n} elements for {name}, got {{}}\", arr.len())));\n\
                 }}\n"
            );
            let elems = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!("::std::result::Result::Ok({name}({elems}))"));
            s
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut string_arms = String::new();
            let mut obj_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => string_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{v}(serde::Deserialize::from_value(val)?))"
                            )
                        } else {
                            let elems = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{{\n\
                                     let arr = val.as_array().ok_or_else(|| serde::Error::msg(\"expected array for {name}::{v}\"))?;\n\
                                     if arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err(serde::Error::msg(\"wrong arity for {name}::{v}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{v}({elems}))\n\
                                 }}"
                            )
                        };
                        obj_arms.push_str(&format!("\"{v}\" => {build},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inner = format!(
                            "{{\n\
                                 let obj = val.as_object().ok_or_else(|| serde::Error::msg(\"expected object for {name}::{v}\"))?;\n\
                                 static __NULL: serde::Value = serde::Value::Null;\n\
                                 ::std::result::Result::Ok({name}::{v} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: serde::Deserialize::from_value(obj.get(\"{f}\").unwrap_or(&__NULL))?,\n"
                            ));
                        }
                        inner.push_str("})\n}");
                        obj_arms.push_str(&format!("\"{v}\" => {inner},\n"));
                    }
                }
            }
            format!(
                "match v {{\n\
                     serde::Value::String(s) => match s.as_str() {{\n\
                         {string_arms}\
                         other => ::std::result::Result::Err(serde::Error::msg(format!(\n\
                             \"unknown {name} variant {{other}}\"))),\n\
                     }},\n\
                     serde::Value::Object(m) if m.len() == 1 => {{\n\
                         let (k, val) = m.iter().next().unwrap();\n\
                         #[allow(unused_variables)]\n\
                         match k.as_str() {{\n\
                             {obj_arms}\
                             other => ::std::result::Result::Err(serde::Error::msg(format!(\n\
                                 \"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(serde::Error::msg(\"bad value for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

/// Derive the vendored `serde::Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize must parse"),
        Err(e) => format!("compile_error!(\"derive(Serialize): {e}\");")
            .parse()
            .unwrap(),
    }
}

/// Derive the vendored `serde::Deserialize` (value-tree lifting).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize must parse"),
        Err(e) => format!("compile_error!(\"derive(Deserialize): {e}\");")
            .parse()
            .unwrap(),
    }
}
