//! Vendored, offline subset of the `serde_json` API used by the `dlsr`
//! workspace: [`Value`], [`json!`], [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`from_str`], [`from_slice`].
//!
//! Works over the vendored value-tree `serde` stub. Numbers are stored as
//! `f64`; integral values in `±2^53` render without a fractional part and
//! round-trip exactly, which covers every count/byte/shape field this
//! workspace serializes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Convert any serializable value to its [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string. The `Result` mirrors serde_json's
/// signature; this implementation cannot fail.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &value.to_value(), None, 0);
    Ok(s)
}

/// Serialize to a human-readable two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &value.to_value(), Some(2), 0);
    Ok(s)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize any supported type from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Deserialize any supported type from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::msg)?;
    from_str(s)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // serde_json rejects non-finite floats; emit null like its
        // lossy writers do.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(map) => {
            let keys: Vec<&String> = map.keys().collect();
            write_seq(out, indent, depth, '{', '}', keys.len(), |out, i| {
                write_escaped(out, keys[i]);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &map[keys[i]], indent, depth + 1);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::msg)?,
                                16,
                            )
                            .map_err(Error::msg)?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::msg)?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error::msg(format!("bad number {text:?}: {e}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::msg(format!("bad array token {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(Error::msg(format!("bad object token {other:?}"))),
            }
        }
    }
}

/// Build a [`Value`] with JSON literal syntax, interpolating any
/// `serde::Serialize` expression in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object_internal!(map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: accumulate array elements. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    ([$($elems:expr),*]) => { vec![$($elems),*] };
    ([$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([$($elems,)* $crate::json!(null)] $($($rest)*)?)
    };
    ([$($elems:expr),*] [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([$($elems,)* $crate::json!([ $($arr)* ])] $($($rest)*)?)
    };
    ([$($elems:expr),*] { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([$($elems,)* $crate::json!({ $($obj)* })] $($($rest)*)?)
    };
    ([$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([$($elems,)* $crate::json!($next)] $($($rest)*)?)
    };
}

/// Internal: accumulate object entries. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    ($map:ident ()) => {};
    ($map:ident () $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!(null));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:literal : [ $($arr:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($arr)* ]));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:literal : { $($obj:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($obj)* }));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
    ($map:ident () $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_object_internal!($map () $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({
            "figure": "14",
            "series": [ { "batch": 4, "img_s": 1.25 }, { "batch": 8, "img_s": null } ],
            "ok": true,
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["series"][0]["batch"].as_u64(), Some(4));
        assert!(back["series"][1]["img_s"].is_null());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&json!({ "n": 5u64 })).unwrap(), "{\"n\":5}");
        assert_eq!(to_string(&json!([1.5f64])).unwrap(), "[1.5]");
    }

    #[test]
    fn pretty_has_indentation() {
        let s = to_string_pretty(&json!({ "a": [1, 2] })).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({ "s": "a\"b\\c\nd\té" });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_from_str() {
        let m: std::collections::BTreeMap<String, Vec<usize>> =
            from_str("{\"w\": [2, 3]}").unwrap();
        assert_eq!(m["w"], vec![2, 3]);
    }
}
