//! Backend shoot-out: one allreduce of EDSR-sized gradients on 4 GPUs,
//! timed under every configuration the paper compares — default MPI,
//! MPI-Reg, MPI-Opt and NCCL — plus the transport mix each one used.
//!
//! Run with: `cargo run --release --example backend_shootout`

use dlsr::prelude::*;

fn main() {
    let topo = ClusterTopology::lassen(1);
    let elems = 10 << 20; // 40 MB — above the IPC threshold
    println!(
        "== 40 MB gradient allreduce on {} GPUs ==\n",
        topo.total_gpus()
    );
    println!(
        "{:<10} {:>11} {:>13} {:>13} {:>9}",
        "config", "time (ms)", "NVLink (MB)", "staged (MB)", "correct"
    );

    for sc in Scenario::ALL {
        let res = MpiWorld::run(&topo, sc.mpi_config(), move |c| {
            let mut buf: Vec<f32> = (0..elems).map(|i| (c.rank() + i % 7) as f32).collect();
            let t0 = c.now();
            match sc.backend() {
                Backend::Nccl => Nccl::all_reduce(c, &mut buf, 1),
                Backend::Mpi => {
                    Allreduce::new(&mut buf).buf_id(1).run(c);
                }
            }
            let elapsed = c.now() - t0;
            // verify against the sequential sum
            let p = c.size();
            let ok = (0..16).all(|i| {
                let want: f32 = (0..p).map(|r| (r + i % 7) as f32).sum();
                (buf[i] - want).abs() < 1e-3
            });
            (elapsed, c.stats().nvlink_bytes, c.stats().staged_bytes, ok)
        });
        let slowest = res.ranks.iter().map(|r| r.0).fold(0.0f64, f64::max);
        let nvlink: u64 = res.ranks.iter().map(|r| r.1).sum();
        let staged: u64 = res.ranks.iter().map(|r| r.2).sum();
        let ok = res.ranks.iter().all(|r| r.3);
        println!(
            "{:<10} {:>11.2} {:>13} {:>13} {:>9}",
            sc.label(),
            slowest * 1e3,
            nvlink >> 20,
            staged >> 20,
            if ok { "yes" } else { "NO" }
        );
    }

    println!("\nDefault MPI stages every byte through the host; MPI-Opt and NCCL");
    println!("ride NVLink — the mechanism behind the paper's Table I.");
}
