//! Standard-benchmark-style evaluation (§II-E lists Set5, Set14, Urban100,
//! DIV2K as the usual SR suites): train one small residual EDSR, then score
//! it against bicubic on synthetic stand-ins for each suite, reporting the
//! usual PSNR/SSIM table.
//!
//! Run: `cargo run --release --example benchmark_eval`

use dlsr::prelude::*;
use dlsr::tensor::{elementwise, resize, Tensor};

fn train(scale: usize) -> Edsr {
    let cfg = EdsrConfig {
        n_resblocks: 3,
        n_feats: 16,
        scale,
        mean_shift: false,
        ..EdsrConfig::tiny()
    };
    let mut model = Edsr::new(cfg, 7);
    model.zero_output_conv();
    let mut opt = Adam::new(2e-3);
    let spec = SyntheticImageSpec {
        height: 64,
        width: 64,
        shapes: 12,
        texture: 0.0,
        ..Default::default()
    };
    let dataset = Div2kSynthetic::new(spec, 8, scale, 42);
    let mut loader = DataLoader::new(dataset, 16, 8, ShardSpec::single());
    for step in 0..250u64 {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let bi = resize::bicubic_upsample(&lr_batch, scale).expect("bicubic");
        let target = elementwise::sub(&hr_batch, &bi).expect("target");
        let pred = model.forward(&lr_batch).expect("forward");
        let (_, grad) = dlsr::nn::loss::l1_loss(&pred, &target).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(&mut model);
    }
    model
}

fn super_resolve(model: &mut Edsr, lr: &Tensor, scale: usize) -> Tensor {
    let bi = resize::bicubic_upsample(lr, scale).expect("bicubic");
    elementwise::add(&bi, &model.predict(lr).expect("predict")).expect("add")
}

fn main() {
    let scale = 2;
    println!("== benchmark evaluation, x{scale} (synthetic suite stand-ins) ==\n");
    let mut model = train(scale);

    println!(
        "{:<16} {:>7} {:>13} {:>12} {:>13} {:>12}",
        "suite", "images", "bicubic PSNR", "EDSR PSNR", "bicubic SSIM", "EDSR SSIM"
    );
    for set in [
        EvalSet::set5_like(scale),
        EvalSet::set14_like(scale),
        EvalSet::urban100_like(scale),
    ] {
        let bi_psnr = set.average(|hr, lr| {
            psnr(&resize::bicubic_upsample(lr, scale).unwrap(), hr, 1.0).unwrap()
        });
        let sr_psnr =
            set.average(|hr, lr| psnr(&super_resolve(&mut model, lr, scale), hr, 1.0).unwrap());
        let bi_ssim = set.average(|hr, lr| {
            ssim(&resize::bicubic_upsample(lr, scale).unwrap(), hr, 1.0).unwrap()
        });
        let sr_ssim =
            set.average(|hr, lr| ssim(&super_resolve(&mut model, lr, scale), hr, 1.0).unwrap());
        println!(
            "{:<16} {:>7} {:>12.2}dB {:>11.2}dB {:>13.4} {:>12.4}",
            set.name(),
            set.len(),
            bi_psnr,
            sr_psnr,
            bi_ssim,
            sr_ssim
        );
    }
    println!("\nAfter 250 CPU steps on 8 images the residual EDSR generalizes to");
    println!("parity (±0.25 dB) with bicubic on out-of-distribution suites — the");
    println!("published 1–3 dB gains come from ~300k-step runs on 800 DIV2K images,");
    println!("i.e. the compute budget whose distribution the paper studies.");
    println!("(synthetic suites echo the content statistics of their namesakes;");
    println!("absolute values are not comparable to published Set5/Set14 scores)");
}
