//! Checkpoint/resume: hour-scale cluster jobs (the paper's are) live by
//! checkpoints. Train an EDSR for a while, save a binary state dict,
//! rebuild a fresh model from disk, and verify the resumed trajectory
//! continues where the original left off.
//!
//! Run: `cargo run --release --example checkpoint_resume`

use dlsr::nn::checkpoint::StateDict;
use dlsr::prelude::*;

fn make_loader() -> DataLoader {
    let spec = SyntheticImageSpec {
        height: 48,
        width: 48,
        ..Default::default()
    };
    DataLoader::new(
        Div2kSynthetic::new(spec, 6, 2, 77),
        12,
        4,
        ShardSpec::single(),
    )
    .with_augmentation(true)
}

fn train_steps(
    model: &mut Edsr,
    opt: &mut Adam,
    loader: &mut DataLoader,
    from: u64,
    to: u64,
) -> f32 {
    let mut last = 0.0;
    for step in from..to {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let pred = model.forward(&lr_batch).expect("forward");
        let (loss, grad) = l1_loss(&pred, &hr_batch).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(model);
        last = loss;
    }
    last
}

fn main() {
    let ckpt_path = std::env::temp_dir().join("dlsr_example.ckpt");
    println!("== checkpoint/resume round trip ==\n");

    // phase 1: train 20 steps, checkpoint
    let mut model = Edsr::new(EdsrConfig::tiny(), 5);
    let mut opt = Adam::new(2e-3);
    let mut loader = make_loader();
    let loss_at_20 = train_steps(&mut model, &mut opt, &mut loader, 0, 20);
    StateDict::from_module(&mut model)
        .save(&ckpt_path)
        .expect("save checkpoint");
    println!(
        "trained 20 steps (loss {loss_at_20:.4}), checkpointed to {}",
        ckpt_path.display()
    );

    // phase 2: keep training the original for 10 more steps (the reference)
    let reference_loss = train_steps(&mut model, &mut opt, &mut loader, 20, 30);

    // phase 3: resume from disk into a freshly-initialized model
    let mut resumed = Edsr::new(EdsrConfig::tiny(), 999); // different init
    StateDict::load(&ckpt_path)
        .expect("load checkpoint")
        .load_into(&mut resumed)
        .expect("architectures match");
    // fresh Adam: moments are not checkpointed in this example, so the
    // trajectories agree at the restore point and then diverge slowly
    let mut resumed_opt = Adam::new(2e-3);
    let resumed_loss = train_steps(&mut resumed, &mut resumed_opt, &mut loader, 20, 30);

    println!("continued original: loss {reference_loss:.4} after 10 more steps");
    println!("resumed from disk : loss {resumed_loss:.4} after the same 10 steps");
    let gap = (reference_loss - resumed_loss).abs();
    println!("\ntrajectory gap {gap:.4} (small: parameters restored exactly;");
    println!("nonzero: optimizer moments restart — checkpoint those too for");
    println!("bit-exact resumes).");
    std::fs::remove_file(&ckpt_path).ok();
}
