//! Quickstart: train a small EDSR for single-image super-resolution on
//! synthetic DIV2K data — single process, real math — and beat classical
//! bicubic upsampling on a held-out image (the comparison of the paper's
//! Fig 4).
//!
//! Training uses global residual learning (`SR = bicubic↑LR + f(LR)`,
//! VDSR-style): with a zero-initialized output layer the model *starts* at
//! bicubic quality and improves from there, which makes small-scale CPU
//! demos converge quickly.
//!
//! Run with: `cargo run --release --example quickstart`

use dlsr::prelude::*;
use dlsr::tensor::{elementwise, resize};

fn main() {
    println!("== dlsr quickstart: residual EDSR(x2) on synthetic DIV2K ==\n");

    // 1. data: procedurally generated HR images + bicubic-downsampled LR
    let spec = SyntheticImageSpec {
        height: 64,
        width: 64,
        shapes: 12,
        texture: 0.0,
        ..Default::default()
    };
    let dataset = Div2kSynthetic::new(spec, 8, 2, 42);
    let mut loader = DataLoader::new(dataset, 16, 8, ShardSpec::single());

    // 2. model + optimizer (mean-shift off: the target is zero-centered)
    let cfg = EdsrConfig {
        n_resblocks: 3,
        n_feats: 16,
        mean_shift: false,
        ..EdsrConfig::tiny()
    };
    let mut model = Edsr::new(cfg, 7);
    model.zero_output_conv();
    let mut opt = Adam::new(2e-3);
    println!(
        "model: EDSR B={} F={} x{} ({} parameters), residual over bicubic",
        cfg.n_resblocks,
        cfg.n_feats,
        cfg.scale,
        cfg.num_params()
    );

    // 3. training loop (L1 loss on the bicubic residual, as VDSR/EDSR-style
    //    SR training does)
    let steps: u64 = 300;
    for step in 0..steps {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let bicubic = resize::bicubic_upsample(&lr_batch, 2).expect("bicubic");
        let target = elementwise::sub(&hr_batch, &bicubic).expect("residual target");
        let pred = model.forward(&lr_batch).expect("forward");
        let (loss, grad) = l1_loss(&pred, &target).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(&mut model);
        if step % 50 == 0 || step + 1 == steps {
            println!("step {step:>3}: residual L1 loss {loss:.4}");
        }
    }

    // 4. evaluate on a held-out image: EDSR vs plain bicubic
    let mut eval = Div2kSynthetic::new(spec, 1, 2, 4242);
    let (hr, lr) = eval.image(0);
    let (hr, lr) = (hr.clone(), lr.clone());
    let bicubic = resize::bicubic_upsample(&lr, 2).expect("bicubic");
    let sr = elementwise::add(&bicubic, &model.predict(&lr).expect("predict")).expect("add");

    let psnr_sr = psnr(&sr, &hr, 1.0).expect("psnr");
    let psnr_bi = psnr(&bicubic, &hr, 1.0).expect("psnr");
    let ssim_sr = ssim(&sr, &hr, 1.0).expect("ssim");
    let ssim_bi = ssim(&bicubic, &hr, 1.0).expect("ssim");

    // save the triple for visual inspection
    std::fs::create_dir_all("results").ok();
    dlsr::tensor::io::save_ppm(&hr, "results/quickstart_hr.ppm").expect("save HR");
    dlsr::tensor::io::save_ppm(&bicubic, "results/quickstart_bicubic.ppm").expect("save bicubic");
    dlsr::tensor::io::save_ppm(&sr, "results/quickstart_edsr.ppm").expect("save SR");
    println!("\nwrote results/quickstart_{{hr,bicubic,edsr}}.ppm for inspection");

    println!("\n== held-out image quality (higher is better) ==");
    println!("  bicubic : PSNR {psnr_bi:.2} dB   SSIM {ssim_bi:.4}");
    println!("  EDSR    : PSNR {psnr_sr:.2} dB   SSIM {ssim_sr:.4}");
    println!(
        "\nEDSR {} bicubic by {:.2} dB after {steps} steps (real EDSR training\nruns ~300k steps on DIV2K; the gap keeps widening).",
        if psnr_sr > psnr_bi { "beats" } else { "trails" },
        (psnr_sr - psnr_bi).abs()
    );
}
