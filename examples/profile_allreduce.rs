//! hvprof in action: profile the communication of 100 simulated EDSR
//! training steps on 4 GPUs under the default and optimized MPI
//! configurations, and print the paper's Table I.
//!
//! Run with: `cargo run --release --example profile_allreduce`

use dlsr::prelude::*;

fn main() {
    let (workload, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1); // 1 node × 4 GPUs, as in §III-B
    let steps = 100;

    println!(
        "== hvprof: {} training steps of {} on 4 GPUs ==\n",
        steps, workload.name
    );

    let default_run = run_training(
        &topo,
        Scenario::MpiDefault,
        &workload,
        &tensors,
        4,
        2,
        steps,
        3,
    );
    let opt_run = run_training(&topo, Scenario::MpiOpt, &workload, &tensors, 4, 2, steps, 3);

    println!("-- default MPI --");
    print!("{}", default_run.profile.render(Collective::Allreduce));
    println!("-- MPI-Opt --");
    print!("{}", opt_run.profile.render(Collective::Allreduce));

    println!("\n== Table I: Allreduce time performance improvement ==\n");
    let rows = compare(
        &default_run.profile,
        &opt_run.profile,
        Collective::Allreduce,
    );
    print!("{}", render_table(&rows));

    let total = rows.last().expect("total row");
    println!(
        "\ntotal allreduce improvement: {:.1} % (paper: 45.4 %)",
        total.improvement_pct
    );
    println!(
        "training throughput: {:.1} -> {:.1} img/s ({:+.1} %)",
        default_run.images_per_sec,
        opt_run.images_per_sec,
        (opt_run.images_per_sec / default_run.images_per_sec - 1.0) * 100.0
    );
}
