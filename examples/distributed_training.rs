//! Distributed EDSR training on a simulated 2-node × 4-GPU cluster:
//! real gradients flow through the Horovod → MPI stack, under both the
//! broken default configuration and the paper's MPI-Opt fix, and the
//! virtual wall-clock shows the difference.
//!
//! Run with: `cargo run --release --example distributed_training`

use dlsr::prelude::*;

fn main() {
    let topo = ClusterTopology::lassen(2); // 8 GPUs
    println!(
        "== distributed EDSR training on simulated {} ({} nodes × {} GPUs) ==\n",
        topo.name, topo.nodes, topo.gpus_per_node
    );

    let cfg = RealTrainConfig::builder()
        .global_batch(8)
        .steps(20)
        .lr(2e-3)
        .n_images(8)
        .seed(11)
        .build();

    for (label, mpi) in [
        (
            "default MPI (CUDA_VISIBLE_DEVICES pinned, no IPC)",
            MpiConfig::default_mpi(),
        ),
        (
            "MPI-Opt (MV2_VISIBLE_DEVICES + registration cache)",
            MpiConfig::mpi_opt(),
        ),
    ] {
        let result = train_real(&topo, mpi, &cfg);
        println!("-- {label} --");
        println!(
            "  loss: {:.4} -> {:.4} over {} steps",
            result.losses.first().unwrap(),
            result.losses.last().unwrap(),
            cfg.steps
        );
        println!(
            "  held-out PSNR: EDSR {:.2} dB vs bicubic {:.2} dB",
            result.model_psnr, result.bicubic_psnr
        );
        println!("  virtual makespan: {:.1} ms\n", result.makespan * 1e3);
    }

    println!("note: with tiny models the gradient messages sit below the IPC");
    println!("threshold, so both configurations stage through the host and the");
    println!("makespans are close. The paper-scale contrast is shown by");
    println!("`cargo run --release -p dlsr-bench --bin fig12_optimized_scaling`.");
}
