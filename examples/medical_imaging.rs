//! Domain scenario from the paper's motivation (§I: "DLSR methods have
//! also shown promise in domains such as medical imaging, surveillance,
//! and microscopy"): super-resolve low-resolution single-channel
//! microscopy-like scans with EDSR and quantify the gain over bicubic
//! interpolation at ×2 and ×4.
//!
//! Run with: `cargo run --release --example medical_imaging`

use dlsr::prelude::*;

/// Microscopy-like content: fine texture and sharp cell-boundary edges.
fn scan_spec(extent: usize) -> SyntheticImageSpec {
    SyntheticImageSpec {
        height: extent,
        width: extent,
        channels: 1,
        octaves: 5,
        shapes: 12,
        texture: 0.05,
    }
}

fn train_and_eval(scale: usize) -> (f32, f32) {
    let cfg = EdsrConfig {
        n_resblocks: 3,
        n_feats: 12,
        scale,
        res_scale: 0.1,
        colors: 1,
        // DIV2K RGB means are meaningless for single-channel scans
        mean_shift: false,
    };
    let mut model = Edsr::new(cfg, 99);
    // residual learning over bicubic (VDSR-style): start at the bicubic
    // baseline and learn only the correction
    model.zero_output_conv();
    let mut opt = Adam::new(1e-3);
    let dataset = Div2kSynthetic::new(scan_spec(64), 6, scale, 2024);
    let mut loader = DataLoader::new(dataset, 12, 6, ShardSpec::single());
    for step in 0..250u64 {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let bicubic = dlsr::tensor::resize::bicubic_upsample(&lr_batch, scale).expect("bicubic");
        let target = dlsr::tensor::elementwise::sub(&hr_batch, &bicubic).expect("target");
        let pred = model.forward(&lr_batch).expect("forward");
        let (_, grad) = l1_loss(&pred, &target).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(&mut model);
    }
    // held-out scan
    let mut eval = Div2kSynthetic::new(scan_spec(64), 1, scale, 777);
    let (hr, lr) = eval.image(0);
    let (hr, lr) = (hr.clone(), lr.clone());
    let bicubic = dlsr::tensor::resize::bicubic_upsample(&lr, scale).expect("bicubic");
    let residual = model.predict(&lr).expect("super-resolve");
    let sr = dlsr::tensor::elementwise::add(&bicubic, &residual).expect("add");
    (
        psnr(&sr, &hr, 1.0).expect("psnr"),
        psnr(&bicubic, &hr, 1.0).expect("psnr"),
    )
}

fn main() {
    println!("== EDSR for microscopy-like single-channel scans ==\n");
    for scale in [2usize, 4] {
        let (edsr_psnr, bicubic_psnr) = train_and_eval(scale);
        println!("x{scale} super-resolution of a held-out scan:");
        println!("  bicubic : {bicubic_psnr:.2} dB");
        println!(
            "  EDSR    : {edsr_psnr:.2} dB  ({:+.2} dB)\n",
            edsr_psnr - bicubic_psnr
        );
    }
    println!("After 250 CPU training steps the residual EDSR reaches parity with");
    println!("the bicubic baseline. Pushing past it takes the production-scale");
    println!("training the paper is about: ~10 img/s on a V100 means hundreds of");
    println!("GPU-hours per model — exactly why DLSR training needs HPC clusters");
    println!("(run the fig10..fig13 harnesses in dlsr-bench to see that story).");
}
