//! Table I / Fig 14 shape assertions: the hvprof profile of default vs
//! optimized training on 4 GPUs must show the paper's signature pattern —
//! large bins improve ~2×, small bins do not move.

use dlsr::prelude::*;

fn profiles() -> (Hvprof, Hvprof) {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1); // 4 GPUs, as in §III-B
    let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 2, 20, 3);
    let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 2, 20, 3);
    (d.profile, o.profile)
}

#[test]
fn table1_shape() {
    let (default, opt) = profiles();
    let rows = compare(&default, &opt, Collective::Allreduce);
    let total = rows.last().expect("total row");
    assert_eq!(total.bin, "Total Time");
    assert!(
        (25.0..60.0).contains(&total.improvement_pct),
        "total allreduce improvement {:.1} % (paper: 45.4 %)",
        total.improvement_pct
    );

    let row = |name: &str| rows.iter().find(|r| r.bin == name);
    // large bins improve by roughly half (paper: 53.1 % and 49.7 %)
    if let Some(r) = row("16 MB - 32 MB") {
        assert!(
            (30.0..65.0).contains(&r.improvement_pct),
            "16-32 MB improvement {:.1} %",
            r.improvement_pct
        );
    }
    let r = row("32 MB - 64 MB").expect("the dominant bin must exist");
    assert!(
        (30.0..65.0).contains(&r.improvement_pct),
        "32-64 MB improvement {:.1} %",
        r.improvement_pct
    );
    // the small bin's absolute delta is negligible (paper: 392.0 vs 391.2)
    let small = row("1-128 KB").expect("metrics traffic populates the small bin");
    assert!(
        (small.default_ms - small.optimized_ms).abs() < 0.2 * small.default_ms.max(1.0),
        "small-bin shift too large: {:.2} vs {:.2} ms",
        small.default_ms,
        small.optimized_ms
    );
    // the medium bin must not improve much either (paper: ≈0)
    let mid = row("128 KB - 16 MB").expect("leftover groups populate the mid bin");
    assert!(
        mid.improvement_pct < 20.0,
        "128KB-16MB improvement {:.1} % should be near zero",
        mid.improvement_pct
    );
}

#[test]
fn fig14_bins_are_populated_like_the_paper() {
    let (default, _) = profiles();
    let bins = default.bin_seconds(Collective::Allreduce);
    // every bin the paper shows carries traffic
    assert!(bins[0] > 0.0, "1-128 KB empty");
    assert!(bins[1] > 0.0, "128 KB-16 MB empty");
    assert!(bins[3] > 0.0, "32-64 MB empty");
    // and the 32-64 MB bin dominates (paper: 5145.6 of 7179.9 ms)
    let total: f64 = bins.iter().sum();
    assert!(
        bins[3] / total > 0.5,
        "32-64 MB bin should dominate: {:?}",
        bins
    );
}

#[test]
fn timeline_shows_less_allreduce_busy_time_under_mpi_opt() {
    // The HOROVOD_TIMELINE view of the same story: across all ranks, the
    // optimized configuration spends materially less wall time inside
    // allreduce, while compute time is invariant to the backend.
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1);
    let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 1, 5, 3);
    let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 5, 3);
    let d_ar = d.timeline.category_seconds("allreduce");
    let o_ar = o.timeline.category_seconds("allreduce");
    assert!(
        o_ar < 0.8 * d_ar,
        "MPI-Opt allreduce busy time {o_ar:.4}s not well below default {d_ar:.4}s"
    );
    assert!(d.timeline.category_seconds("negotiate") > 0.0);
    // the trace exports as valid Chrome-trace JSON
    let json = o.timeline.to_chrome_trace();
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert!(!parsed.as_array().expect("array").is_empty());
}

#[test]
fn rendered_table_is_well_formed() {
    let (default, opt) = profiles();
    let rows = compare(&default, &opt, Collective::Allreduce);
    let table = render_table(&rows);
    assert!(table.contains("Message Size"));
    assert!(table.contains("Total Time"));
    assert!(table.lines().count() >= rows.len() + 2);
}
