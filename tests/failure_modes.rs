//! Failure injection: the stack must fail loudly and precisely, not
//! silently mis-simulate.

use dlsr::gpu::{DeviceEnv, GpuId, IpcError, IpcRegistry};
use dlsr::nn::checkpoint::{CheckpointError, StateDict};
use dlsr::prelude::*;

/// Oversized batches surface the device's own OOM, with sizes in the error.
#[test]
fn oom_reports_requested_and_capacity() {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(1);
    let err = SimTrainer::new(w, tensors, 512, Scenario::MpiOpt, &topo, 1)
        .err()
        .expect("batch 512 cannot fit a 16 GB V100");
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
    assert!(msg.contains("MiB"), "{msg}");
}

/// The paper's exact failure: a pinned process cannot open a peer's IPC
/// handle, and the error says which mask blocked it.
#[test]
fn ipc_open_fails_under_pinned_mask_with_actionable_error() {
    let registry = IpcRegistry::new();
    let buf = dlsr::gpu::device::DeviceBuffer {
        device: GpuId { node: 0, local: 1 },
        id: 9,
        bytes: 64 << 20,
    };
    let handle = registry.get_mem_handle(buf);
    let err = registry
        .open_mem_handle(
            handle,
            GpuId { node: 0, local: 0 },
            &DeviceEnv::default_pinned(0),
        )
        .unwrap_err();
    assert!(matches!(err, IpcError::DeviceNotVisible { .. }));
    assert!(err.to_string().contains("CUDA_VISIBLE_DEVICES"), "{err}");
    // the fix makes the same open succeed
    assert!(registry
        .open_mem_handle(
            handle,
            GpuId { node: 0, local: 0 },
            &DeviceEnv::mpi_opt(0, 4)
        )
        .is_ok());
}

/// Loading a checkpoint into the wrong architecture is rejected, naming
/// the offending parameter.
#[test]
fn checkpoint_architecture_mismatch_is_rejected() {
    let mut small = Edsr::new(EdsrConfig::tiny(), 1);
    let dict = StateDict::from_module(&mut small);
    let mut wide = Edsr::new(
        EdsrConfig {
            n_feats: 16,
            ..EdsrConfig::tiny()
        },
        1,
    );
    let err = dict.load_into(&mut wide).unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, CheckpointError::Mismatch(_)));
    assert!(
        msg.contains("head.weight"),
        "should name the first bad tensor: {msg}"
    );
}

/// Misconfigured sharding fails at construction, not mid-training.
#[test]
#[should_panic(expected = "not divisible")]
fn indivisible_global_batch_panics_at_loader_construction() {
    let spec = SyntheticImageSpec {
        height: 32,
        width: 32,
        ..Default::default()
    };
    let ds = Div2kSynthetic::new(spec, 2, 2, 1);
    let _ = DataLoader::new(ds, 8, 7, ShardSpec { rank: 0, world: 4 });
}

/// A rank panic propagates out of the world launcher instead of hanging
/// (all ranks fail before any communication, so no partner blocks).
#[test]
#[should_panic(expected = "rank thread panicked")]
fn rank_panics_propagate() {
    let topo = ClusterTopology::lassen(1);
    let _ = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |_c| {
        panic!("deliberate rank failure");
        #[allow(unreachable_code)]
        ()
    });
}

/// Mean-shift configs reject inputs with the wrong channel count.
#[test]
fn model_rejects_wrong_channels() {
    let mut m = Edsr::new(EdsrConfig::tiny(), 1);
    let err = m.forward(&Tensor::zeros([1, 1, 8, 8])).unwrap_err();
    assert!(err.to_string().contains("Edsr input channels"), "{err}");
}
