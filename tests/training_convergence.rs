//! End-to-end training correctness: the full stack (tensor → nn → models →
//! data) actually learns to super-resolve.

use dlsr::prelude::*;
use dlsr::tensor::{elementwise, resize};

fn edge_spec() -> SyntheticImageSpec {
    SyntheticImageSpec {
        height: 64,
        width: 64,
        shapes: 12,
        texture: 0.0,
        ..Default::default()
    }
}

/// From-scratch EDSR training drives the L1 loss down by a large factor.
#[test]
fn from_scratch_loss_decreases_substantially() {
    let mut model = Edsr::new(EdsrConfig::tiny(), 7);
    let mut opt = Adam::new(2e-3);
    let dataset = Div2kSynthetic::new(edge_spec(), 8, 2, 42);
    let mut loader = DataLoader::new(dataset, 16, 8, ShardSpec::single());
    let mut first = None;
    let mut last = 0.0;
    for step in 0..60u64 {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let pred = model.forward(&lr_batch).expect("forward");
        let (loss, grad) = l1_loss(&pred, &hr_batch).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(&mut model);
        first.get_or_insert(loss);
        last = loss;
    }
    let first = first.unwrap();
    assert!(
        last < first * 0.5,
        "loss should at least halve: {first} -> {last}"
    );
}

/// Residual training (zero-initialized output conv) starts exactly at the
/// bicubic baseline and, after enough steps, beats it on a held-out image.
/// Everything is seeded, so this is fully deterministic.
#[test]
fn residual_edsr_beats_bicubic_on_held_out_image() {
    let cfg = EdsrConfig {
        n_resblocks: 3,
        n_feats: 16,
        mean_shift: false,
        ..EdsrConfig::tiny()
    };
    let mut model = Edsr::new(cfg, 7);
    model.zero_output_conv();
    let mut opt = Adam::new(2e-3);
    let dataset = Div2kSynthetic::new(edge_spec(), 8, 2, 42);
    let mut loader = DataLoader::new(dataset, 16, 8, ShardSpec::single());

    // with a zeroed output conv the model output is exactly zero, so
    // SR == bicubic at initialization
    let mut eval = Div2kSynthetic::new(edge_spec(), 1, 2, 4242);
    let (hr, lr) = eval.image(0);
    let (hr, lr) = (hr.clone(), lr.clone());
    let bicubic = resize::bicubic_upsample(&lr, 2).expect("bicubic");
    let init_residual = model.predict(&lr).expect("predict");
    assert!(
        init_residual.data().iter().all(|&v| v == 0.0),
        "zeroed output conv must produce the zero map"
    );

    for step in 0..300u64 {
        let (lr_batch, hr_batch) = loader.batch(0, step);
        let bi = resize::bicubic_upsample(&lr_batch, 2).expect("bicubic");
        let target = elementwise::sub(&hr_batch, &bi).expect("target");
        let pred = model.forward(&lr_batch).expect("forward");
        let (_, grad) = l1_loss(&pred, &target).expect("loss");
        model.backward(&grad).expect("backward");
        opt.step(&mut model);
    }

    let sr = elementwise::add(&bicubic, &model.predict(&lr).expect("predict")).expect("add");
    let psnr_sr = psnr(&sr, &hr, 1.0).expect("psnr");
    let psnr_bi = psnr(&bicubic, &hr, 1.0).expect("psnr");
    assert!(
        psnr_sr > psnr_bi,
        "trained residual EDSR ({psnr_sr:.2} dB) must beat bicubic ({psnr_bi:.2} dB)"
    );
}

/// Distributed real training on a simulated node learns too (the
/// `train_real` driver used by examples and equivalence tests).
#[test]
fn distributed_real_training_reduces_loss() {
    let topo = ClusterTopology::lassen(1);
    let cfg = RealTrainConfig::builder().steps(25).build();
    let result = train_real(&topo, MpiConfig::mpi_opt(), &cfg);
    let first: f32 = result.losses[..5].iter().sum::<f32>() / 5.0;
    let last: f32 = result.losses[result.losses.len() - 5..].iter().sum::<f32>() / 5.0;
    assert!(
        last < first,
        "distributed loss should fall: {first} -> {last}"
    );
    // virtual time advanced and communication actually happened
    assert!(result.makespan > 0.0);
}

/// PSNR/SSIM sanity on the data pipeline itself: the HR image equals
/// itself perfectly and the LR→HR bicubic reconstruction is lossy.
#[test]
fn metric_sanity_on_pipeline() {
    let mut ds = Div2kSynthetic::new(edge_spec(), 1, 2, 5);
    let (hr, lr) = ds.image(0);
    let up = resize::bicubic_upsample(lr, 2).expect("bicubic");
    assert_eq!(psnr(hr, hr, 1.0).unwrap(), f32::INFINITY);
    let p = psnr(&up, hr, 1.0).unwrap();
    assert!(p.is_finite() && p > 15.0 && p < 60.0, "bicubic PSNR {p}");
    let s = ssim(&up, hr, 1.0).unwrap();
    assert!(s > 0.5 && s < 1.0, "bicubic SSIM {s}");
}
