//! Experiment-shape assertions: the qualitative results of the paper's
//! evaluation must hold in the simulator at test-sized scales.

use dlsr::prelude::*;

fn measured() -> (WorkloadProfile, Vec<dlsr::horovod::TensorSpec>) {
    edsr_measured_workload()
}

/// Fig 10/12 shape: aggregate throughput grows with GPUs for every backend.
#[test]
fn throughput_grows_with_gpu_count() {
    let (w, tensors) = measured();
    for scenario in [Scenario::MpiDefault, Scenario::MpiOpt, Scenario::Nccl] {
        let pts = scaling_sweep(&[1, 2, 4], scenario, &w, &tensors, 4, 1, 4, 5);
        assert_eq!(pts[0].gpus, 4);
        assert_eq!(pts[2].gpus, 16);
        assert!(
            pts[1].images_per_sec > pts[0].images_per_sec
                && pts[2].images_per_sec > pts[1].images_per_sec,
            "{scenario:?} throughput not increasing: {:?}",
            pts.iter().map(|p| p.images_per_sec).collect::<Vec<_>>()
        );
    }
}

/// Fig 13 shape: efficiency decreases with scale, and is bounded by 1.
#[test]
fn efficiency_degrades_with_scale() {
    let (w, tensors) = measured();
    let pts = scaling_sweep(&[1, 4, 16], Scenario::MpiDefault, &w, &tensors, 4, 1, 4, 5);
    assert!(pts
        .iter()
        .all(|p| p.efficiency <= 1.02 && p.efficiency > 0.3));
    assert!(
        pts[2].efficiency < pts[0].efficiency,
        "efficiency should fall with scale: {:?}",
        pts.iter().map(|p| p.efficiency).collect::<Vec<_>>()
    );
}

/// Fig 12's headline at multi-node scale: MPI-Opt beats default MPI, and
/// the registration cache alone (MPI-Reg) sits in between.
#[test]
fn optimization_ordering_at_multi_node_scale() {
    let (w, tensors) = measured();
    let topo = ClusterTopology::lassen(8); // 32 GPUs
    let runs: Vec<TrainRun> = Scenario::ALL
        .iter()
        .map(|&s| run_training(&topo, s, &w, &tensors, 4, 1, 5, 5))
        .collect();
    let by = |s: Scenario| {
        runs.iter()
            .find(|r| r.scenario == s)
            .expect("scenario present")
            .images_per_sec
    };
    let (default, reg, opt) = (
        by(Scenario::MpiDefault),
        by(Scenario::MpiReg),
        by(Scenario::MpiOpt),
    );
    assert!(opt > default, "MPI-Opt {opt} <= default {default}");
    assert!(reg >= default, "MPI-Reg {reg} < default {default}");
    assert!(opt >= reg, "MPI-Opt {opt} < MPI-Reg {reg}");
}

/// Fig 11's cache-hit claim: reused fusion buffers give >85 % hit rates
/// (paper: 93 %).
#[test]
fn registration_cache_hit_rate_is_high() {
    let (w, tensors) = measured();
    let topo = ClusterTopology::lassen(2);
    let run = run_training(&topo, Scenario::MpiReg, &w, &tensors, 4, 2, 8, 5);
    assert!(
        run.regcache_hit_rate > 0.85,
        "hit rate {:.3}, paper reports 0.93",
        run.regcache_hit_rate
    );
}

/// Fig 9 shape: single-GPU throughput rises with batch size, saturates,
/// and hits the 16 GB wall.
#[test]
fn batch_sweep_shape() {
    let (w, _) = measured();
    let sweep = batch_sweep(&w, &[1, 2, 4, 8, 16, 32, 64]);
    let t: Vec<Option<f64>> = sweep.iter().map(|&(_, t)| t).collect();
    assert!(t[0].unwrap() < t[2].unwrap(), "batch 4 should beat batch 1");
    assert!(
        t[2].unwrap() < t[4].unwrap(),
        "batch 16 should beat batch 4"
    );
    assert!(t[6].is_none(), "batch 64 must OOM on a 16 GB V100");
    // saturation: the 1→4 gain is larger than the 4→16 gain
    let g1 = t[2].unwrap() / t[0].unwrap();
    let g2 = t[4].unwrap() / t[2].unwrap();
    assert!(g1 > g2, "no saturation: {g1} vs {g2}");
}

/// Fig 1 anchors: the calibrated simulator matches the paper's two
/// published single-GPU throughputs.
#[test]
fn figure1_anchors() {
    let model = KernelCostModel::new(GpuSpec::v100());
    let (edsr, _) = measured();
    let resnet = resnet50_workload();
    let t_edsr = model.throughput(&edsr, 4, 1).expect("EDSR fits");
    let t_resnet = model.throughput(&resnet, 64, 1).expect("ResNet fits");
    assert!(
        (9.2..11.4).contains(&t_edsr),
        "EDSR {t_edsr} img/s vs paper 10.3"
    );
    assert!(
        (320.0..400.0).contains(&t_resnet),
        "ResNet {t_resnet} img/s vs paper 360"
    );
    // the headline disparity: ~35× more throughput for classification
    let ratio = t_resnet / t_edsr;
    assert!((25.0..45.0).contains(&ratio), "Fig 1 ratio {ratio}");
}
