//! The correctness contract of synchronous data parallelism: with the
//! global batch fixed, training on 1, 2 or 4 ranks follows the same
//! parameter trajectory (§II-C). This is what lets the paper treat
//! distributed throughput as free speedup rather than a different
//! optimization process.

use dlsr::prelude::*;

fn cfg() -> RealTrainConfig {
    RealTrainConfig::builder().steps(6).build()
}

fn world(n: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("w{n}"),
        nodes: 1,
        gpus_per_node: n,
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn one_two_and_four_ranks_follow_the_same_trajectory() {
    let r1 = train_real(&world(1), MpiConfig::mpi_opt(), &cfg());
    let r2 = train_real(&world(2), MpiConfig::mpi_opt(), &cfg());
    let r4 = train_real(&world(4), MpiConfig::mpi_opt(), &cfg());
    assert_eq!(r1.final_params.len(), r2.final_params.len());
    let d12 = max_abs_diff(&r1.final_params, &r2.final_params);
    let d14 = max_abs_diff(&r1.final_params, &r4.final_params);
    // f32 reduction-order noise only
    assert!(d12 < 2e-4, "1 vs 2 ranks diverged: {d12}");
    assert!(d14 < 2e-4, "1 vs 4 ranks diverged: {d14}");
}

#[test]
fn backend_choice_does_not_change_the_trajectory() {
    // The gradients must be identical whether reduced by the hierarchical
    // MPI algorithm or by default settings — the backend is a performance
    // choice, not a numerics choice.
    let a = train_real(&world(4), MpiConfig::mpi_opt(), &cfg());
    let b = train_real(&world(4), MpiConfig::default_mpi(), &cfg());
    let d = max_abs_diff(&a.final_params, &b.final_params);
    assert!(d < 1e-5, "MPI-Opt vs default numerics diverged: {d}");
}

#[test]
fn parameter_broadcast_aligns_differently_seeded_ranks() {
    // train_real seeds each rank's model differently and relies on the
    // startup broadcast (§III-A guideline 2); if the broadcast broke, the
    // world-size equivalence above would fail — but check the mechanism
    // directly too.
    let topo = world(4);
    let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
        let mut model = Edsr::new(EdsrConfig::tiny(), 1000 + c.rank() as u64);
        let mut prof = Hvprof::new();
        broadcast_parameters(&mut model, c, 0, &mut prof);
        (
            model.flatten_params(),
            prof.total_seconds(Collective::Bcast),
        )
    });
    let reference = &res.ranks[0].0;
    for (r, (params, bcast_s)) in res.ranks.iter().enumerate() {
        assert_eq!(params, reference, "rank {r} differs after broadcast");
        assert!(*bcast_s >= 0.0);
    }
    // rank 1..3 actually received data over the fabric
    assert!(res.ranks[1].1 > 0.0, "broadcast cost not accounted");
}

#[test]
fn sharded_loader_partitions_the_global_batch_exactly() {
    let spec = SyntheticImageSpec {
        height: 32,
        width: 32,
        ..Default::default()
    };
    let make = || Div2kSynthetic::new(spec, 4, 2, 7);
    let mut single = DataLoader::new(make(), 8, 8, ShardSpec::single());
    let (all_lr, all_hr) = single.batch(3, 14);
    let mut offset_lr = 0;
    let mut offset_hr = 0;
    for rank in 0..4 {
        let mut shard = DataLoader::new(make(), 8, 8, ShardSpec { rank, world: 4 });
        let (lr, hr) = shard.batch(3, 14);
        let n_lr = lr.numel();
        let n_hr = hr.numel();
        assert_eq!(
            &all_lr.data()[offset_lr..offset_lr + n_lr],
            lr.data(),
            "rank {rank} LR"
        );
        assert_eq!(
            &all_hr.data()[offset_hr..offset_hr + n_hr],
            hr.data(),
            "rank {rank} HR"
        );
        offset_lr += n_lr;
        offset_hr += n_hr;
    }
    assert_eq!(offset_lr, all_lr.numel());
}
