//! Cross-backend numerics: every collective algorithm and both backends
//! must produce bit-comparable reductions, and the NCCL backend must be
//! immune to the `CUDA_VISIBLE_DEVICES` conflict that breaks default MPI.

use dlsr::mpi::collectives::{Allreduce, AllreduceAlgorithm};
use dlsr::prelude::*;

fn expected_sum(p: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (0..p).map(|r| ((r * 31 + i) % 17) as f32).sum())
        .collect()
}

fn input(rank: usize, len: usize) -> Vec<f32> {
    (0..len).map(|i| ((rank * 31 + i) % 17) as f32).collect()
}

#[test]
fn all_algorithms_and_backends_agree() {
    let topo = ClusterTopology::lassen(2); // 8 ranks
    let len = 1031; // deliberately not divisible by the world size
    let want = expected_sum(8, len);

    for algo in [
        AllreduceAlgorithm::Ring,
        AllreduceAlgorithm::RecursiveDoubling,
        AllreduceAlgorithm::TwoLevel,
    ] {
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            let mut buf = input(c.rank(), len);
            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
            buf
        });
        for (r, got) in res.ranks.iter().enumerate() {
            assert_eq!(got, &want, "{algo:?} rank {r}");
        }
    }

    let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
        let mut buf = input(c.rank(), len);
        Nccl::all_reduce(c, &mut buf, 1);
        buf
    });
    for (r, got) in res.ranks.iter().enumerate() {
        assert_eq!(got, &want, "NCCL rank {r}");
    }
}

#[test]
fn nccl_uses_nvlink_under_the_broken_default_env() {
    // §III-C: NCCL performs IPC transfers even when CUDA_VISIBLE_DEVICES
    // restricts the process — default MPI cannot.
    let topo = ClusterTopology::lassen(1);
    let len = 8 << 20; // 32 MB
    let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
        let mut buf = vec![1.0f32; len];
        Nccl::all_reduce(c, &mut buf, 1);
        let nccl_nvlink = c.stats().nvlink_bytes;
        let mut buf2 = vec![1.0f32; len];
        Allreduce::new(&mut buf2).buf_id(2).run(c);
        let mpi_staged = c.stats().staged_bytes;
        (nccl_nvlink, mpi_staged)
    });
    for (r, &(nvlink, staged)) in res.ranks.iter().enumerate() {
        assert!(nvlink > 0, "rank {r}: NCCL did not use NVLink");
        assert!(staged > 0, "rank {r}: default MPI did not stage");
    }
}

#[test]
fn mpi_opt_matches_default_numerically_but_is_faster_on_large_buffers() {
    let topo = ClusterTopology::lassen(1);
    let len = 10 << 20; // 40 MB
    let run = |cfg: MpiConfig| {
        MpiWorld::run(&topo, cfg, move |c| {
            let mut buf = input(c.rank(), len);
            Allreduce::new(&mut buf).buf_id(1).run(c);
            (buf[12345], c.now())
        })
    };
    let d = run(MpiConfig::default_mpi());
    let o = run(MpiConfig::mpi_opt());
    assert_eq!(d.ranks[0].0, o.ranks[0].0, "numerics must be identical");
    assert!(
        o.makespan() < d.makespan(),
        "MPI-Opt {} should beat default {}",
        o.makespan(),
        d.makespan()
    );
}

#[test]
fn virtual_clocks_are_causally_consistent_across_backends() {
    // After any allreduce, every rank's clock must be at least the compute
    // time of the slowest rank (the reduction cannot finish before its
    // inputs exist).
    let topo = ClusterTopology::lassen(1);
    let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
        c.advance(0.010 * (c.rank() + 1) as f64); // rank 3 is slowest: 40 ms
        let mut buf = vec![c.rank() as f32; 1 << 20];
        Nccl::all_reduce(c, &mut buf, 1);
        c.now()
    });
    for (r, &t) in res.ranks.iter().enumerate() {
        assert!(t >= 0.040, "rank {r} clock {t} violates causality");
    }
}
