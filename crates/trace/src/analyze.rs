//! Cross-rank critical-path attribution over recorded spans.
//!
//! A distributed step is bounded by exactly one chain of work: the
//! *critical path* through the happens-before DAG whose nodes are spans
//! and whose edges are (a) per-rank program order and (b) cross-rank
//! synchronization at collectives — no participant leaves an allreduce
//! (or a negotiate round) before the last one enters. The DAG is
//! reconstructed from the trace alone: collective occurrences are
//! matched across ranks by `(span name, per-rank occurrence index)`,
//! the span-level mirror of the collective verifier's
//! `(kind, elems, seq)` signature (same name ⇒ same kind/payload, same
//! occurrence ⇒ same sequence number), so a trace that passes
//! verification always yields a well-formed DAG.
//!
//! The walk runs *backward* from the rank that finishes last. Inside a
//! synchronizing span the gating instant is the latest entry among the
//! participants: time after the gate is real communication, time before
//! it is waiting for the straggler, and the walk hops to the gating
//! rank there. Every critical-path microsecond lands in exactly one
//! bucket of [`Attribution`] — the buckets sum to the makespan by
//! construction, which is what lets `dlsr analyze --check` assert the
//! decomposition against the measured step time to float precision.
//!
//! Only **virtual**-clock spans participate: the critical path of the
//! simulated cluster lives in simulated time. Wall-clock spans (host
//! kernel timings) are used once, to spread critical-path compute over
//! layers proportionally to the measured per-layer profile.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{cat, Clock, TraceEvent};

/// Where the critical-path microseconds went, in seconds. The five
/// buckets are disjoint and complete: they sum to the analyzed
/// makespan (see module docs).
/// `Deserialize` is hand-written (the derive rejects absent fields) so a
/// committed baseline written before a future bucket existed still loads
/// with that bucket at zero — same contract as `report::FaultSummary`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct Attribution {
    /// Kernel compute (`compute`, `tensor.*`, `nn.*` spans).
    pub compute_s: f64,
    /// Communication not hidden under compute.
    pub exposed_comm_s: f64,
    /// Waiting on other ranks: collective entry skew, negotiate rounds,
    /// and idle gaps between spans.
    pub straggler_wait_s: f64,
    /// Fault handling: restores and retry/backoff windows.
    pub fault_s: f64,
    /// Checkpoint snapshots.
    pub checkpoint_s: f64,
}

impl Deserialize for Attribution {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for Attribution"))?;
        let num = |k: &str| obj.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        Ok(Attribution {
            compute_s: num("compute_s"),
            exposed_comm_s: num("exposed_comm_s"),
            straggler_wait_s: num("straggler_wait_s"),
            fault_s: num("fault_s"),
            checkpoint_s: num("checkpoint_s"),
        })
    }
}

impl Attribution {
    /// Total attributed seconds.
    pub fn total(&self) -> f64 {
        self.compute_s
            + self.exposed_comm_s
            + self.straggler_wait_s
            + self.fault_s
            + self.checkpoint_s
    }

    /// `(label, seconds)` rows in a fixed presentation order.
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("kernel compute", self.compute_s),
            ("exposed comm", self.exposed_comm_s),
            ("straggler wait", self.straggler_wait_s),
            ("fault retry/backoff", self.fault_s),
            ("checkpoint", self.checkpoint_s),
        ]
    }

    /// Name of the dominant bucket.
    pub fn bound_by(&self) -> &'static str {
        self.rows()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n)
            .unwrap_or("kernel compute")
    }

    fn add(&mut self, label: Label, dt: f64) {
        if dt <= 0.0 {
            return;
        }
        match label {
            Label::Compute => self.compute_s += dt,
            Label::Comm => self.exposed_comm_s += dt,
            Label::Wait => self.straggler_wait_s += dt,
            Label::Fault => self.fault_s += dt,
            Label::Checkpoint => self.checkpoint_s += dt,
        }
    }

    fn scaled(&self, f: f64) -> Attribution {
        Attribution {
            compute_s: self.compute_s * f,
            exposed_comm_s: self.exposed_comm_s * f,
            straggler_wait_s: self.straggler_wait_s * f,
            fault_s: self.fault_s * f,
            checkpoint_s: self.checkpoint_s * f,
        }
    }
}

/// Result of a critical-path analysis. Serialized inside
/// [`crate::report::StepReport`] when attached.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CritPath {
    /// End of the last virtual span minus start of the first: the
    /// quantity being decomposed.
    pub makespan_s: f64,
    /// Steps the trace covered (0 = unknown; per-step table empty).
    pub steps: usize,
    /// Whole-run attribution; buckets sum to `makespan_s`.
    pub total: Attribution,
    /// Per-step slices of the path (step boundaries from the per-rank
    /// forward-pass spans; initialization folds into step 0).
    pub per_step: Vec<Attribution>,
    /// Critical-path compute spread over layers proportionally to the
    /// wall-clock per-layer profile.
    pub per_layer: BTreeMap<String, f64>,
    /// Contiguous path segments walked.
    pub segments: usize,
    /// Cross-rank hops taken at collective gates.
    pub hops: usize,
    /// Dominant bucket of `total` — the "bounded by" headline.
    pub bound_by: String,
}

impl CritPath {
    /// Mean attributed step time, seconds.
    pub fn step_time_s(&self) -> f64 {
        if self.steps == 0 {
            self.makespan_s
        } else {
            self.makespan_s / self.steps as f64
        }
    }

    /// Text rendering: the "step time is X, bounded by Y" headline plus
    /// the category and per-step tables.
    pub fn render(&self) -> String {
        let ms = |s: f64| s * 1e3;
        let mut out = String::new();
        let share = if self.makespan_s > 0.0 {
            100.0
                * self
                    .total
                    .rows()
                    .into_iter()
                    .map(|(_, v)| v)
                    .fold(f64::NEG_INFINITY, f64::max)
                / self.makespan_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "critical path: step time is {:.3} ms, bounded by {} ({:.1}% of the path)\n",
            ms(self.step_time_s()),
            self.bound_by,
            share,
        ));
        out.push_str(&format!(
            "  makespan {:.3} ms over {} steps · {} segments · {} cross-rank hops\n",
            ms(self.makespan_s),
            self.steps,
            self.segments,
            self.hops,
        ));
        for (name, v) in self.total.rows() {
            out.push_str(&format!(
                "  {name:<20} {:>10.3} ms ({:>5.1}%)\n",
                ms(v),
                if self.makespan_s > 0.0 {
                    v / self.makespan_s * 100.0
                } else {
                    0.0
                }
            ));
        }
        if !self.per_step.is_empty() {
            out.push_str(
                "  step | total ms | compute | exposed |    wait |   fault |    ckpt | bounded by\n",
            );
            for (i, a) in self.per_step.iter().enumerate() {
                out.push_str(&format!(
                    "  {:>4} | {:>8.3} | {:>7.3} | {:>7.3} | {:>7.3} | {:>7.3} | {:>7.3} | {}\n",
                    i,
                    ms(a.total()),
                    ms(a.compute_s),
                    ms(a.exposed_comm_s),
                    ms(a.straggler_wait_s),
                    ms(a.fault_s),
                    ms(a.checkpoint_s),
                    a.bound_by(),
                ));
            }
        }
        if !self.per_layer.is_empty() {
            let mut layers: Vec<(&String, f64)> =
                self.per_layer.iter().map(|(k, &v)| (k, v)).collect();
            layers.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            out.push_str("  critical-path compute by layer:\n");
            for (name, v) in layers {
                out.push_str(&format!("    {name:<26} {:>10.3} ms\n", ms(v)));
            }
        }
        out
    }
}

/// Instantaneous label of a rank's timeline, by priority (fault phases
/// are exclusive in the engines; compute hides communication;
/// communication outranks bare negotiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Checkpoint,
    Fault,
    Compute,
    Comm,
    Wait,
}

/// One labeled interval of a rank's profile.
#[derive(Debug, Clone, Copy)]
struct Seg {
    start: f64,
    end: f64,
    label: Label,
}

/// A synchronizing span occurrence on one rank.
#[derive(Debug, Clone)]
struct SyncSpan {
    start: f64,
    end: f64,
    /// Latest entry among all participants — the gating instant.
    gate: f64,
    /// Rank supplying that latest entry.
    gate_rank: usize,
}

fn is_compute(cat_: &str) -> bool {
    cat::COMPUTE_SET.contains(&cat_)
}

fn is_comm(cat_: &str) -> bool {
    cat::COMM_SET.contains(&cat_)
}

/// Merge possibly-overlapping `(start, end)` pairs into a disjoint
/// sorted union (same contract as the report's interval math).
fn union(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Build one rank's labeled timeline over `[t0, t1]` by priority sweep
/// over the per-class interval unions.
fn labeled_profile(spans: &[&TraceEvent], t0: f64, t1: f64) -> Vec<Seg> {
    let class_of = |e: &TraceEvent| -> Option<Label> {
        if e.cat == cat::FAULT {
            if e.name.starts_with("checkpoint") {
                Some(Label::Checkpoint)
            } else {
                Some(Label::Fault)
            }
        } else if is_compute(&e.cat) {
            Some(Label::Compute)
        } else if is_comm(&e.cat) {
            Some(Label::Comm)
        } else if e.cat == cat::NEGOTIATE {
            Some(Label::Wait)
        } else {
            None
        }
    };
    // Priority order: earlier entries win where unions overlap.
    let classes = [
        Label::Checkpoint,
        Label::Fault,
        Label::Compute,
        Label::Comm,
        Label::Wait,
    ];
    let mut unions: Vec<(Label, Vec<(f64, f64)>)> = Vec::with_capacity(classes.len());
    for lab in classes {
        let iv = union(
            spans
                .iter()
                .filter(|e| class_of(e) == Some(lab))
                .map(|e| (e.start_s, e.end_s))
                .collect(),
        );
        unions.push((lab, iv));
    }
    // Sweep over all boundary points; label each elementary interval by
    // the highest-priority class covering it (gaps stay `Wait`).
    let mut cuts: Vec<f64> = vec![t0, t1];
    for (_, iv) in &unions {
        for &(s, e) in iv {
            cuts.push(s.clamp(t0, t1));
            cuts.push(e.clamp(t0, t1));
        }
    }
    cuts.sort_by(|a, b| a.total_cmp(b));
    cuts.dedup();
    let mut segs: Vec<Seg> = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a {
            continue;
        }
        let mid = 0.5 * (a + b);
        let mut label = Label::Wait;
        for (lab, iv) in &unions {
            let idx = iv.partition_point(|&(s, _)| s <= mid);
            if idx > 0 && iv[idx - 1].1 > mid {
                label = *lab;
                break;
            }
        }
        match segs.last_mut() {
            Some(last) if last.label == label && last.end >= a => last.end = b,
            _ => segs.push(Seg {
                start: a,
                end: b,
                label,
            }),
        }
    }
    segs
}

/// Parse the `{bytes}B` suffix convention of collective span names.
pub fn bytes_of_span_name(name: &str) -> Option<u64> {
    let trimmed = name.strip_suffix('B')?;
    let digits: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        return None;
    }
    digits.chars().rev().collect::<String>().parse().ok()
}

/// Mean duration and call count of each distinct collective span name
/// (virtual clock), for cost-model fitting. `calls` counts one rank's
/// occurrences (they are equal across ranks on a verified trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveProfile {
    /// Span name (`allreduce[g0] 8192B`, `negotiate c0 34t`, …).
    pub name: String,
    /// Payload bytes parsed from the name, when present.
    pub bytes: u64,
    /// Occurrences per rank.
    pub calls: usize,
    /// Mean span duration, seconds.
    pub mean_s: f64,
}

/// Extract per-collective timing rows from a trace: every
/// `allreduce`/`negotiate`-category virtual span, grouped by name.
pub fn collective_profiles(events: &[TraceEvent]) -> Vec<CollectiveProfile> {
    let mut agg: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    let mut ranks: BTreeMap<&str, std::collections::BTreeSet<usize>> = BTreeMap::new();
    for e in events {
        if e.clock != Clock::Virtual || (e.cat != cat::ALLREDUCE && e.cat != cat::NEGOTIATE) {
            continue;
        }
        let a = agg.entry(&e.name).or_insert((0, 0.0));
        a.0 += 1;
        a.1 += e.dur_s();
        ranks.entry(&e.name).or_default().insert(e.rank);
    }
    agg.into_iter()
        .map(|(name, (n, sum))| {
            let nranks = ranks.get(name).map(|r| r.len().max(1)).unwrap_or(1);
            CollectiveProfile {
                name: name.to_string(),
                bytes: bytes_of_span_name(name).unwrap_or(0),
                calls: n / nranks,
                mean_s: sum / n as f64,
            }
        })
        .collect()
}

/// Compute the distributed critical path of a trace and attribute it.
/// `steps` drives the per-step table; pass 0 when unknown.
pub fn critical_path(events: &[TraceEvent], steps: usize) -> CritPath {
    let virt: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.clock == Clock::Virtual)
        .collect();
    if virt.is_empty() {
        return CritPath::default();
    }
    let t0 = virt.iter().map(|e| e.start_s).fold(f64::INFINITY, f64::min);
    let t1 = virt
        .iter()
        .map(|e| e.end_s)
        .fold(f64::NEG_INFINITY, f64::max);

    let mut by_rank: BTreeMap<usize, Vec<&TraceEvent>> = BTreeMap::new();
    for e in &virt {
        by_rank.entry(e.rank).or_default().push(e);
    }
    for spans in by_rank.values_mut() {
        spans.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    }

    // ---- cross-rank sync matching --------------------------------------
    // Sync spans: collective (`allreduce`) and coordination (`negotiate`)
    // spans, plus standalone `mpi` collectives (bcast/barrier) not nested
    // inside an allreduce span of the same rank. Matched across ranks by
    // (name, per-rank occurrence index) — the trace-level image of the
    // verifier's (kind, elems, seq) signature.
    // occurrence key → [(rank, start, end)] of every participant
    type Participants = Vec<(usize, f64, f64)>;
    let mut entries: BTreeMap<(String, usize), Participants> = BTreeMap::new();
    for (&rank, spans) in &by_rank {
        let ar_union = union(
            spans
                .iter()
                .filter(|e| e.cat == cat::ALLREDUCE)
                .map(|e| (e.start_s, e.end_s))
                .collect(),
        );
        let nested_in_ar = |e: &TraceEvent| -> bool {
            let idx = ar_union.partition_point(|&(s, _)| s <= e.start_s);
            idx > 0 && ar_union[idx - 1].1 >= e.end_s
        };
        let mut occ: BTreeMap<&str, usize> = BTreeMap::new();
        for e in spans {
            let sync = e.cat == cat::ALLREDUCE
                || e.cat == cat::NEGOTIATE
                || (e.cat == cat::MPI && !nested_in_ar(e));
            if !sync {
                continue;
            }
            let k = occ.entry(&e.name).or_insert(0);
            entries
                .entry((e.name.clone(), *k))
                .or_default()
                .push((rank, e.start_s, e.end_s));
            *k += 1;
        }
    }
    // Per rank, sorted by start: the sync spans with their resolved gate.
    let mut syncs: BTreeMap<usize, Vec<SyncSpan>> = BTreeMap::new();
    for ((_, _), parts) in &entries {
        let (mut gate, mut gate_rank) = (f64::NEG_INFINITY, 0);
        for &(r, s, _) in parts {
            if s > gate {
                gate = s;
                gate_rank = r;
            }
        }
        for &(r, s, e) in parts {
            syncs.entry(r).or_default().push(SyncSpan {
                start: s,
                end: e,
                gate,
                gate_rank,
            });
        }
    }
    for v in syncs.values_mut() {
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
    }

    // ---- per-rank labeled timelines ------------------------------------
    let profiles: BTreeMap<usize, Vec<Seg>> = by_rank
        .iter()
        .map(|(&r, spans)| (r, labeled_profile(spans, t0, t1)))
        .collect();

    // ---- backward walk -------------------------------------------------
    let mut cur_rank = by_rank
        .iter()
        .map(|(&r, spans)| {
            let end = spans
                .iter()
                .map(|e| e.end_s)
                .fold(f64::NEG_INFINITY, f64::max);
            (r, end)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(r, _)| r)
        .unwrap_or(0);
    let mut t = t1;
    let mut path: Vec<(usize, f64, f64, Label)> = Vec::new(); // (rank, start, end, label)
    let mut hops = 0usize;
    let eps = 1e-15;
    while t > t0 + eps {
        let profile = &profiles[&cur_rank];
        // Elementary interval containing t-ε.
        let idx = profile.partition_point(|s| s.start < t - eps);
        let seg = if idx > 0 {
            profile[idx - 1]
        } else {
            profile[0]
        };
        let mut lo = seg.start.max(t0);
        let mut label = seg.label;
        let mut hop_to: Option<usize> = None;
        if matches!(label, Label::Comm | Label::Wait) {
            // Innermost sync span containing t-ε, if any: apply the gate.
            let rs = syncs.get(&cur_rank).map(Vec::as_slice).unwrap_or(&[]);
            let j = rs.partition_point(|s| s.start < t - eps);
            let covering = rs[..j]
                .iter()
                .rev()
                .take(8)
                .find(|s| s.end > t - eps && s.start < t - eps);
            if let Some(s) = covering {
                if s.gate < t - eps && s.gate > lo {
                    // Wait-for-last-entrant ends at the gate; hop there.
                    lo = s.gate;
                    if s.gate_rank != cur_rank {
                        hop_to = Some(s.gate_rank);
                    }
                } else if s.gate >= t - eps && s.gate_rank != cur_rank && s.start < lo + eps {
                    // Entire remaining stretch of this span is pre-gate
                    // waiting on another rank.
                    label = Label::Wait;
                }
            }
        }
        path.push((cur_rank, lo, t, label));
        t = lo;
        if let Some(r) = hop_to {
            cur_rank = r;
            hops += 1;
        }
    }

    // ---- attribution ---------------------------------------------------
    let mut total = Attribution::default();
    for &(_, a, b, label) in &path {
        total.add(label, b - a);
    }
    // Close the float gap between summed segments and the makespan so
    // the decomposition is exact by construction: any residual rounding
    // goes to the dominant bucket via proportional rescale.
    let makespan = t1 - t0;
    let s = total.total();
    if s > 0.0 && makespan > 0.0 {
        total = total.scaled(makespan / s);
    }

    // ---- per-step table ------------------------------------------------
    // Step boundaries: starts of each rank's forward spans (realtrain
    // names them `fwd …`), taken from the rank that owns each segment.
    let fwd_starts: BTreeMap<usize, Vec<f64>> = by_rank
        .iter()
        .map(|(&r, spans)| {
            (
                r,
                spans
                    .iter()
                    .filter(|e| is_compute(&e.cat) && e.name.starts_with("fwd"))
                    .map(|e| e.start_s)
                    .collect(),
            )
        })
        .collect();
    let per_step = if steps > 0 {
        let mut table = vec![Attribution::default(); steps];
        for &(rank, a, b, label) in &path {
            let bounds = &fwd_starts[&rank];
            let usable = bounds.len() == steps;
            let step_of = |x: f64| -> usize {
                if usable {
                    bounds.partition_point(|&s| s <= x).saturating_sub(1)
                } else {
                    (((x - t0) / (t1 - t0).max(eps) * steps as f64) as usize).min(steps - 1)
                }
            };
            // Slice the segment at step boundaries.
            let (mut sa, sb) = (step_of(a + eps), step_of(b - eps));
            let mut lo = a;
            while sa < sb {
                let cut = if usable {
                    bounds[sa + 1]
                } else {
                    t0 + (t1 - t0) * (sa + 1) as f64 / steps as f64
                };
                table[sa].add(label, cut - lo);
                lo = cut;
                sa += 1;
            }
            table[sb].add(label, b - lo);
        }
        table
    } else {
        Vec::new()
    };

    // ---- per-layer spread ----------------------------------------------
    let mut layer_wall: BTreeMap<String, f64> = BTreeMap::new();
    for e in events {
        if e.cat == cat::NN_FWD || e.cat == cat::NN_BWD {
            *layer_wall.entry(e.name.clone()).or_default() += e.dur_s();
        }
    }
    let wall_total: f64 = layer_wall.values().sum();
    let per_layer = if wall_total > 0.0 {
        layer_wall
            .into_iter()
            .map(|(k, v)| (k, total.compute_s * v / wall_total))
            .collect()
    } else {
        BTreeMap::new()
    };

    let bound_by = total.bound_by().to_string();
    CritPath {
        makespan_s: makespan,
        steps,
        total,
        per_step,
        per_layer,
        segments: path.len(),
        hops,
        bound_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat_: &str, rank: usize, s: f64, e: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat_.into(),
            rank,
            start_s: s,
            end_s: e,
            clock: Clock::Virtual,
        }
    }

    #[test]
    fn single_rank_compute_plus_exposed_tail() {
        // fwd 0..4, bwd 4..10 hiding an allreduce 6..9 whose tail runs
        // exposed 10..12: compute 10, exposed 2.
        let events = vec![
            ev("fwd b1", cat::COMPUTE, 0, 0.0, 4.0),
            ev("bwd 3t", cat::COMPUTE, 0, 4.0, 10.0),
            ev("allreduce[g0] 64B", cat::ALLREDUCE, 0, 6.0, 12.0),
        ];
        let cp = critical_path(&events, 1);
        assert!((cp.makespan_s - 12.0).abs() < 1e-9);
        assert!((cp.total.compute_s - 10.0).abs() < 1e-9);
        assert!((cp.total.exposed_comm_s - 2.0).abs() < 1e-9);
        assert!((cp.total.total() - cp.makespan_s).abs() < 1e-9 * cp.makespan_s);
        assert_eq!(cp.bound_by, "kernel compute");
        assert_eq!(cp.hops, 0);
    }

    #[test]
    fn straggler_gate_hops_to_the_late_rank() {
        // Rank 0 computes 0..2 then sits in the allreduce 2..11.2; rank 1
        // computes 0..10 and enters at 10 (the gate). The path starts on
        // rank 0 (latest finisher): comm 10..11.2, then a hop to rank 1
        // attributing 0..10 as rank 1 compute. Rank 0's 2..10 of waiting
        // never appears on the path.
        let events = vec![
            ev("fwd b1", cat::COMPUTE, 0, 0.0, 2.0),
            ev("allreduce[g0] 64B", cat::ALLREDUCE, 0, 2.0, 11.2),
            ev("fwd b1", cat::COMPUTE, 1, 0.0, 10.0),
            ev("allreduce[g0] 64B", cat::ALLREDUCE, 1, 10.0, 11.0),
        ];
        let cp = critical_path(&events, 1);
        assert!((cp.makespan_s - 11.2).abs() < 1e-9);
        assert!((cp.total.compute_s - 10.0).abs() < 1e-9, "{:?}", cp.total);
        assert!(
            (cp.total.exposed_comm_s - 1.2).abs() < 1e-9,
            "{:?}",
            cp.total
        );
        assert_eq!(cp.hops, 1);
        assert!((cp.total.total() - 11.2).abs() < 1e-9);
    }

    #[test]
    fn checkpoint_and_restore_split_fault_buckets() {
        let events = vec![
            ev("fwd b1", cat::COMPUTE, 0, 0.0, 4.0),
            ev("checkpoint step 1", cat::FAULT, 0, 4.0, 5.0),
            ev("restore r0 step 1 <- ckpt 1", cat::FAULT, 0, 5.0, 5.5),
        ];
        let cp = critical_path(&events, 1);
        assert!((cp.total.checkpoint_s - 1.0).abs() < 1e-9);
        assert!((cp.total.fault_s - 0.5).abs() < 1e-9);
        assert!((cp.total.total() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn negotiate_counts_as_wait_not_comm() {
        let events = vec![
            ev("fwd b1", cat::COMPUTE, 0, 0.0, 3.0),
            ev("negotiate c0 4t", cat::NEGOTIATE, 0, 3.0, 4.0),
            ev("allreduce[g0] 64B", cat::ALLREDUCE, 0, 4.0, 6.0),
        ];
        let cp = critical_path(&events, 1);
        assert!((cp.total.straggler_wait_s - 1.0).abs() < 1e-9);
        assert!((cp.total.exposed_comm_s - 2.0).abs() < 1e-9);
        assert!((cp.total.compute_s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn per_step_slices_cover_the_makespan() {
        let events = vec![
            ev("fwd b1", cat::COMPUTE, 0, 0.0, 2.0),
            ev("bwd 2t", cat::COMPUTE, 0, 2.0, 4.0),
            ev("fwd b1", cat::COMPUTE, 0, 4.0, 6.0),
            ev("bwd 2t", cat::COMPUTE, 0, 6.0, 8.0),
        ];
        let cp = critical_path(&events, 2);
        assert_eq!(cp.per_step.len(), 2);
        let per_step_total: f64 = cp.per_step.iter().map(|a| a.total()).sum();
        assert!((per_step_total - cp.makespan_s).abs() < 1e-9);
        assert!((cp.per_step[0].total() - 4.0).abs() < 1e-9);
        assert!((cp.per_step[1].total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn collective_profiles_parse_bytes_and_counts() {
        let events = vec![
            ev("allreduce[g0] 8192B", cat::ALLREDUCE, 0, 0.0, 1.0),
            ev("allreduce[g0] 8192B", cat::ALLREDUCE, 1, 0.0, 3.0),
            ev("negotiate c0 4t", cat::NEGOTIATE, 0, 1.0, 1.5),
        ];
        let rows = collective_profiles(&events);
        assert_eq!(rows.len(), 2);
        let ar = rows
            .iter()
            .find(|r| r.name.starts_with("allreduce"))
            .unwrap();
        assert_eq!(ar.bytes, 8192);
        assert_eq!(ar.calls, 1);
        assert!((ar.mean_s - 2.0).abs() < 1e-12);
        assert_eq!(bytes_of_span_name("allreduce.Ring[g2] 123B"), Some(123));
        assert_eq!(bytes_of_span_name("negotiate c0 4t"), None);
    }

    #[test]
    fn render_prints_the_bounded_by_headline() {
        let events = vec![ev("fwd b1", cat::COMPUTE, 0, 0.0, 2.0)];
        let cp = critical_path(&events, 1);
        let text = cp.render();
        assert!(text.contains("bounded by kernel compute"), "{text}");
        assert!(text.contains("step time is 2000.000 ms"), "{text}");
    }
}
