//! Step-time breakdown aggregation over recorded spans and counters.
//!
//! [`StepReport`] renders the paper-style decomposition of a training step:
//! compute / negotiate / communication / *exposed* communication per rank,
//! with min/mean/max skew across ranks, a per-layer rollup, and the counter
//! summaries (regcache hit rate, fusion-buffer utilization, transfer-path
//! mix, scratch-pool reuse) that PAPER.md §IV–V's optimizations are judged
//! by.
//!
//! Durations are computed by **interval union** per category set, so nested
//! spans (an `mpi` algorithm span inside a `horovod` allreduce span, a GEMM
//! inside a layer forward) are not double-counted. Overlap between compute
//! and communication is only measured between spans of the same [`Clock`]
//! domain; mixing virtual and wall timestamps would be meaningless.

use std::collections::{BTreeMap, BTreeSet};

use dlsr_hvprof::Log2Histogram;
use serde::{Deserialize, Serialize};

use crate::{cat, Clock, TraceEvent};

/// Counter keys shared between instrumentation sites and this report.
pub mod keys {
    pub const REGCACHE_HITS: &str = "regcache.hits";
    pub const REGCACHE_MISSES: &str = "regcache.misses";
    pub const REGCACHE_EVICTIONS: &str = "regcache.evictions";
    pub const FUSION_GROUPS: &str = "fusion.groups";
    pub const FUSION_PACKED_BYTES: &str = "fusion.packed_bytes";
    pub const FUSION_CAPACITY_BYTES: &str = "fusion.capacity_bytes";
    pub const NET_IPC: &str = "net.ipc_transfers";
    pub const NET_STAGED: &str = "net.staged_transfers";
    pub const NET_RDMA: &str = "net.rdma_transfers";
    pub const NET_EAGER: &str = "net.eager_transfers";
    pub const NET_LOCAL: &str = "net.local_transfers";
    pub const SCRATCH_TAKES: &str = "scratch.takes";
    pub const SCRATCH_ALLOCS: &str = "scratch.alloc_events";
    pub const GPU_IPC_OPENS: &str = "gpu.ipc_opens";
    pub const GPU_IPC_CACHED: &str = "gpu.ipc_cached";
    pub const FAULT_RETRIES: &str = "faults.retries";
    pub const FAULT_LOST: &str = "faults.lost_messages";
    pub const FAULT_CORRUPT: &str = "faults.corrupt_messages";
    pub const FAULT_BACKOFF_SECONDS: &str = "faults.backoff_seconds";
    pub const FAULT_DEGRADED_SECONDS: &str = "faults.degraded_seconds";
    pub const FAULT_CHECKPOINTS: &str = "faults.checkpoints";
    pub const FAULT_CHECKPOINT_SECONDS: &str = "faults.checkpoint_seconds";
    pub const FAULT_RESTORES: &str = "faults.restores";
    /// Completed MPI-level collective operations (allreduce, bcast,
    /// barrier) — the denominator `dlsr analyze` sanity-checks its
    /// happens-before edge count against.
    pub const MPI_COLLECTIVES: &str = "mpi.collectives";
    /// Bytes a gradient allreduce puts on the wire under its chosen
    /// [`WireFormat`] (per rank, per collective: the encoded size of the
    /// full buffer — a compression-ratio counter, not link traffic).
    ///
    /// [`WireFormat`]: https://docs.rs/dlsr-mpi
    pub const WIRE_BYTES: &str = "mpi.wire_bytes";
    /// The same buffers' dense f32 size: `wire_dense_bytes / wire_bytes`
    /// is the achieved wire compression ratio.
    pub const WIRE_DENSE_BYTES: &str = "mpi.wire_dense_bytes";
    /// Prefix of the per-microkernel tile counters the GEMM engine emits
    /// (`gemm.variant.<kernel>` — e.g. `gemm.variant.avx512_8x32`); the
    /// suffix is the kernel name the shape-keyed selector resolved to.
    pub const GEMM_VARIANT_PREFIX: &str = "gemm.variant.";
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MinMeanMax {
    pub min: f64,
    pub mean: f64,
    pub max: f64,
}

impl MinMeanMax {
    pub fn of(xs: impl IntoIterator<Item = f64>) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
            n += 1;
        }
        if n == 0 {
            return Self::default();
        }
        Self {
            min,
            mean: sum / n as f64,
            max,
        }
    }
}

/// Time decomposition for one rank, seconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankBreakdown {
    pub rank: usize,
    /// Union of compute-category spans (`compute`, `tensor.*`, `nn.*`).
    pub compute_s: f64,
    /// Union of `negotiate` spans.
    pub negotiate_s: f64,
    /// Union of communication-category spans (`allreduce`, `mpi`, `net`,
    /// `horovod.fusion`).
    pub comm_s: f64,
    /// Communication time hidden under compute (same-clock overlap).
    pub overlap_s: f64,
    /// Communication time *not* hidden under compute: `comm_s - overlap_s`.
    pub exposed_comm_s: f64,
    /// `exposed_comm_s / comm_s` — 0.0 means fully hidden communication,
    /// 1.0 means fully exposed (and 0.0 when there was no communication).
    #[serde(default)]
    pub exposed_frac: f64,
    /// Number of spans recorded by this rank.
    pub spans: usize,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryStat {
    pub calls: usize,
    /// Sum of span durations (not a union — nested calls accumulate).
    pub seconds: f64,
}

/// Per-layer forward/backward rollup from `nn.forward` / `nn.backward`
/// spans, all ranks combined.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerStat {
    pub name: String,
    pub forward_s: f64,
    pub backward_s: f64,
    pub calls: usize,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RegcacheSummary {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub hit_rate: f64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FusionSummary {
    pub groups: u64,
    pub packed_bytes: u64,
    /// `groups × fusion threshold`: the bytes the fusion buffers could have
    /// carried.
    pub capacity_bytes: u64,
    /// `packed_bytes / capacity_bytes` (0 when no groups were packed).
    pub utilization: f64,
}

/// How many point-to-point transfers took each transport path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferMix {
    pub ipc: u64,
    pub staged: u64,
    pub rdma: u64,
    pub eager: u64,
    pub local: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScratchSummary {
    pub takes: u64,
    pub alloc_events: u64,
    /// Fraction of takes served without touching the allocator.
    pub reuse_rate: f64,
}

/// Fault-injection and graceful-degradation activity (all zeros — and the
/// render line suppressed — on fault-free runs and builds without the
/// `faults` feature).
///
/// `Deserialize` is hand-written so reports recorded before this summary
/// existed (no `faults` key → `Null`) lift to the all-zero default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FaultSummary {
    /// Retransmissions after injected loss/corruption.
    pub retries: u64,
    /// Attempts dropped in flight.
    pub lost: u64,
    /// Attempts that failed their integrity check.
    pub corrupt: u64,
    /// Virtual seconds spent in retry timeouts/backoff.
    pub backoff_s: f64,
    /// Extra virtual seconds charged inside degraded-link windows.
    pub degraded_s: f64,
    /// Parameter/optimizer snapshots taken.
    pub checkpoints: u64,
    /// Virtual seconds charged for taking snapshots.
    pub checkpoint_s: f64,
    /// Restore-and-continue recoveries performed.
    pub restores: u64,
}

impl Deserialize for FaultSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for FaultSummary"))?;
        let num = |k: &str| obj.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        Ok(FaultSummary {
            retries: num("retries") as u64,
            lost: num("lost") as u64,
            corrupt: num("corrupt") as u64,
            backoff_s: num("backoff_s"),
            degraded_s: num("degraded_s"),
            checkpoints: num("checkpoints") as u64,
            checkpoint_s: num("checkpoint_s"),
            restores: num("restores") as u64,
        })
    }
}

/// Wire-format activity of the gradient allreduces: bytes actually put on
/// the wire under the chosen [`WireFormat`]s vs the dense f32 bytes they
/// stand in for (all zeros — and the render line suppressed — when every
/// collective ran plain f32 or no gradient allreduce was traced).
///
/// `Deserialize` is hand-written so reports recorded before compressed
/// wire formats existed (no `wire` key → `Null`) lift to the all-zero
/// default.
///
/// [`WireFormat`]: https://docs.rs/dlsr-mpi
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct WireSummary {
    /// Encoded bytes across all traced gradient allreduces
    /// ([`keys::WIRE_BYTES`]).
    pub wire_bytes: u64,
    /// Dense f32 bytes the same buffers would have occupied
    /// ([`keys::WIRE_DENSE_BYTES`]).
    pub dense_bytes: u64,
    /// `dense_bytes / wire_bytes` — the achieved wire compression ratio
    /// (1.0 for pure f32 traffic, 0.0 when nothing was traced).
    pub ratio: f64,
}

impl Deserialize for WireSummary {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for WireSummary"))?;
        let num = |k: &str| obj.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        Ok(WireSummary {
            wire_bytes: num("wire_bytes") as u64,
            dense_bytes: num("dense_bytes") as u64,
            ratio: num("ratio"),
        })
    }
}

/// Min/mean/max across ranks for the headline columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StepSkew {
    pub compute: MinMeanMax,
    pub comm: MinMeanMax,
    pub exposed_comm: MinMeanMax,
}

/// Span-duration percentiles for one category, answered from a
/// [`Log2Histogram`] built over every span of that category at report
/// time — the sketch itself never sits on the recording hot path, so the
/// zero-cost contract is untouched.
///
/// `Deserialize` is hand-written (the derive ignores field defaults) so
/// reports written before the sketch existed lift from `Null` to zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct DurationStats {
    /// Spans aggregated.
    pub count: u64,
    /// Median span duration, seconds.
    pub p50_s: f64,
    /// 95th-percentile span duration, seconds.
    pub p95_s: f64,
    /// 99th-percentile span duration, seconds.
    pub p99_s: f64,
    /// Exact longest span, seconds.
    pub max_s: f64,
}

impl Deserialize for DurationStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(Self::default());
        }
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for DurationStats"))?;
        let num = |k: &str| obj.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        Ok(DurationStats {
            count: num("count") as u64,
            p50_s: num("p50_s"),
            p95_s: num("p95_s"),
            p99_s: num("p99_s"),
            max_s: num("max_s"),
        })
    }
}

impl DurationStats {
    /// Summarize a sketch into the report row.
    pub fn from_hist(h: &Log2Histogram) -> Self {
        DurationStats {
            count: h.count(),
            p50_s: h.percentile(0.50),
            p95_s: h.percentile(0.95),
            p99_s: h.percentile(0.99),
            max_s: h.max(),
        }
    }
}

/// Per-category [`DurationStats`], keyed by span category. A newtype so
/// the whole map can lift from `Null` (reports written before PR 7).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Percentiles(pub BTreeMap<String, DurationStats>);

impl Serialize for Percentiles {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for Percentiles {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.is_null() {
            return Ok(Self::default());
        }
        Ok(Percentiles(BTreeMap::from_value(v)?))
    }
}

/// Aggregated step-time breakdown report. Build with [`StepReport::build`],
/// export with [`StepReport::to_json`], print with [`StepReport::render`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    pub scenario: String,
    pub world: usize,
    pub steps: usize,
    /// Mean measured (virtual) step time supplied by the harness, seconds.
    pub step_time_s: f64,
    pub ranks: Vec<RankBreakdown>,
    pub skew: StepSkew,
    pub layers: Vec<LayerStat>,
    pub categories: BTreeMap<String, CategoryStat>,
    pub regcache: RegcacheSummary,
    pub fusion: FusionSummary,
    pub transfers: TransferMix,
    pub scratch: ScratchSummary,
    /// Fault-injection activity (reports written before this field existed
    /// deserialize with all zeros — see [`FaultSummary`]'s `Deserialize`).
    pub faults: FaultSummary,
    /// Wire-compression activity of the gradient allreduces (reports
    /// written before compressed wire formats existed deserialize with all
    /// zeros — see [`WireSummary`]'s `Deserialize`).
    pub wire: WireSummary,
    /// Microkernel-variant tile counts from the `gemm.variant.*` counters:
    /// which SIMD kernel served how many register tiles this run. Empty for
    /// reports written before the SIMD engine existed.
    #[serde(default)]
    pub gemm_variants: BTreeMap<String, u64>,
    /// p50/p95/p99 span durations per category, answered from
    /// deterministic [`Log2Histogram`] sketches built at report time.
    /// Empty for reports written before PR 7 (`Null` lifts to empty).
    pub percentiles: Percentiles,
    /// Cross-rank critical-path attribution, when an analysis pass ran
    /// (`dlsr analyze`, or any harness calling
    /// [`StepReport::attach_critical_path`]). `None` for plain profiles
    /// and for reports written before PR 7.
    pub critical_path: Option<crate::analyze::CritPath>,
    /// Raw counter/gauge snapshot the summaries were derived from.
    pub counters: BTreeMap<String, f64>,
}

/// Merge possibly-overlapping `(start, end)` intervals into a disjoint,
/// sorted list.
fn union_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn union_len(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersect_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut total = 0.0;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn counter_u64(counters: &BTreeMap<String, f64>, key: &str) -> u64 {
    counters.get(key).copied().unwrap_or(0.0).max(0.0) as u64
}

impl StepReport {
    /// Aggregate spans and a counter snapshot into a report. Contextual
    /// fields (`scenario`, `steps`, `step_time_s`) are filled via
    /// [`StepReport::with_context`]; `world` defaults to the number of
    /// distinct ranks seen.
    pub fn build(events: &[TraceEvent], counters: &BTreeMap<String, f64>) -> Self {
        let ranks_seen: BTreeSet<usize> = events.iter().map(|e| e.rank).collect();
        let mut ranks = Vec::with_capacity(ranks_seen.len());
        for &rank in &ranks_seen {
            let mut compute_s = 0.0;
            let mut negotiate_s = 0.0;
            let mut comm_s = 0.0;
            let mut overlap_s = 0.0;
            let mut spans = 0usize;
            for clock in [Clock::Virtual, Clock::Wall] {
                let of = |set: &[&str]| -> Vec<(f64, f64)> {
                    union_intervals(
                        events
                            .iter()
                            .filter(|e| {
                                e.rank == rank && e.clock == clock && set.contains(&e.cat.as_str())
                            })
                            .map(|e| (e.start_s, e.end_s))
                            .collect(),
                    )
                };
                let compute = of(cat::COMPUTE_SET);
                let comm = of(cat::COMM_SET);
                compute_s += union_len(&compute);
                comm_s += union_len(&comm);
                overlap_s += intersect_len(&compute, &comm);
                negotiate_s += union_len(&of(&[cat::NEGOTIATE]));
            }
            spans += events.iter().filter(|e| e.rank == rank).count();
            let exposed_comm_s = (comm_s - overlap_s).max(0.0);
            ranks.push(RankBreakdown {
                rank,
                compute_s,
                negotiate_s,
                comm_s,
                overlap_s,
                exposed_comm_s,
                exposed_frac: if comm_s > 0.0 {
                    exposed_comm_s / comm_s
                } else {
                    0.0
                },
                spans,
            });
        }

        let skew = StepSkew {
            compute: MinMeanMax::of(ranks.iter().map(|r| r.compute_s)),
            comm: MinMeanMax::of(ranks.iter().map(|r| r.comm_s)),
            exposed_comm: MinMeanMax::of(ranks.iter().map(|r| r.exposed_comm_s)),
        };

        let mut categories: BTreeMap<String, CategoryStat> = BTreeMap::new();
        for e in events {
            let c = categories.entry(e.cat.clone()).or_default();
            c.calls += 1;
            c.seconds += e.dur_s();
        }

        let mut layer_map: BTreeMap<String, LayerStat> = BTreeMap::new();
        for e in events {
            let fwd = e.cat == cat::NN_FWD;
            if !fwd && e.cat != cat::NN_BWD {
                continue;
            }
            let l = layer_map
                .entry(e.name.clone())
                .or_insert_with(|| LayerStat {
                    name: e.name.clone(),
                    ..Default::default()
                });
            if fwd {
                l.forward_s += e.dur_s();
            } else {
                l.backward_s += e.dur_s();
            }
            l.calls += 1;
        }

        let hits = counter_u64(counters, keys::REGCACHE_HITS);
        let misses = counter_u64(counters, keys::REGCACHE_MISSES);
        let regcache = RegcacheSummary {
            hits,
            misses,
            evictions: counter_u64(counters, keys::REGCACHE_EVICTIONS),
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
        };

        let packed = counter_u64(counters, keys::FUSION_PACKED_BYTES);
        let capacity = counter_u64(counters, keys::FUSION_CAPACITY_BYTES);
        let fusion = FusionSummary {
            groups: counter_u64(counters, keys::FUSION_GROUPS),
            packed_bytes: packed,
            capacity_bytes: capacity,
            utilization: if capacity > 0 {
                packed as f64 / capacity as f64
            } else {
                0.0
            },
        };

        let transfers = TransferMix {
            ipc: counter_u64(counters, keys::NET_IPC),
            staged: counter_u64(counters, keys::NET_STAGED),
            rdma: counter_u64(counters, keys::NET_RDMA),
            eager: counter_u64(counters, keys::NET_EAGER),
            local: counter_u64(counters, keys::NET_LOCAL),
        };

        let takes = counter_u64(counters, keys::SCRATCH_TAKES);
        let allocs = counter_u64(counters, keys::SCRATCH_ALLOCS);
        let scratch = ScratchSummary {
            takes,
            alloc_events: allocs,
            reuse_rate: if takes > 0 {
                1.0 - (allocs.min(takes) as f64 / takes as f64)
            } else {
                0.0
            },
        };

        let gemm_variants: BTreeMap<String, u64> = counters
            .iter()
            .filter_map(|(key, &v)| {
                key.strip_prefix(keys::GEMM_VARIANT_PREFIX)
                    .map(|kernel| (kernel.to_string(), v.max(0.0) as u64))
            })
            .collect();

        let mut hists: BTreeMap<String, Log2Histogram> = BTreeMap::new();
        for e in events {
            hists.entry(e.cat.clone()).or_default().record(e.dur_s());
        }
        let percentiles = Percentiles(
            hists
                .iter()
                .map(|(c, h)| (c.clone(), DurationStats::from_hist(h)))
                .collect(),
        );

        let fsec = |key: &str| counters.get(key).copied().unwrap_or(0.0).max(0.0);
        let faults = FaultSummary {
            retries: counter_u64(counters, keys::FAULT_RETRIES),
            lost: counter_u64(counters, keys::FAULT_LOST),
            corrupt: counter_u64(counters, keys::FAULT_CORRUPT),
            backoff_s: fsec(keys::FAULT_BACKOFF_SECONDS),
            degraded_s: fsec(keys::FAULT_DEGRADED_SECONDS),
            checkpoints: counter_u64(counters, keys::FAULT_CHECKPOINTS),
            checkpoint_s: fsec(keys::FAULT_CHECKPOINT_SECONDS),
            restores: counter_u64(counters, keys::FAULT_RESTORES),
        };

        let wire_bytes = counter_u64(counters, keys::WIRE_BYTES);
        let dense_bytes = counter_u64(counters, keys::WIRE_DENSE_BYTES);
        let wire = WireSummary {
            wire_bytes,
            dense_bytes,
            ratio: if wire_bytes > 0 {
                dense_bytes as f64 / wire_bytes as f64
            } else {
                0.0
            },
        };

        StepReport {
            scenario: String::new(),
            world: ranks.len(),
            steps: 0,
            step_time_s: 0.0,
            ranks,
            skew,
            layers: layer_map.into_values().collect(),
            categories,
            regcache,
            fusion,
            transfers,
            scratch,
            faults,
            wire,
            gemm_variants,
            percentiles,
            critical_path: None,
            counters: counters.clone(),
        }
    }

    /// Attach a critical-path analysis computed over the same trace (see
    /// [`crate::analyze::critical_path`]).
    pub fn attach_critical_path(&mut self, cp: crate::analyze::CritPath) {
        self.critical_path = Some(cp);
    }

    pub fn with_context(
        mut self,
        scenario: &str,
        world: usize,
        steps: usize,
        step_time_s: f64,
    ) -> Self {
        self.scenario = scenario.to_string();
        self.world = world;
        self.steps = steps;
        self.step_time_s = step_time_s;
        self
    }

    /// Override the regcache summary with authoritative per-`Comm` stats
    /// (counter-derived values can undercount when tracing was off for part
    /// of the run).
    pub fn set_regcache(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.regcache = RegcacheSummary {
            hits,
            misses,
            evictions,
            hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
        };
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("StepReport serializes")
    }

    /// Paper-style text rendering of the breakdown.
    pub fn render(&self) -> String {
        let ms = |s: f64| s * 1e3;
        let mut out = String::new();
        out.push_str(&format!(
            "step breakdown · scenario={} world={} steps={} step_time={:.3} ms\n",
            if self.scenario.is_empty() {
                "?"
            } else {
                &self.scenario
            },
            self.world,
            self.steps,
            ms(self.step_time_s),
        ));
        out.push_str(
            "rank |  compute ms | negotiate ms |    comm ms | overlap ms | exposed ms | exposed % | spans\n",
        );
        for r in &self.ranks {
            out.push_str(&format!(
                "{:>4} | {:>11.3} | {:>12.3} | {:>10.3} | {:>10.3} | {:>10.3} | {:>9.1} | {:>5}\n",
                r.rank,
                ms(r.compute_s),
                ms(r.negotiate_s),
                ms(r.comm_s),
                ms(r.overlap_s),
                ms(r.exposed_comm_s),
                r.exposed_frac * 100.0,
                r.spans,
            ));
        }
        out.push_str(&format!(
            "skew | compute {:.3}/{:.3}/{:.3} ms | comm {:.3}/{:.3}/{:.3} ms | exposed {:.3}/{:.3}/{:.3} ms (min/mean/max)\n",
            ms(self.skew.compute.min),
            ms(self.skew.compute.mean),
            ms(self.skew.compute.max),
            ms(self.skew.comm.min),
            ms(self.skew.comm.mean),
            ms(self.skew.comm.max),
            ms(self.skew.exposed_comm.min),
            ms(self.skew.exposed_comm.mean),
            ms(self.skew.exposed_comm.max),
        ));
        if !self.layers.is_empty() {
            out.push_str("layer                        | forward ms | backward ms | calls\n");
            let mut layers: Vec<&LayerStat> = self.layers.iter().collect();
            layers.sort_by(|a, b| {
                (b.forward_s + b.backward_s).total_cmp(&(a.forward_s + a.backward_s))
            });
            for l in layers {
                out.push_str(&format!(
                    "{:<28} | {:>10.3} | {:>11.3} | {:>5}\n",
                    l.name,
                    ms(l.forward_s),
                    ms(l.backward_s),
                    l.calls,
                ));
            }
        }
        out.push_str(&format!(
            "regcache: {} hits / {} misses / {} evictions (hit rate {:.1}%)\n",
            self.regcache.hits,
            self.regcache.misses,
            self.regcache.evictions,
            self.regcache.hit_rate * 100.0,
        ));
        out.push_str(&format!(
            "fusion: {} groups, {:.2} MB packed, utilization {:.1}%\n",
            self.fusion.groups,
            self.fusion.packed_bytes as f64 / 1e6,
            self.fusion.utilization * 100.0,
        ));
        out.push_str(&format!(
            "transfers: ipc={} staged={} rdma={} eager={} local={}\n",
            self.transfers.ipc,
            self.transfers.staged,
            self.transfers.rdma,
            self.transfers.eager,
            self.transfers.local,
        ));
        out.push_str(&format!(
            "scratch: {} takes, {} alloc events (reuse {:.1}%)\n",
            self.scratch.takes,
            self.scratch.alloc_events,
            self.scratch.reuse_rate * 100.0,
        ));
        if !self.gemm_variants.is_empty() {
            let total: u64 = self.gemm_variants.values().sum();
            // Deterministic presentation for golden-file diffing: busiest
            // kernel first, ties broken by name, and a fixed one-decimal
            // percentage of the (printed) tile total.
            let mut variants: Vec<(&String, u64)> =
                self.gemm_variants.iter().map(|(k, &t)| (k, t)).collect();
            variants.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            let mix = variants
                .iter()
                .map(|(kernel, tiles)| {
                    format!(
                        "{kernel}={tiles} ({:.1}%)",
                        if total > 0 {
                            *tiles as f64 / total as f64 * 100.0
                        } else {
                            0.0
                        }
                    )
                })
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!("gemm kernels ({total} register tiles): {mix}\n"));
        }
        if !self.percentiles.0.is_empty() {
            out.push_str(
                "category latency     |  calls |   p50 ms |   p95 ms |   p99 ms |   max ms\n",
            );
            for (c, d) in &self.percentiles.0 {
                out.push_str(&format!(
                    "{:<20} | {:>6} | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3}\n",
                    c,
                    d.count,
                    ms(d.p50_s),
                    ms(d.p95_s),
                    ms(d.p99_s),
                    ms(d.max_s),
                ));
            }
        }
        if self.wire != WireSummary::default() {
            out.push_str(&format!(
                "wire: {:.2} MB on the wire for {:.2} MB dense f32 (compression {:.2}x)\n",
                self.wire.wire_bytes as f64 / 1e6,
                self.wire.dense_bytes as f64 / 1e6,
                self.wire.ratio,
            ));
        }
        if self.faults != FaultSummary::default() {
            out.push_str(&format!(
                "faults: {} retries ({} lost, {} corrupt), backoff {:.3} ms, degraded {:.3} ms, \
                 {} checkpoints ({:.3} ms), {} restores\n",
                self.faults.retries,
                self.faults.lost,
                self.faults.corrupt,
                ms(self.faults.backoff_s),
                ms(self.faults.degraded_s),
                self.faults.checkpoints,
                ms(self.faults.checkpoint_s),
                self.faults.restores,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Remove `"key":{...},` from a compact JSON encoding, simulating a
    /// report written before the field existed.
    fn strip_object_key(compact: &str, key: &str) -> String {
        let start = compact.find(&format!("\"{key}\":")).unwrap();
        let obj_start = start + compact[start..].find('{').unwrap();
        let mut depth = 0usize;
        let mut end = obj_start;
        for (i, c) in compact[obj_start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = obj_start + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let rest = compact[end..].strip_prefix(',').unwrap_or(&compact[end..]);
        format!("{}{}", &compact[..start], rest)
    }

    fn ev(name: &str, cat_: &str, rank: usize, s: f64, e: f64, clock: Clock) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat_.into(),
            rank,
            start_s: s,
            end_s: e,
            clock,
        }
    }

    #[test]
    fn interval_union_merges_nested_and_adjacent() {
        let u = union_intervals(vec![(0.0, 2.0), (1.0, 1.5), (2.0, 3.0), (5.0, 6.0)]);
        assert_eq!(u, vec![(0.0, 3.0), (5.0, 6.0)]);
        assert!((union_len(&u) - 4.0).abs() < 1e-12);
        let a = union_intervals(vec![(0.0, 4.0)]);
        let b = union_intervals(vec![(1.0, 2.0), (3.0, 5.0)]);
        assert!((intersect_len(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_does_not_double_count_nested_spans() {
        // Compute 0..10; an allreduce 4..8 with a nested mpi span 4..8 and a
        // net span 5..7: comm union must be 4 s, fully overlapped.
        let events = vec![
            ev("fwd", cat::COMPUTE, 0, 0.0, 10.0, Clock::Virtual),
            ev("ar[0]", cat::ALLREDUCE, 0, 4.0, 8.0, Clock::Virtual),
            ev("ring", cat::MPI, 0, 4.0, 8.0, Clock::Virtual),
            ev("wire", cat::NET, 0, 5.0, 7.0, Clock::Virtual),
            ev("tail", cat::ALLREDUCE, 0, 10.0, 11.0, Clock::Virtual),
        ];
        let rep = StepReport::build(&events, &BTreeMap::new());
        let r = &rep.ranks[0];
        assert!((r.compute_s - 10.0).abs() < 1e-9);
        assert!((r.comm_s - 5.0).abs() < 1e-9);
        assert!((r.overlap_s - 4.0).abs() < 1e-9);
        assert!((r.exposed_comm_s - 1.0).abs() < 1e-9);
        assert!((r.exposed_frac - 0.2).abs() < 1e-9);
    }

    #[test]
    fn launch_markers_do_not_count_as_communication() {
        // An allreduce.launch wall span marks where the overlapped engine
        // fired a group; it must not inflate comm or compute time.
        let events = vec![
            ev("bwd", cat::NN_BWD, 0, 0.0, 10.0, Clock::Wall),
            ev("launch[g0]", cat::AR_LAUNCH, 0, 3.0, 3.1, Clock::Wall),
            ev("ar[g0]", cat::ALLREDUCE, 0, 1.0, 2.0, Clock::Virtual),
        ];
        let rep = StepReport::build(&events, &BTreeMap::new());
        let r = &rep.ranks[0];
        assert!((r.compute_s - 10.0).abs() < 1e-9);
        assert!((r.comm_s - 1.0).abs() < 1e-9);
        assert!((r.exposed_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wall_and_virtual_domains_never_overlap() {
        // A wall-clock layer span and a virtual comm span occupying the
        // "same" numeric range must not count as hidden communication.
        let events = vec![
            ev("conv1", cat::NN_FWD, 0, 0.0, 10.0, Clock::Wall),
            ev("ar[0]", cat::ALLREDUCE, 0, 2.0, 6.0, Clock::Virtual),
        ];
        let rep = StepReport::build(&events, &BTreeMap::new());
        let r = &rep.ranks[0];
        assert!((r.compute_s - 10.0).abs() < 1e-9);
        assert!((r.comm_s - 4.0).abs() < 1e-9);
        assert_eq!(r.overlap_s, 0.0);
        assert!((r.exposed_comm_s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn counter_summaries_and_json_round_trip() {
        let mut counters = BTreeMap::new();
        counters.insert(keys::REGCACHE_HITS.to_string(), 90.0);
        counters.insert(keys::REGCACHE_MISSES.to_string(), 10.0);
        counters.insert(keys::FUSION_GROUPS.to_string(), 2.0);
        counters.insert(keys::FUSION_PACKED_BYTES.to_string(), 32e6);
        counters.insert(keys::FUSION_CAPACITY_BYTES.to_string(), 128e6);
        counters.insert(keys::NET_IPC.to_string(), 7.0);
        counters.insert(keys::NET_STAGED.to_string(), 3.0);
        counters.insert(keys::SCRATCH_TAKES.to_string(), 100.0);
        counters.insert(keys::SCRATCH_ALLOCS.to_string(), 25.0);
        counters.insert(format!("{}avx512_8x32", keys::GEMM_VARIANT_PREFIX), 300.0);
        counters.insert(format!("{}scalar", keys::GEMM_VARIANT_PREFIX), 100.0);
        counters.insert(format!("{}zmm_tail", keys::GEMM_VARIANT_PREFIX), 600.0);
        let events = vec![
            ev("conv1", cat::NN_FWD, 0, 0.0, 1.0, Clock::Wall),
            ev("conv1", cat::NN_BWD, 0, 1.0, 3.0, Clock::Wall),
            ev("conv1", cat::NN_FWD, 1, 0.0, 1.5, Clock::Wall),
        ];
        let rep = StepReport::build(&events, &counters).with_context("edsr", 2, 4, 0.25);
        assert_eq!(rep.world, 2);
        assert!((rep.regcache.hit_rate - 0.9).abs() < 1e-12);
        assert!((rep.fusion.utilization - 0.25).abs() < 1e-12);
        assert_eq!(rep.transfers.ipc, 7);
        assert!((rep.scratch.reuse_rate - 0.75).abs() < 1e-12);
        assert_eq!(rep.layers.len(), 1);
        assert_eq!(rep.layers[0].calls, 3);
        assert!((rep.skew.compute.max - 2.0 - 1.0).abs() < 1e-9);

        assert_eq!(rep.gemm_variants.get("avx512_8x32"), Some(&300));
        assert_eq!(rep.gemm_variants.get("scalar"), Some(&100));

        let back: StepReport = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        let text = rep.render();
        assert!(text.contains("hit rate 90.0%"));
        assert!(text.contains("utilization 25.0%"));
        // Deterministic kernel-mix line: busiest kernel first regardless
        // of its (alphabetically last) name, with the tile total printed.
        assert!(
            text.contains(
                "gemm kernels (1000 register tiles): zmm_tail=600 (60.0%) \
                 avx512_8x32=300 (30.0%) scalar=100 (10.0%)"
            ),
            "{text}"
        );
        // Per-category span-duration percentiles are derived at build
        // time; nn.forward saw spans of 1.0 s / 1.5 s → max is exact.
        let fwd = rep.percentiles.0.get(cat::NN_FWD).unwrap();
        assert_eq!(fwd.count, 2);
        assert!((fwd.max_s - 1.5).abs() < 1e-12);
        assert!(text.contains("category latency"), "{text}");
        // fault-free run: the faults line is suppressed entirely
        assert!(!text.contains("faults:"));
    }

    #[test]
    fn wire_summary_follows_counters_and_renders() {
        let mut counters = BTreeMap::new();
        counters.insert(keys::WIRE_BYTES.to_string(), 16e6);
        counters.insert(keys::WIRE_DENSE_BYTES.to_string(), 32e6);
        let rep = StepReport::build(&[], &counters);
        assert_eq!(rep.wire.wire_bytes, 16_000_000);
        assert_eq!(rep.wire.dense_bytes, 32_000_000);
        assert!((rep.wire.ratio - 2.0).abs() < 1e-12);
        let text = rep.render();
        assert!(
            text.contains("wire: 16.00 MB on the wire for 32.00 MB dense f32 (compression 2.00x)"),
            "{text}"
        );
        // Runs with no traced gradient allreduce suppress the line.
        let rep = StepReport::build(&[], &BTreeMap::new());
        assert_eq!(rep.wire, WireSummary::default());
        assert!(!rep.render().contains("wire:"));
        // Pre-wire reports (no `wire` key) lift from Null to zeros.
        let compact = serde_json::to_string(&StepReport::default()).unwrap();
        let stripped = strip_object_key(&compact, "wire");
        let old: StepReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.wire, WireSummary::default());
    }

    #[test]
    fn fault_summary_follows_counters_and_renders() {
        let mut counters = BTreeMap::new();
        counters.insert(keys::FAULT_RETRIES.to_string(), 7.0);
        counters.insert(keys::FAULT_LOST.to_string(), 5.0);
        counters.insert(keys::FAULT_CORRUPT.to_string(), 2.0);
        counters.insert(keys::FAULT_BACKOFF_SECONDS.to_string(), 0.004);
        counters.insert(keys::FAULT_DEGRADED_SECONDS.to_string(), 0.010);
        counters.insert(keys::FAULT_CHECKPOINTS.to_string(), 3.0);
        counters.insert(keys::FAULT_CHECKPOINT_SECONDS.to_string(), 0.002);
        counters.insert(keys::FAULT_RESTORES.to_string(), 1.0);
        let rep = StepReport::build(&[], &counters);
        assert_eq!(rep.faults.retries, 7);
        assert_eq!(rep.faults.lost, 5);
        assert_eq!(rep.faults.corrupt, 2);
        assert!((rep.faults.backoff_s - 0.004).abs() < 1e-12);
        assert!((rep.faults.degraded_s - 0.010).abs() < 1e-12);
        assert_eq!(rep.faults.checkpoints, 3);
        assert_eq!(rep.faults.restores, 1);
        let text = rep.render();
        assert!(text.contains("faults: 7 retries (5 lost, 2 corrupt)"));
        assert!(text.contains("1 restores"));
        // Pre-faults reports (no `faults` field) still deserialize: strip
        // the key from the compact encoding and round-trip.
        let compact = serde_json::to_string(&rep).unwrap();
        let stripped = strip_object_key(&compact, "faults");
        let old: StepReport = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old.faults, FaultSummary::default());
    }
}
