//! `dlsr-trace` — workspace-wide structured tracing and metrics.
//!
//! Every layer of the stack (tensor kernels, nn layers, Horovod
//! negotiate/fusion, MPI collectives, the virtual wire) records *spans* and
//! bumps *counters* through this crate. Collection is thread-sharded: each
//! thread owns an `Arc`'d buffer registered in a global list, so recording a
//! span in steady state takes only the uncontended lock on the thread's own
//! buffer — no cross-thread contention until a drain point
//! ([`take_events`] / [`take_thread_events`]) walks the registry.
//!
//! Two clock domains coexist (see [`Clock`]):
//! - **Virtual** spans carry simulated seconds from a rank's `VClock`
//!   (communication, negotiate, simulator compute phases). They are recorded
//!   with explicit start/end timestamps via [`vspan`] / [`record_span`],
//!   because the virtual clock lives inside `&mut Comm` and cannot be read
//!   from a RAII drop.
//! - **Wall** spans measure real elapsed time (tensor GEMM/im2col, nn layer
//!   forward/backward) via the RAII [`span`] guard.
//!
//! Overlap analysis in [`report::StepReport`] never mixes the two domains.
//!
//! # Cost when disabled
//!
//! Collection is compiled in only under the `enabled` cargo feature. Without
//! it, [`is_on`] is a `const false`, so every guarded call site — including
//! its `format!` arguments — is dead code the optimizer removes. With the
//! feature compiled in, a runtime [`set_enabled`] flag (default off) gates
//! recording behind one relaxed atomic load, which is what the < 3%
//! overhead test in `dlsr-cluster` measures.

#![forbid(unsafe_code)]
pub mod analyze;
pub mod report;

/// Deterministic log2 latency sketch (lives in `dlsr-hvprof`, re-exported
/// here as part of the tracing API: [`report::StepReport`] percentile
/// rows are answered from it).
pub use dlsr_hvprof::Log2Histogram;

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Whether span/counter collection was compiled into this build
/// (the `enabled` cargo feature).
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Clock domain a span was measured against. Reports never compare
/// timestamps across domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Clock {
    /// Simulated seconds from a rank's virtual clock.
    Virtual,
    /// Real elapsed seconds since the process trace epoch.
    Wall,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    pub cat: String,
    pub rank: usize,
    pub start_s: f64,
    pub end_s: f64,
    pub clock: Clock,
}

impl TraceEvent {
    pub fn dur_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Canonical span categories. Instrumented crates use these constants so the
/// report/export layers can classify without string guessing.
pub mod cat {
    /// Simulator-modeled compute phases (virtual clock).
    pub const COMPUTE: &str = "compute";
    /// Packed GEMM / convolution kernel calls (wall clock).
    pub const GEMM: &str = "tensor.gemm";
    /// im2col / col2im lowering (wall clock).
    pub const IM2COL: &str = "tensor.im2col";
    /// Per-layer forward passes (wall clock).
    pub const NN_FWD: &str = "nn.forward";
    /// Per-layer backward passes (wall clock).
    pub const NN_BWD: &str = "nn.backward";
    /// Horovod coordinator negotiate rounds (virtual clock).
    pub const NEGOTIATE: &str = "negotiate";
    /// Fusion-buffer pack/unpack phases (virtual clock).
    pub const FUSION: &str = "horovod.fusion";
    /// Horovod-level fused allreduce of a gradient group (virtual clock).
    pub const ALLREDUCE: &str = "allreduce";
    /// MPI collective algorithm execution (virtual clock).
    pub const MPI: &str = "mpi";
    /// Point-to-point wire transfers in the transport model (virtual clock).
    pub const NET: &str = "net";
    /// Wall-clock launch points of overlapped fused allreduces, recorded on
    /// the rank's host timeline while backward is still running.
    /// Deliberately in *neither* [`COMPUTE_SET`] nor [`COMM_SET`]: these
    /// markers prove interleaving in wall time; the communication cost
    /// itself is accounted by the virtual-clock `allreduce`/`mpi`/`net`
    /// spans.
    pub const AR_LAUNCH: &str = "allreduce.launch";
    /// Fault-handling activity: checkpoint snapshots, restore-and-continue
    /// recoveries (virtual clock). In *neither* [`COMPUTE_SET`] nor
    /// [`COMM_SET`] — robustness overhead is its own budget, reported via
    /// the `faults.*` counters and the report's fault summary, and must not
    /// distort the paper's compute/communication decomposition.
    pub const FAULT: &str = "faults";

    /// Categories whose union per rank counts as compute time.
    pub const COMPUTE_SET: &[&str] = &[COMPUTE, GEMM, IM2COL, NN_FWD, NN_BWD];
    /// Categories whose union per rank counts as communication time.
    pub const COMM_SET: &[&str] = &[FUSION, ALLREDUCE, MPI, NET];
}

#[cfg(feature = "enabled")]
mod imp {
    use super::TraceEvent;
    use dlsr_attr as dlsr;
    use parking_lot::Mutex;
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, OnceLock};
    use std::time::Instant;

    pub static ENABLED: AtomicBool = AtomicBool::new(false);

    #[derive(Default)]
    pub struct ThreadBuf {
        pub events: Mutex<Vec<TraceEvent>>,
        pub counters: Mutex<BTreeMap<&'static str, f64>>,
        pub gauges: Mutex<BTreeMap<&'static str, f64>>,
    }

    static REGISTRY: Mutex<Vec<Arc<ThreadBuf>>> = Mutex::new(Vec::new());

    thread_local! {
        static LOCAL: Arc<ThreadBuf> = {
            let buf = Arc::new(ThreadBuf::default());
            REGISTRY.lock().push(buf.clone());
            buf
        };
        pub static RANK: Cell<usize> = const { Cell::new(0) };
    }

    /// Wall-clock zero for this process's trace. Wall-domain boundary:
    /// trace timestamps are host-side observability, never rank-visible
    /// state (the virtual clock lives in `&mut Comm`).
    #[dlsr::wall]
    pub fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    pub fn with_local<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
        LOCAL.with(|b| f(b))
    }

    /// Snapshot of every thread's buffer, including threads that have since
    /// exited (their `Arc` stays registered so no events are lost).
    pub fn all_bufs() -> Vec<Arc<ThreadBuf>> {
        REGISTRY.lock().clone()
    }
}

/// Turn runtime collection on or off. No-op unless compiled with the
/// `enabled` feature. Collection starts **off** so library code never
/// records unless a harness opts in.
pub fn set_enabled(_on: bool) {
    #[cfg(feature = "enabled")]
    imp::ENABLED.store(_on, std::sync::atomic::Ordering::Relaxed);
}

/// True when collection is compiled in *and* runtime-enabled. `const false`
/// without the feature, so `if is_on() { ... }` call sites (and their
/// formatting) compile out entirely.
#[inline(always)]
pub fn is_on() -> bool {
    #[cfg(feature = "enabled")]
    {
        imp::ENABLED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Tag the current thread with a rank; subsequent spans and counters
/// recorded on this thread carry it. `MpiWorld::run` calls this in each
/// per-rank thread.
pub fn set_thread_rank(_rank: usize) {
    #[cfg(feature = "enabled")]
    imp::RANK.with(|r| r.set(_rank));
}

/// Rank tag of the current thread (0 if never set).
pub fn thread_rank() -> usize {
    #[cfg(feature = "enabled")]
    {
        imp::RANK.with(|r| r.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Wall-clock seconds since the trace epoch.
pub fn now_wall_s() -> f64 {
    #[cfg(feature = "enabled")]
    {
        imp::epoch().elapsed().as_secs_f64()
    }
    #[cfg(not(feature = "enabled"))]
    {
        0.0
    }
}

fn push_event(_ev: TraceEvent) {
    #[cfg(feature = "enabled")]
    imp::with_local(|b| b.events.lock().push(_ev));
}

/// RAII wall-clock span. Opens at construction, records on drop. Inert when
/// collection is off.
pub struct SpanGuard {
    inner: Option<(String, &'static str, f64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, cat, start_s)) = self.inner.take() {
            push_event(TraceEvent {
                name,
                cat: cat.to_string(),
                rank: thread_rank(),
                start_s,
                end_s: now_wall_s(),
                clock: Clock::Wall,
            });
        }
    }
}

/// Open a wall-clock span. The name is only copied when collection is on.
pub fn span(name: &str, cat: &'static str) -> SpanGuard {
    span_with(|| name.to_string(), cat)
}

/// Open a wall-clock span with a lazily built name (skips the formatting
/// cost when collection is off).
pub fn span_with(name: impl FnOnce() -> String, cat: &'static str) -> SpanGuard {
    if is_on() {
        SpanGuard {
            inner: Some((name(), cat, now_wall_s())),
        }
    } else {
        SpanGuard { inner: None }
    }
}

/// An open virtual-clock span. Callers close it with [`VSpan::finish`],
/// passing the rank clock's end time; an unfinished `VSpan` records nothing.
#[must_use = "call finish(end_s) to record the span"]
pub struct VSpan {
    inner: Option<(String, &'static str, usize, f64)>,
}

impl VSpan {
    pub fn finish(mut self, end_s: f64) {
        if let Some((name, cat, rank, start_s)) = self.inner.take() {
            push_event(TraceEvent {
                name,
                cat: cat.to_string(),
                rank,
                start_s,
                end_s,
                clock: Clock::Virtual,
            });
        }
    }
}

/// Open a virtual-clock span for `rank` starting at `start_s` (the rank's
/// current virtual time). Name construction is skipped when collection is
/// off, but prefer guarding `format!` call sites with [`is_on`].
pub fn vspan(name: impl FnOnce() -> String, cat: &'static str, rank: usize, start_s: f64) -> VSpan {
    if is_on() {
        VSpan {
            inner: Some((name(), cat, rank, start_s)),
        }
    } else {
        VSpan { inner: None }
    }
}

/// Record a completed wall-clock span with an explicit rank tag. Kernels
/// that fan work out to rayon workers capture the dispatching rank thread's
/// [`thread_rank`] and pass it here so worker-side spans still attribute to
/// the right rank lane.
pub fn record_wall_span(
    name: impl FnOnce() -> String,
    cat: &'static str,
    rank: usize,
    start_s: f64,
    end_s: f64,
) {
    if is_on() {
        push_event(TraceEvent {
            name: name(),
            cat: cat.to_string(),
            rank,
            start_s,
            end_s,
            clock: Clock::Wall,
        });
    }
}

/// Record a completed virtual-clock span on the current thread's rank.
pub fn record_span(name: impl FnOnce() -> String, cat: &'static str, start_s: f64, end_s: f64) {
    if is_on() {
        push_event(TraceEvent {
            name: name(),
            cat: cat.to_string(),
            rank: thread_rank(),
            start_s,
            end_s,
            clock: Clock::Virtual,
        });
    }
}

/// Add `delta` to the monotonic counter `key` (thread-sharded, summed at
/// snapshot time).
pub fn counter_add(_key: &'static str, _delta: f64) {
    #[cfg(feature = "enabled")]
    if is_on() {
        imp::with_local(|b| *b.counters.lock().entry(_key).or_insert(0.0) += _delta);
    }
}

/// Set gauge `key` to `value` (last write per thread; snapshot takes the max
/// across threads).
pub fn gauge_set(_key: &'static str, _value: f64) {
    #[cfg(feature = "enabled")]
    if is_on() {
        imp::with_local(|b| {
            b.gauges.lock().insert(_key, _value);
        });
    }
}

/// Drain and return every recorded span from **all** threads (rank threads
/// and rayon workers alike). Counters are left in place.
pub fn take_events() -> Vec<TraceEvent> {
    #[cfg(feature = "enabled")]
    {
        let mut out = Vec::new();
        for buf in imp::all_bufs() {
            out.append(&mut buf.events.lock());
        }
        out
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Drain and return spans recorded by the **current** thread only. Rank
/// threads in the simulator use this at step boundaries so each
/// `RankRun` carries exactly its own spans.
pub fn take_thread_events() -> Vec<TraceEvent> {
    #[cfg(feature = "enabled")]
    {
        imp::with_local(|b| std::mem::take(&mut *b.events.lock()))
    }
    #[cfg(not(feature = "enabled"))]
    {
        Vec::new()
    }
}

/// Sum counters (and max-merge gauges, prefixed `gauge:`-free — gauges keep
/// their own keys) across all threads. Non-destructive.
pub fn counters_snapshot() -> BTreeMap<String, f64> {
    #[cfg(feature = "enabled")]
    {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for buf in imp::all_bufs() {
            for (k, v) in buf.counters.lock().iter() {
                *out.entry((*k).to_string()).or_insert(0.0) += v;
            }
            for (k, v) in buf.gauges.lock().iter() {
                let e = out.entry((*k).to_string()).or_insert(f64::MIN);
                *e = e.max(*v);
            }
        }
        out
    }
    #[cfg(not(feature = "enabled"))]
    {
        BTreeMap::new()
    }
}

/// Clear all recorded spans, counters, and gauges on every thread. Test and
/// CLI harnesses call this before a measured run.
pub fn reset() {
    #[cfg(feature = "enabled")]
    for buf in imp::all_bufs() {
        buf.events.lock().clear();
        buf.counters.lock().clear();
        buf.gauges.lock().clear();
    }
}

/// Convert spans into the existing chrome-trace [`dlsr_hvprof::timeline::Timeline`].
///
/// Virtual and wall spans land in the same timeline; wall spans are shifted
/// onto a separate process lane (`pid = rank + WALL_PID_BASE`) so the two
/// clock domains never interleave confusingly on one row.
pub fn to_timeline(events: &[TraceEvent]) -> dlsr_hvprof::timeline::Timeline {
    let mut tl = dlsr_hvprof::timeline::Timeline::new();
    for ev in events {
        let lane = match ev.clock {
            Clock::Virtual => ev.rank,
            Clock::Wall => ev.rank + WALL_PID_BASE,
        };
        tl.record(&ev.name, &ev.cat, lane, ev.start_s, ev.end_s);
    }
    tl
}

/// Rank offset applied to wall-clock spans in [`to_timeline`] so virtual and
/// wall lanes are distinct chrome-trace processes.
pub const WALL_PID_BASE: usize = 1000;

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that flip the global runtime flag serialize on this lock so
    // `cargo test` thread interleaving cannot cross-contaminate buffers.
    pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    #[test]
    fn disabled_records_nothing() {
        let _g = TEST_LOCK.lock();
        set_enabled(false);
        reset();
        let _s = span("noop", cat::GEMM);
        drop(_s);
        counter_add("x", 1.0);
        assert!(take_events().is_empty());
        assert!(counters_snapshot().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_counters_round_trip() {
        let _g = TEST_LOCK.lock();
        set_enabled(true);
        reset();
        set_thread_rank(3);
        {
            let _s = span("gemm 64x64", cat::GEMM);
        }
        record_span(|| "ring".to_string(), cat::MPI, 1.0, 2.0);
        let v = vspan(|| "ar[0]".to_string(), cat::ALLREDUCE, 3, 0.5);
        v.finish(0.75);
        counter_add("regcache.hit", 2.0);
        counter_add("regcache.hit", 1.0);
        gauge_set("fusion.util", 0.5);
        gauge_set("fusion.util", 0.25);

        let evs = take_thread_events();
        set_enabled(false);
        assert_eq!(evs.len(), 3);
        assert!(evs.iter().all(|e| e.rank == 3));
        let mpi = evs.iter().find(|e| e.cat == cat::MPI).unwrap();
        assert_eq!(mpi.clock, Clock::Virtual);
        assert!((mpi.dur_s() - 1.0).abs() < 1e-12);
        let wall = evs.iter().find(|e| e.cat == cat::GEMM).unwrap();
        assert_eq!(wall.clock, Clock::Wall);

        let c = counters_snapshot();
        assert_eq!(c["regcache.hit"], 3.0);
        assert_eq!(c["fusion.util"], 0.25);
        reset();
        assert!(counters_snapshot().is_empty());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn timeline_export_separates_clock_lanes() {
        let evs = vec![
            TraceEvent {
                name: "ar".into(),
                cat: cat::ALLREDUCE.into(),
                rank: 1,
                start_s: 0.0,
                end_s: 1.0,
                clock: Clock::Virtual,
            },
            TraceEvent {
                name: "conv".into(),
                cat: cat::NN_FWD.into(),
                rank: 1,
                start_s: 0.0,
                end_s: 1.0,
                clock: Clock::Wall,
            },
        ];
        let tl = to_timeline(&evs);
        let ranks: Vec<usize> = tl.events().iter().map(|e| e.rank).collect();
        assert!(ranks.contains(&1) && ranks.contains(&(1 + WALL_PID_BASE)));
    }
}
