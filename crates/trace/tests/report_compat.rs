//! Backward/forward compatibility of the `StepReport` JSON schema.
//!
//! `tests/fixtures/pre_pr7_report.json` is a *golden* artifact: the exact
//! `results/profile_report.json` the CLI wrote before the analysis layer
//! added `percentiles` and `critical_path`. It must keep deserializing
//! forever, with the new fields lifted to their defaults — the same
//! contract `FaultSummary` established for pre-fault reports.

use dlsr_trace::analyze::{critical_path, Attribution};
use dlsr_trace::report::StepReport;
use dlsr_trace::{cat, Clock, TraceEvent};

fn span(name: &str, cat: &'static str, rank: usize, start: f64, end: f64) -> TraceEvent {
    TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        rank,
        start_s: start,
        end_s: end,
        clock: Clock::Virtual,
    }
}

#[test]
fn golden_pre_pr7_report_deserializes_with_new_fields_defaulted() {
    let text = include_str!("fixtures/pre_pr7_report.json");
    let rep: StepReport = serde_json::from_str(text).expect("golden report loads");
    // The old payload survived intact...
    assert_eq!(rep.world, 8);
    assert_eq!(rep.ranks.len(), 8);
    assert!(rep.categories.contains_key(cat::GEMM));
    assert!(rep.fusion.groups > 0);
    // ...and the fields this schema version added are defaulted, not
    // errors: no percentile sketches, no attached critical path.
    assert!(rep.percentiles.0.is_empty());
    assert!(rep.critical_path.is_none());
    // A defaulted report still renders (no percentile table, no panic).
    let text = rep.render();
    assert!(text.contains("step breakdown"));
    assert!(!text.contains("category latency"));
}

#[test]
fn report_with_new_fields_round_trips_losslessly() {
    let events = vec![
        span("fwd b1", cat::COMPUTE, 0, 0.0, 1.0),
        span("fwd b1", cat::COMPUTE, 1, 0.0, 1.2),
        span("allreduce[g0] 8192B", cat::ALLREDUCE, 0, 1.0, 1.5),
        span("allreduce[g0] 8192B", cat::ALLREDUCE, 1, 1.2, 1.5),
        span("checkpoint step 0", cat::FAULT, 0, 1.5, 1.6),
    ];
    let counters = std::collections::BTreeMap::new();
    let mut rep = StepReport::build(&events, &counters);
    rep.attach_critical_path(critical_path(&events, 1));
    assert!(rep.critical_path.is_some());
    assert!(!rep.percentiles.0.is_empty());

    let json = rep.to_json();
    let back: StepReport = serde_json::from_str(&json).expect("new schema loads");
    assert_eq!(back, rep);
    // The attached path kept its attribution through the round trip.
    let cp = back.critical_path.expect("path survives");
    assert_eq!(cp.steps, 1);
    assert!((cp.total.total() - cp.makespan_s).abs() <= 0.01 * cp.makespan_s);
    // And an explicit-Null critical_path (a hand-edited or very old file)
    // still lifts to None rather than erroring.
    let degraded = json.replace("\"critical_path\":", "\"critical_path_renamed\":");
    let old: StepReport = serde_json::from_str(&degraded).expect("absent path tolerated");
    assert!(old.critical_path.is_none());
}

#[test]
fn chrome_trace_round_trips_the_new_span_kinds() {
    // Spans from the layers this PR touches — checkpoint/fault spans and
    // the collective spans the analyzer keys on — must survive the chrome
    // export: valid JSON, names and categories intact, lanes per rank.
    let events = vec![
        span("fwd b1", cat::COMPUTE, 0, 0.0, 1.0),
        span("checkpoint step 0", cat::FAULT, 0, 1.0, 1.1),
        span(
            "allreduce.RecursiveDoubling[g0] 8192B",
            cat::MPI,
            1,
            0.5,
            0.9,
        ),
        span("negotiate c3 5t", cat::NEGOTIATE, 1, 0.1, 0.2),
    ];
    let chrome = dlsr_trace::to_timeline(&events).to_chrome_trace();
    let parsed: serde_json::Value = serde_json::from_str(&chrome).expect("chrome JSON parses");
    let items = parsed.as_array().expect("chrome event array");
    for ev in &events {
        let found = items.iter().any(|it| {
            it["name"].as_str() == Some(ev.name.as_str())
                && it["cat"].as_str() == Some(ev.cat.as_str())
                && it["pid"].as_u64() == Some(ev.rank as u64)
        });
        assert!(found, "span `{}` missing from the chrome export", ev.name);
    }
}

#[test]
fn attribution_serde_defaults_cover_future_fields() {
    // Attribution itself must tolerate Null (e.g. a baseline written by a
    // build that predates a future bucket).
    let a: Attribution = serde_json::from_str("{\"compute_s\": 1.0, \"exposed_comm_s\": 0.25}")
        .expect("partial attribution loads");
    assert_eq!(a.compute_s, 1.0);
    assert_eq!(a.straggler_wait_s, 0.0);
    assert!((a.total() - 1.25).abs() < 1e-12);
}
