//! Loss functions. Each returns `(loss_value, grad_wrt_prediction)` so the
//! training loop can seed backpropagation directly.

use dlsr_tensor::{reduce, Result, Tensor, TensorError};

/// Mean absolute error — the loss EDSR trains with (L1 gives sharper SR
/// results than L2; see the EDSR paper).
pub fn l1_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    check(pred, target, "l1_loss")?;
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d.abs();
        *g = d.signum() / n;
    }
    Ok((loss / n, grad))
}

/// Mean squared error.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    check(pred, target, "mse_loss")?;
    let n = pred.numel() as f32;
    let mut grad = pred.clone();
    let mut loss = 0.0f32;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    Ok((loss / n, grad))
}

/// Softmax cross-entropy over rows of `logits: [N, classes]` against integer
/// labels. Used by the ResNet-50 comparator.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let (n, classes) = logits.shape().as_2d()?;
    if labels.len() != n {
        return Err(TensorError::InvalidArgument(format!(
            "cross_entropy: {} labels for {} rows",
            labels.len(),
            n
        )));
    }
    let log_p = reduce::log_softmax_rows(logits)?;
    let mut loss = 0.0f32;
    let mut grad = log_p.clone();
    for (r, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(TensorError::InvalidArgument(format!(
                "label {label} out of range for {classes} classes"
            )));
        }
        loss -= log_p.data()[r * classes + label];
        let row = &mut grad.data_mut()[r * classes..(r + 1) * classes];
        // d/dlogits = softmax − one_hot, averaged over batch
        for (j, g) in row.iter_mut().enumerate() {
            let p = g.exp();
            *g = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok((loss / n as f32, grad))
}

fn check(pred: &Tensor, target: &Tensor, context: &'static str) -> Result<()> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: pred.shape().dims().to_vec(),
            got: target.shape().dims().to_vec(),
            context,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_known_value_and_grad() {
        let p = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let t = Tensor::from_vec([2], vec![0.0, 0.0]).unwrap();
        let (loss, g) = l1_loss(&p, &t).unwrap();
        assert!((loss - 1.0).abs() < 1e-6);
        assert_eq!(g.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = Tensor::from_vec([2], vec![2.0, 0.0]).unwrap();
        let t = Tensor::from_vec([2], vec![0.0, 0.0]).unwrap();
        let (loss, g) = mse_loss(&p, &t).unwrap();
        assert!((loss - 2.0).abs() < 1e-6);
        assert_eq!(g.data(), &[2.0, 0.0]);
    }

    #[test]
    fn zero_loss_at_target() {
        let t = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(l1_loss(&t, &t).unwrap().0, 0.0);
        assert_eq!(mse_loss(&t, &t).unwrap().0, 0.0);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Tensor::from_vec([1, 3], vec![10.0, 0.0, 0.0]).unwrap();
        let bad = Tensor::from_vec([1, 3], vec![0.0, 10.0, 0.0]).unwrap();
        let (lg, _) = cross_entropy(&good, &[0]).unwrap();
        let (lb, _) = cross_entropy(&bad, &[0]).unwrap();
        assert!(lg < lb);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_differences() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.3, 0.1, 1.0, 0.2, -0.7]).unwrap();
        let labels = [2usize, 0];
        let (_, g) = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let fd = (cross_entropy(&lp, &labels).unwrap().0
                - cross_entropy(&lm, &labels).unwrap().0)
                / (2.0 * eps);
            assert!((g.data()[idx] - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn out_of_range_label_is_error() {
        let logits = Tensor::zeros([1, 3]);
        assert!(cross_entropy(&logits, &[3]).is_err());
        assert!(cross_entropy(&logits, &[0, 1]).is_err());
    }
}
