//! Trainable parameters.

use dlsr_tensor::Tensor;

/// A named trainable parameter: value plus accumulated gradient.
///
/// Gradients are *accumulated* across backward calls (PyTorch semantics);
/// the optimizer (or the Horovod distributed optimizer) zeroes them after a
/// step. Names are hierarchical (`body.3.conv1.weight`) so state dicts and
/// the Horovod coordinator can identify tensors across ranks.
#[derive(Debug, Clone)]
pub struct Param {
    /// Hierarchical name, unique within a model.
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Create a parameter with a zeroed gradient buffer.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Reset the gradient to zero (keeps the allocation).
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate_grad(&mut self, g: &Tensor) {
        debug_assert_eq!(g.shape(), self.value.shape());
        for (a, &b) in self.grad.data_mut().iter_mut().zip(g.data().iter()) {
            *a += b;
        }
    }

    /// Accumulate from a raw slice (used by conv bias gradients).
    pub fn accumulate_grad_slice(&mut self, g: &[f32]) {
        debug_assert_eq!(g.len(), self.grad.numel());
        for (a, &b) in self.grad.data_mut().iter_mut().zip(g.iter()) {
            *a += b;
        }
    }
}

/// Visitor over the mutable parameters of a module tree.
///
/// Optimizers, gradient synchronization and state-dict extraction all walk
/// parameters through this; the traversal order is deterministic and
/// identical on every rank.
pub type ParamVisitor<'a> = dyn FnMut(&mut Param) + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones([2, 2]));
        assert_eq!(p.numel(), 4);
        assert!(p.grad.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let mut p = Param::new("w", Tensor::zeros([2]));
        p.accumulate_grad(&Tensor::from_vec([2], vec![1.0, 2.0]).unwrap());
        p.accumulate_grad(&Tensor::from_vec([2], vec![0.5, 0.5]).unwrap());
        assert_eq!(p.grad.data(), &[1.5, 2.5]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn slice_accumulation() {
        let mut p = Param::new("b", Tensor::zeros([3]));
        p.accumulate_grad_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(p.grad.data(), &[1.0, 2.0, 3.0]);
    }
}
