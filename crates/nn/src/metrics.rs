//! Image-quality metrics: PSNR and SSIM, the two IQA methods the paper
//! cites for evaluating super-resolution output (§II-E).

use dlsr_tensor::{Result, Tensor, TensorError};

/// Peak signal-to-noise ratio in dB, for images in `[0, max_val]`.
///
/// `PSNR = 10 · log10(max_val² / MSE)`. Identical images yield `f32::INFINITY`.
pub fn psnr(a: &Tensor, b: &Tensor, max_val: f32) -> Result<f32> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().dims().to_vec(),
            got: b.shape().dims().to_vec(),
            context: "psnr",
        });
    }
    let mse = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        / a.numel() as f32;
    if mse == 0.0 {
        return Ok(f32::INFINITY);
    }
    Ok(10.0 * (max_val * max_val / mse).log10())
}

/// Structural similarity index over an NCHW batch using the standard
/// 8×8 block formulation (windows averaged over all planes).
///
/// Constants follow Wang et al. 2004: `C1 = (0.01·L)², C2 = (0.03·L)²`.
pub fn ssim(a: &Tensor, b: &Tensor, max_val: f32) -> Result<f32> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().dims().to_vec(),
            got: b.shape().dims().to_vec(),
            context: "ssim",
        });
    }
    let (n, c, h, w) = a.shape().as_nchw()?;
    const WIN: usize = 8;
    if h < WIN || w < WIN {
        return Err(TensorError::InvalidArgument(format!(
            "ssim requires at least {WIN}×{WIN} images, got {h}×{w}"
        )));
    }
    let c1 = (0.01 * max_val) * (0.01 * max_val);
    let c2 = (0.03 * max_val) * (0.03 * max_val);
    let mut total = 0.0f64;
    let mut windows = 0u64;
    for plane in 0..n * c {
        let pa = &a.data()[plane * h * w..(plane + 1) * h * w];
        let pb = &b.data()[plane * h * w..(plane + 1) * h * w];
        for by in (0..=h - WIN).step_by(WIN) {
            for bx in (0..=w - WIN).step_by(WIN) {
                let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
                for y in by..by + WIN {
                    for x in bx..bx + WIN {
                        let (va, vb) = (pa[y * w + x] as f64, pb[y * w + x] as f64);
                        sa += va;
                        sb += vb;
                        saa += va * va;
                        sbb += vb * vb;
                        sab += va * vb;
                    }
                }
                let np = (WIN * WIN) as f64;
                let (ma, mb) = (sa / np, sb / np);
                let va = saa / np - ma * ma;
                let vb = sbb / np - mb * mb;
                let cov = sab / np - ma * mb;
                let s = ((2.0 * ma * mb + c1 as f64) * (2.0 * cov + c2 as f64))
                    / ((ma * ma + mb * mb + c1 as f64) * (va + vb + c2 as f64));
                total += s;
                windows += 1;
            }
        }
    }
    Ok((total / windows as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_tensor::init;

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let a = init::uniform([1, 1, 4, 4], 0.0, 1.0, 1);
        assert_eq!(psnr(&a, &a, 1.0).unwrap(), f32::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01 → PSNR = 10·log10(1/0.01) = 20 dB
        let a = Tensor::zeros([1, 1, 1, 4]);
        let b = Tensor::full([1, 1, 1, 4], 0.1);
        let p = psnr(&a, &b, 1.0).unwrap();
        assert!((p - 20.0).abs() < 1e-4);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let clean = init::uniform([1, 1, 8, 8], 0.0, 1.0, 2);
        let small = dlsr_tensor::elementwise::add_scalar(&clean, 0.01);
        let large = dlsr_tensor::elementwise::add_scalar(&clean, 0.1);
        assert!(psnr(&clean, &small, 1.0).unwrap() > psnr(&clean, &large, 1.0).unwrap());
    }

    #[test]
    fn ssim_identity_is_one() {
        let a = init::uniform([1, 1, 16, 16], 0.0, 1.0, 3);
        let s = ssim(&a, &a, 1.0).unwrap();
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ssim_penalizes_structural_noise() {
        let a = init::uniform([1, 1, 16, 16], 0.3, 0.7, 4);
        let noise = init::uniform([1, 1, 16, 16], -0.2, 0.2, 5);
        let b = dlsr_tensor::elementwise::add(&a, &noise).unwrap();
        let s = ssim(&a, &b, 1.0).unwrap();
        assert!(s < 0.999);
        assert!(s > 0.0);
    }

    #[test]
    fn tiny_image_is_error() {
        let a = Tensor::zeros([1, 1, 4, 4]);
        assert!(ssim(&a, &a, 1.0).is_err());
    }
}
