//! Checkpointing: named state dicts with file round-trips.
//!
//! Cluster training jobs (the paper's are hours long on 512 GPUs) live and
//! die by checkpoints. The format is deliberately simple: a JSON header of
//! named shapes followed by raw little-endian f32 data, so checkpoints are
//! portable and inspectable.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::module::Module;

/// A model's parameters keyed by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    /// name → (shape, values)
    pub entries: BTreeMap<String, (Vec<usize>, Vec<f32>)>,
}

/// Errors from checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Header was not valid JSON/format.
    Format(String),
    /// Loaded state does not match the model architecture.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

const MAGIC: &[u8; 8] = b"DLSRCKP1";

impl StateDict {
    /// Capture a model's parameters.
    pub fn from_module(model: &mut dyn Module) -> Self {
        let mut entries = BTreeMap::new();
        model.visit_params(&mut |p| {
            entries.insert(
                p.name.clone(),
                (p.value.shape().dims().to_vec(), p.value.data().to_vec()),
            );
        });
        StateDict { entries }
    }

    /// Load into a model of identical architecture (names and shapes must
    /// match exactly).
    pub fn load_into(&self, model: &mut dyn Module) -> Result<(), CheckpointError> {
        let mut missing = Vec::new();
        let mut seen = 0usize;
        let mut err: Option<CheckpointError> = None;
        model.visit_params(&mut |p| {
            seen += 1;
            match self.entries.get(&p.name) {
                None => missing.push(p.name.clone()),
                Some((shape, values)) => {
                    if shape != p.value.shape().dims() {
                        err.get_or_insert(CheckpointError::Mismatch(format!(
                            "shape of `{}`: checkpoint {:?} vs model {:?}",
                            p.name,
                            shape,
                            p.value.shape().dims()
                        )));
                    } else {
                        p.value.data_mut().copy_from_slice(values);
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if !missing.is_empty() {
            return Err(CheckpointError::Mismatch(format!(
                "parameters missing from checkpoint: {missing:?}"
            )));
        }
        if seen != self.entries.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint has {} entries, model has {seen} parameters",
                self.entries.len()
            )));
        }
        Ok(())
    }

    /// Total scalar count.
    pub fn numel(&self) -> usize {
        self.entries.values().map(|(_, v)| v.len()).sum()
    }

    /// Serialize to a writer: magic, JSON header (names + shapes), then raw
    /// little-endian f32 payloads in name order.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        w.write_all(MAGIC)?;
        let header: BTreeMap<&String, &Vec<usize>> =
            self.entries.iter().map(|(k, (s, _))| (k, s)).collect();
        let header =
            serde_json::to_vec(&header).map_err(|e| CheckpointError::Format(e.to_string()))?;
        w.write_all(&(header.len() as u64).to_le_bytes())?;
        w.write_all(&header)?;
        for (_, values) in self.entries.values() {
            for v in values {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialize from a reader (inverse of [`StateDict::write_to`]).
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let mut len = [0u8; 8];
        r.read_exact(&mut len)?;
        let mut header = vec![0u8; u64::from_le_bytes(len) as usize];
        r.read_exact(&mut header)?;
        let shapes: BTreeMap<String, Vec<usize>> =
            serde_json::from_slice(&header).map_err(|e| CheckpointError::Format(e.to_string()))?;
        let mut entries = BTreeMap::new();
        for (name, shape) in shapes {
            let n: usize = shape.iter().product();
            let mut values = vec![0f32; n];
            let mut buf = [0u8; 4];
            for v in values.iter_mut() {
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            entries.insert(name, (shape, values));
        }
        Ok(StateDict { entries })
    }

    /// Save to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let f = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(f))
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let f = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Conv2d;
    use crate::module::ModuleExt;
    use dlsr_tensor::conv::Conv2dParams;

    fn model(seed: u64) -> Conv2d {
        Conv2d::new("conv", 2, 3, 3, Conv2dParams::same(3), seed)
    }

    #[test]
    fn capture_and_restore_round_trip() {
        let mut a = model(1);
        let mut b = model(2);
        assert_ne!(a.flatten_params(), b.flatten_params());
        let dict = StateDict::from_module(&mut a);
        dict.load_into(&mut b).unwrap();
        assert_eq!(a.flatten_params(), b.flatten_params());
    }

    #[test]
    fn byte_round_trip_preserves_exact_values() {
        let mut a = model(3);
        let dict = StateDict::from_module(&mut a);
        let mut bytes = Vec::new();
        dict.write_to(&mut bytes).unwrap();
        let back = StateDict::read_from(bytes.as_slice()).unwrap();
        assert_eq!(dict, back);
        assert_eq!(back.numel(), 2 * 3 * 9 + 3);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dlsr_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conv.ckpt");
        let mut a = model(4);
        StateDict::from_module(&mut a).save(&path).unwrap();
        let loaded = StateDict::load(&path).unwrap();
        let mut b = model(5);
        loaded.load_into(&mut b).unwrap();
        assert_eq!(a.flatten_params(), b.flatten_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut a = model(1);
        let dict = StateDict::from_module(&mut a);
        let mut other = Conv2d::new("conv", 2, 4, 3, Conv2dParams::same(3), 1);
        assert!(matches!(
            dict.load_into(&mut other),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn missing_parameter_is_detected() {
        let mut a = model(1);
        let mut dict = StateDict::from_module(&mut a);
        dict.entries.remove("conv.bias");
        assert!(matches!(
            dict.load_into(&mut a),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = b"NOTDLSR0\0\0\0\0\0\0\0\0";
        assert!(matches!(
            StateDict::read_from(bytes.as_slice()),
            Err(CheckpointError::Format(_))
        ));
    }
}
