//! The [`Module`] trait and composite containers.

use dlsr_tensor::{Result, Tensor};

use crate::param::Param;

/// A differentiable network component.
///
/// Contract:
/// - `forward` caches whatever context `backward` needs (typically its
///   input). Calling `backward` without a preceding `forward` is a logic
///   error and panics.
/// - `backward` consumes the cached context, **accumulates** gradients into
///   its parameters, and returns the gradient with respect to its input.
/// - `visit_params` walks parameters in a deterministic order that is stable
///   across ranks and runs (required by gradient synchronization).
pub trait Module: Send {
    /// Forward pass (training mode: caches context for backward).
    fn forward(&mut self, x: &Tensor) -> Result<Tensor>;

    /// Backward pass: returns dL/d(input), accumulates parameter grads.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Backward pass with a gradient-readiness hook: `hook` fires once per
    /// parameter, as soon as that parameter's gradient has reached its
    /// final value for this step, in **reverse [`Module::visit_params`]
    /// order** (output layers first — the order backward finalizes them).
    /// This is what lets a distributed optimizer launch fused allreduces
    /// while backward is still running on earlier layers.
    ///
    /// Gradients and the returned input-gradient are identical to
    /// [`Module::backward`]; the default implementation literally runs
    /// `backward` and then fires the hook for every parameter. Composite
    /// modules override it to fire hooks incrementally between children.
    fn backward_with_hook(
        &mut self,
        grad_out: &Tensor,
        hook: &mut dyn FnMut(&mut Param),
    ) -> Result<Tensor> {
        let g = self.backward(grad_out)?;
        let mut n = 0usize;
        self.visit_params(&mut |_| n += 1);
        // fire in reverse visit order (quadratic walk, but leaf modules
        // hold one or two params)
        for target in (0..n).rev() {
            let mut i = 0usize;
            self.visit_params(&mut |p| {
                if i == target {
                    hook(p);
                }
                i += 1;
            });
        }
        Ok(g)
    }

    /// Visit every trainable parameter (deterministic order).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Forward pass without caching (inference). Default: forward.
    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward(x)
    }
}

/// Helpers available on any module.
pub trait ModuleExt: Module {
    /// Collect `(name, numel)` for every parameter.
    fn param_summary(&mut self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push((p.name.clone(), p.numel())));
        out
    }

    /// Total trainable scalar count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Flatten all parameter *values* into one buffer (deterministic order).
    fn flatten_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
        out
    }

    /// Overwrite all parameter values from a flat buffer produced by
    /// [`ModuleExt::flatten_params`] on a module of identical architecture.
    fn load_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.numel();
            p.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat parameter buffer length mismatch");
    }

    /// Flatten all parameter *gradients* into one buffer.
    fn flatten_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
        out
    }

    /// Overwrite all gradients from a flat buffer (after an allreduce).
    fn load_flat_grads(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.numel();
            p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat gradient buffer length mismatch");
    }
}

impl<M: Module + ?Sized> ModuleExt for M {}

/// A sequence of modules applied in order.
pub struct Sequential {
    mods: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Empty sequence.
    pub fn new() -> Self {
        Sequential { mods: Vec::new() }
    }

    /// Append a module (builder style).
    pub fn push(mut self, m: impl Module + 'static) -> Self {
        self.mods.push(Box::new(m));
        self
    }

    /// Append a boxed module.
    pub fn push_boxed(mut self, m: Box<dyn Module>) -> Self {
        self.mods.push(m);
        self
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// True when the sequence has no children.
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for m in &mut self.mods {
            cur = m.forward(&cur)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for m in self.mods.iter_mut().rev() {
            g = m.backward(&g)?;
        }
        Ok(g)
    }

    fn backward_with_hook(
        &mut self,
        grad_out: &Tensor,
        hook: &mut dyn FnMut(&mut Param),
    ) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for m in self.mods.iter_mut().rev() {
            g = m.backward_with_hook(&g, hook)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in &mut self.mods {
            m.visit_params(f);
        }
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for m in &mut self.mods {
            cur = m.predict(&cur)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Scale;

    #[test]
    fn sequential_composes_forward_and_backward() {
        // y = (2x) * 3 → dy/dx = 6
        let mut s = Sequential::new()
            .push(Scale::new(2.0))
            .push(Scale::new(3.0));
        let x = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let y = s.forward(&x).unwrap();
        assert_eq!(y.data(), &[6.0, -6.0]);
        let g = s.backward(&Tensor::ones([2])).unwrap();
        assert_eq!(g.data(), &[6.0, 6.0]);
    }

    #[test]
    fn flatten_load_round_trip() {
        use crate::layers::Conv2d;
        let mut a = Conv2d::new("c", 2, 3, 3, Default::default(), 1);
        let mut b = Conv2d::new("c", 2, 3, 3, Default::default(), 2);
        assert_ne!(a.flatten_params(), b.flatten_params());
        let flat = a.flatten_params();
        b.load_flat_params(&flat);
        assert_eq!(a.flatten_params(), b.flatten_params());
    }

    #[test]
    fn num_params_counts() {
        use crate::layers::Conv2d;
        let mut c = Conv2d::new("c", 2, 4, 3, Default::default(), 1);
        // weight 4*2*3*3 + bias 4
        assert_eq!(c.num_params(), 72 + 4);
    }

    #[test]
    fn backward_with_hook_fires_reverse_visit_order_with_final_grads() {
        use crate::layers::Conv2d;
        use dlsr_tensor::init;
        let build = |seed: u64| {
            Sequential::new()
                .push(Conv2d::new("a", 2, 3, 3, Default::default(), seed))
                .push(Conv2d::new("b", 3, 2, 3, Default::default(), seed + 1))
        };
        let x = init::uniform([1, 2, 7, 7], -1.0, 1.0, 5);

        let mut plain = build(9);
        let y = plain.forward(&x).unwrap();
        let gy = Tensor::ones(y.shape().clone());
        let g_plain = plain.backward(&gy).unwrap();
        let mut final_grads = Vec::new();
        plain.visit_params(&mut |p| final_grads.push((p.name.clone(), p.grad.data().to_vec())));

        let mut hooked = build(9);
        hooked.forward(&x).unwrap();
        let mut fired = Vec::new();
        let g_hooked = hooked
            .backward_with_hook(&gy, &mut |p| {
                fired.push((p.name.clone(), p.grad.data().to_vec()))
            })
            .unwrap();

        // input gradient identical to the plain path
        assert_eq!(g_plain.data(), g_hooked.data());
        // one hook per param, in exact reverse visit order
        let visit_names: Vec<String> = final_grads.iter().map(|(n, _)| n.clone()).collect();
        let fired_names: Vec<String> = fired.iter().map(|(n, _)| n.clone()).collect();
        let mut want = visit_names.clone();
        want.reverse();
        assert_eq!(fired_names, want);
        // gradients observed at fire time are the final values
        for (name, grad_at_fire) in &fired {
            let (_, final_grad) = final_grads.iter().find(|(n, _)| n == name).unwrap();
            assert_eq!(grad_at_fire, final_grad, "{name} grad not final at hook");
        }
    }

    #[test]
    fn default_hook_impl_covers_unoverridden_modules() {
        use crate::layers::Linear;
        use dlsr_tensor::init;
        let mut lin = Linear::new("l", 4, 3, 11);
        let x = init::uniform([2, 4], -1.0, 1.0, 12);
        lin.forward(&x).unwrap();
        let mut names = Vec::new();
        lin.backward_with_hook(&Tensor::ones([2, 3]), &mut |p| names.push(p.name.clone()))
            .unwrap();
        // Linear visits weight then bias ⇒ hooks fire bias then weight
        assert_eq!(names, vec!["l.bias".to_string(), "l.weight".to_string()]);
    }
}
