//! The [`Module`] trait and composite containers.

use dlsr_tensor::{Result, Tensor};

use crate::param::Param;

/// A differentiable network component.
///
/// Contract:
/// - `forward` caches whatever context `backward` needs (typically its
///   input). Calling `backward` without a preceding `forward` is a logic
///   error and panics.
/// - `backward` consumes the cached context, **accumulates** gradients into
///   its parameters, and returns the gradient with respect to its input.
/// - `visit_params` walks parameters in a deterministic order that is stable
///   across ranks and runs (required by gradient synchronization).
pub trait Module: Send {
    /// Forward pass (training mode: caches context for backward).
    fn forward(&mut self, x: &Tensor) -> Result<Tensor>;

    /// Backward pass: returns dL/d(input), accumulates parameter grads.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visit every trainable parameter (deterministic order).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Forward pass without caching (inference). Default: forward.
    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward(x)
    }
}

/// Helpers available on any module.
pub trait ModuleExt: Module {
    /// Collect `(name, numel)` for every parameter.
    fn param_summary(&mut self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push((p.name.clone(), p.numel())));
        out
    }

    /// Total trainable scalar count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Zero every parameter gradient.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Flatten all parameter *values* into one buffer (deterministic order).
    fn flatten_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
        out
    }

    /// Overwrite all parameter values from a flat buffer produced by
    /// [`ModuleExt::flatten_params`] on a module of identical architecture.
    fn load_flat_params(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.numel();
            p.value.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat parameter buffer length mismatch");
    }

    /// Flatten all parameter *gradients* into one buffer.
    fn flatten_grads(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
        out
    }

    /// Overwrite all gradients from a flat buffer (after an allreduce).
    fn load_flat_grads(&mut self, flat: &[f32]) {
        let mut off = 0usize;
        self.visit_params(&mut |p| {
            let n = p.numel();
            p.grad.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "flat gradient buffer length mismatch");
    }
}

impl<M: Module + ?Sized> ModuleExt for M {}

/// A sequence of modules applied in order.
pub struct Sequential {
    mods: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Empty sequence.
    pub fn new() -> Self {
        Sequential { mods: Vec::new() }
    }

    /// Append a module (builder style).
    pub fn push(mut self, m: impl Module + 'static) -> Self {
        self.mods.push(Box::new(m));
        self
    }

    /// Append a boxed module.
    pub fn push_boxed(mut self, m: Box<dyn Module>) -> Self {
        self.mods.push(m);
        self
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.mods.len()
    }

    /// True when the sequence has no children.
    pub fn is_empty(&self) -> bool {
        self.mods.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for m in &mut self.mods {
            cur = m.forward(&cur)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for m in self.mods.iter_mut().rev() {
            g = m.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in &mut self.mods {
            m.visit_params(f);
        }
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for m in &mut self.mods {
            cur = m.predict(&cur)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Scale;

    #[test]
    fn sequential_composes_forward_and_backward() {
        // y = (2x) * 3 → dy/dx = 6
        let mut s = Sequential::new()
            .push(Scale::new(2.0))
            .push(Scale::new(3.0));
        let x = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let y = s.forward(&x).unwrap();
        assert_eq!(y.data(), &[6.0, -6.0]);
        let g = s.backward(&Tensor::ones([2])).unwrap();
        assert_eq!(g.data(), &[6.0, 6.0]);
    }

    #[test]
    fn flatten_load_round_trip() {
        use crate::layers::Conv2d;
        let mut a = Conv2d::new("c", 2, 3, 3, Default::default(), 1);
        let mut b = Conv2d::new("c", 2, 3, 3, Default::default(), 2);
        assert_ne!(a.flatten_params(), b.flatten_params());
        let flat = a.flatten_params();
        b.load_flat_params(&flat);
        assert_eq!(a.flatten_params(), b.flatten_params());
    }

    #[test]
    fn num_params_counts() {
        use crate::layers::Conv2d;
        let mut c = Conv2d::new("c", 2, 4, 3, Default::default(), 1);
        // weight 4*2*3*3 + bias 4
        assert_eq!(c.num_params(), 72 + 4);
    }
}
