//! EDSR's MeanShift: fixed per-channel offset layers that subtract the
//! dataset RGB mean at the input and add it back at the output. No
//! trainable parameters; gradient passes through unchanged.

use dlsr_tensor::{elementwise, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Fixed per-channel shift: `out[:,c] = in[:,c] + sign · mean[c]`.
pub struct MeanShift {
    shift: Vec<f32>,
}

impl MeanShift {
    /// Subtract the channel means (input normalization).
    pub fn subtract(means: &[f32]) -> Self {
        MeanShift {
            shift: means.iter().map(|m| -m).collect(),
        }
    }

    /// Add the channel means back (output de-normalization).
    pub fn add(means: &[f32]) -> Self {
        MeanShift {
            shift: means.to_vec(),
        }
    }
}

impl Module for MeanShift {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        elementwise::add_channel(x, &self.shift)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        Ok(grad_out.clone())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtract_then_add_is_identity() {
        let means = [0.4488, 0.4371, 0.4040]; // DIV2K RGB means
        let x = dlsr_tensor::init::uniform([1, 3, 2, 2], 0.0, 1.0, 1);
        let mut sub = MeanShift::subtract(&means);
        let mut add = MeanShift::add(&means);
        let y = add.forward(&sub.forward(&x).unwrap()).unwrap();
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn gradient_is_identity() {
        let mut m = MeanShift::subtract(&[0.5]);
        let g = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]).unwrap();
        assert_eq!(m.backward(&g).unwrap(), g);
    }
}
