//! Fully-connected layer.

use dlsr_tensor::matmul::{matmul_a_bt, matmul_at_b, matmul_into};
use dlsr_tensor::{init, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Affine map `y = x·Wᵀ + b` with `x: [N, in]`, `W: [out, in]`, `y: [N, out]`.
pub struct Linear {
    weight: Param,
    bias: Param,
    input_cache: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized linear layer.
    pub fn new(name: &str, in_features: usize, out_features: usize, seed: u64) -> Self {
        Linear {
            weight: Param::new(
                format!("{name}.weight"),
                init::kaiming_linear(out_features, in_features, seed),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros([out_features])),
            input_cache: None,
        }
    }

    fn apply(&self, x: &Tensor) -> Result<Tensor> {
        let (n, in_f) = x.shape().as_2d()?;
        let (out_f, in_w) = self.weight.value.shape().as_2d()?;
        assert_eq!(in_f, in_w, "Linear input feature mismatch");
        let mut y = Tensor::zeros([n, out_f]);
        // y = x (N×in) · Wᵀ  — W stored row-major [out, in]
        matmul_a_bt(
            x.data(),
            self.weight.value.data(),
            y.data_mut(),
            n,
            in_f,
            out_f,
        );
        for row in y.data_mut().chunks_mut(out_f) {
            for (v, &b) in row.iter_mut().zip(self.bias.value.data()) {
                *v += b;
            }
        }
        Ok(y)
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let _span = dlsr_trace::span_with(
            || {
                self.weight
                    .name
                    .strip_suffix(".weight")
                    .unwrap_or(&self.weight.name)
                    .to_string()
            },
            dlsr_trace::cat::NN_FWD,
        );
        self.input_cache = Some(x.clone());
        self.apply(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let _span = dlsr_trace::span_with(
            || {
                self.weight
                    .name
                    .strip_suffix(".weight")
                    .unwrap_or(&self.weight.name)
                    .to_string()
            },
            dlsr_trace::cat::NN_BWD,
        );
        let x = self
            .input_cache
            .take()
            .expect("Linear::backward called without forward");
        let (n, in_f) = x.shape().as_2d()?;
        let (_, out_f) = grad_out.shape().as_2d()?;

        // grad_W[out, in] = gᵀ (out×N) · x (N×in)
        let mut gw = vec![0.0f32; out_f * in_f];
        matmul_at_b(grad_out.data(), x.data(), &mut gw, n, out_f, in_f);
        self.weight.accumulate_grad_slice(&gw);

        // grad_b[out] = column sums of g
        let mut gb = vec![0.0f32; out_f];
        for row in grad_out.data().chunks(out_f) {
            for (b, &g) in gb.iter_mut().zip(row) {
                *b += g;
            }
        }
        self.bias.accumulate_grad_slice(&gb);

        // grad_x (N×in) = g (N×out) · W (out×in)
        let mut gx = Tensor::zeros([n, in_f]);
        matmul_into(
            grad_out.data(),
            self.weight.value.data(),
            gx.data_mut(),
            n,
            out_f,
            in_f,
        );
        Ok(gx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.apply(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new("fc", 2, 2, 1);
        l.weight.value = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        l.bias.value = Tensor::from_vec([2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap();
        let y = l.forward(&x).unwrap();
        // y = [1+2+0.5, 3+4-0.5]
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut l = Linear::new("fc", 3, 2, 7);
        let x = init::uniform([2, 3], -1.0, 1.0, 8);
        let y = l.forward(&x).unwrap();
        let gy = Tensor::ones(y.shape().clone());
        let gx = l.backward(&gy).unwrap();

        let eps = 1e-2f32;
        let loss = |l: &Linear, x: &Tensor| l.apply(x).unwrap().data().iter().sum::<f32>();
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
            assert!((gx.data()[idx] - fd).abs() < 1e-2);
        }
        // weight grad finite diff on one entry
        let widx = 4;
        let mut lp = Linear::new("fc", 3, 2, 7);
        lp.weight.value.data_mut()[widx] += eps;
        let mut lm = Linear::new("fc", 3, 2, 7);
        lm.weight.value.data_mut()[widx] -= eps;
        let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
        assert!((l.weight.grad.data()[widx] - fd).abs() < 1e-2);
    }
}
