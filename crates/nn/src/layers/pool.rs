//! Pooling layers for the classification comparator model.

use dlsr_tensor::pool;
use dlsr_tensor::{Result, Shape, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Max pooling with square window and stride.
pub struct MaxPool2d {
    k: usize,
    s: usize,
    ctx: Option<(Vec<usize>, Shape)>,
}

impl MaxPool2d {
    /// Window `k`, stride `s`.
    pub fn new(k: usize, s: usize) -> Self {
        MaxPool2d { k, s, ctx: None }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let (y, argmax) = pool::max_pool2d(x, self.k, self.s)?;
        self.ctx = Some((argmax, x.shape().clone()));
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (argmax, shape) = self
            .ctx
            .take()
            .expect("MaxPool2d::backward called without forward");
        pool::max_pool2d_backward(grad_out, &argmax, &shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        Ok(pool::max_pool2d(x, self.k, self.s)?.0)
    }
}

/// Global average pooling NCHW → [N, C].
#[derive(Default)]
pub struct GlobalAvgPool {
    hw: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// New layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let (_, _, h, w) = x.shape().as_nchw()?;
        self.hw = Some((h, w));
        pool::global_avg_pool(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (h, w) = self
            .hw
            .take()
            .expect("GlobalAvgPool::backward called without forward");
        pool::global_avg_pool_backward(grad_out, h, w)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        pool::global_avg_pool(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_round_trip() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 4.0, 2.0, 3.0]).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let g = p
            .backward(&Tensor::from_vec([1, 1, 1, 1], vec![1.0]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_round_trip() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.data(), &[3.0]);
        let g = p
            .backward(&Tensor::from_vec([1, 1], vec![4.0]).unwrap())
            .unwrap();
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }
}
