//! Convolution layer.

use dlsr_tensor::conv::{conv2d_backward, conv2d_fused, Act, Conv2dParams};
use dlsr_tensor::{elementwise, init, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// 2-D convolution with optional bias and an optionally fused activation.
///
/// [`Conv2d::forward_act`] runs bias and activation inside the convolution
/// GEMM epilogue (one pass over the output instead of three); the backward
/// pass applies the matching activation mask before the convolution
/// adjoints, so callers fusing an activation must *not* also run a separate
/// activation layer.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    conv: Conv2dParams,
    input_cache: Option<Tensor>,
    /// Post-activation output cached by a fused-ReLU forward; its sign
    /// pattern is the backward mask (`y > 0 ⇔ pre-activation > 0`).
    act_output: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution with bias.
    pub fn new(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
    ) -> Self {
        Self::build(name, c_in, c_out, k, conv, seed, true)
    }

    /// Kaiming-initialized convolution without bias (for BN-followed convs).
    pub fn new_no_bias(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
    ) -> Self {
        Self::build(name, c_in, c_out, k, conv, seed, false)
    }

    fn build(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
        with_bias: bool,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_conv(c_out, c_in, k, k, seed),
        );
        let bias = with_bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros([c_out])));
        Conv2d {
            weight,
            bias,
            conv,
            input_cache: None,
            act_output: None,
        }
    }

    /// The convolution hyper-parameters.
    pub fn conv_params(&self) -> Conv2dParams {
        self.conv
    }

    /// Layer name as passed to the constructor (parameters are named
    /// `{layer}.weight` / `{layer}.bias`).
    fn layer_name(&self) -> &str {
        self.weight
            .name
            .strip_suffix(".weight")
            .unwrap_or(&self.weight.name)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Forward pass with `act` fused into the convolution epilogue. The
    /// matching mask is applied automatically in [`Module::backward`].
    pub fn forward_act(&mut self, x: &Tensor, act: Act) -> Result<Tensor> {
        let _span =
            dlsr_trace::span_with(|| self.layer_name().to_string(), dlsr_trace::cat::NN_FWD);
        self.input_cache = Some(x.clone());
        let y = conv2d_fused(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.data()),
            act,
            self.conv,
        )?;
        self.act_output = match act {
            Act::Relu => Some(y.clone()),
            Act::Identity => None,
        };
        Ok(y)
    }

    /// Inference-only forward with a fused activation (no caches).
    pub fn predict_act(&mut self, x: &Tensor, act: Act) -> Result<Tensor> {
        conv2d_fused(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.data()),
            act,
            self.conv,
        )
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward_act(x, Act::Identity)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let _span =
            dlsr_trace::span_with(|| self.layer_name().to_string(), dlsr_trace::cat::NN_BWD);
        let input = self
            .input_cache
            .take()
            .expect("Conv2d::backward called without forward");
        let masked;
        let grad_out = match self.act_output.take() {
            Some(y) => {
                masked = elementwise::relu_backward(grad_out, &y)?;
                &masked
            }
            None => grad_out,
        };
        let (gi, gw, gb) = conv2d_backward(&input, &self.weight.value, grad_out, self.conv)?;
        self.weight.accumulate_grad(&gw);
        if let Some(bias) = &mut self.bias {
            bias.accumulate_grad_slice(&gb);
        }
        Ok(gi)
    }

    fn backward_with_hook(
        &mut self,
        grad_out: &Tensor,
        hook: &mut dyn FnMut(&mut Param),
    ) -> Result<Tensor> {
        let g = self.backward(grad_out)?;
        // reverse visit order: bias finalizes conceptually with the weight,
        // but readiness fires output-side-first
        if let Some(b) = &mut self.bias {
            hook(b);
        }
        hook(&mut self.weight);
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        self.predict_act(x, Act::Identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleExt;
    use dlsr_tensor::reduce;

    #[test]
    fn forward_backward_shapes() {
        let mut c = Conv2d::new("c", 3, 8, 3, Conv2dParams::same(3), 1);
        let x = init::uniform([2, 3, 6, 6], -1.0, 1.0, 2);
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8, 6, 6]);
        let gi = c.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(gi.shape().dims(), x.shape().dims());
    }

    #[test]
    fn gradient_decreases_loss() {
        // One SGD step on sum-of-squares loss must reduce it: end-to-end
        // sanity that gradients point downhill.
        let mut c = Conv2d::new("c", 1, 1, 3, Conv2dParams::same(3), 3);
        let x = init::uniform([1, 1, 5, 5], -1.0, 1.0, 4);
        let y = c.forward(&x).unwrap();
        let loss0 = reduce::mean_sq(&y);
        // dL/dy = 2y/n
        let n = y.numel() as f32;
        let gy = dlsr_tensor::elementwise::scale(&y, 2.0 / n);
        c.backward(&gy).unwrap();
        let lr = 0.1;
        c.visit_params(&mut |p| {
            let g = p.grad.clone();
            for (v, gv) in p.value.data_mut().iter_mut().zip(g.data()) {
                *v -= lr * gv;
            }
        });
        let y1 = c.predict(&x).unwrap();
        assert!(reduce::mean_sq(&y1) < loss0);
    }

    #[test]
    fn no_bias_variant_has_single_param() {
        let mut c = Conv2d::new_no_bias("c", 2, 2, 3, Conv2dParams::default(), 1);
        assert_eq!(c.param_summary().len(), 1);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_without_forward_panics() {
        let mut c = Conv2d::new("c", 1, 1, 3, Conv2dParams::default(), 1);
        let _ = c.backward(&Tensor::zeros([1, 1, 1, 1]));
    }

    /// The fused conv+ReLU must behave exactly like conv followed by a
    /// separate ReLU layer — forward and backward.
    #[test]
    fn fused_relu_matches_separate_layers() {
        let x = init::uniform([2, 2, 5, 5], -1.0, 1.0, 9);
        let gy = init::uniform([2, 3, 5, 5], -1.0, 1.0, 10);

        let mut fused = Conv2d::new("c", 2, 3, 3, Conv2dParams::same(3), 7);
        let y_fused = fused.forward_act(&x, Act::Relu).unwrap();
        let gx_fused = fused.backward(&gy).unwrap();

        let mut plain = Conv2d::new("c", 2, 3, 3, Conv2dParams::same(3), 7);
        let mut relu = crate::layers::ReLU::new();
        let y_plain = relu.forward(&plain.forward(&x).unwrap()).unwrap();
        let gx_plain = plain.backward(&relu.backward(&gy).unwrap()).unwrap();

        assert_eq!(y_fused.data(), y_plain.data());
        assert_eq!(gx_fused.data(), gx_plain.data());
        let mut fused_gw = None;
        fused.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                fused_gw = Some(p.grad.clone());
            }
        });
        let mut plain_gw = None;
        plain.visit_params(&mut |p| {
            if p.name.ends_with("weight") {
                plain_gw = Some(p.grad.clone());
            }
        });
        assert_eq!(fused_gw.unwrap().data(), plain_gw.unwrap().data());
    }
}
