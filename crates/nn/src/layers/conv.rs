//! Convolution layer.

use dlsr_tensor::conv::{conv2d, conv2d_backward, Conv2dParams};
use dlsr_tensor::{init, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// 2-D convolution with optional bias.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    conv: Conv2dParams,
    input_cache: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution with bias.
    pub fn new(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
    ) -> Self {
        Self::build(name, c_in, c_out, k, conv, seed, true)
    }

    /// Kaiming-initialized convolution without bias (for BN-followed convs).
    pub fn new_no_bias(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
    ) -> Self {
        Self::build(name, c_in, c_out, k, conv, seed, false)
    }

    fn build(
        name: &str,
        c_in: usize,
        c_out: usize,
        k: usize,
        conv: Conv2dParams,
        seed: u64,
        with_bias: bool,
    ) -> Self {
        let weight = Param::new(
            format!("{name}.weight"),
            init::kaiming_conv(c_out, c_in, k, k, seed),
        );
        let bias = with_bias
            .then(|| Param::new(format!("{name}.bias"), Tensor::zeros([c_out])));
        Conv2d { weight, bias, conv, input_cache: None }
    }

    /// The convolution hyper-parameters.
    pub fn conv_params(&self) -> Conv2dParams {
        self.conv
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.shape().dim(0)
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.input_cache = Some(x.clone());
        conv2d(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.data()),
            self.conv,
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .input_cache
            .take()
            .expect("Conv2d::backward called without forward");
        let (gi, gw, gb) = conv2d_backward(&input, &self.weight.value, grad_out, self.conv)?;
        self.weight.accumulate_grad(&gw);
        if let Some(bias) = &mut self.bias {
            bias.accumulate_grad_slice(&gb);
        }
        Ok(gi)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        conv2d(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.data()),
            self.conv,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleExt;
    use dlsr_tensor::reduce;

    #[test]
    fn forward_backward_shapes() {
        let mut c = Conv2d::new("c", 3, 8, 3, Conv2dParams::same(3), 1);
        let x = init::uniform([2, 3, 6, 6], -1.0, 1.0, 2);
        let y = c.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8, 6, 6]);
        let gi = c.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(gi.shape().dims(), x.shape().dims());
    }

    #[test]
    fn gradient_decreases_loss() {
        // One SGD step on sum-of-squares loss must reduce it: end-to-end
        // sanity that gradients point downhill.
        let mut c = Conv2d::new("c", 1, 1, 3, Conv2dParams::same(3), 3);
        let x = init::uniform([1, 1, 5, 5], -1.0, 1.0, 4);
        let y = c.forward(&x).unwrap();
        let loss0 = reduce::mean_sq(&y);
        // dL/dy = 2y/n
        let n = y.numel() as f32;
        let gy = dlsr_tensor::elementwise::scale(&y, 2.0 / n);
        c.backward(&gy).unwrap();
        let lr = 0.1;
        c.visit_params(&mut |p| {
            let g = p.grad.clone();
            for (v, gv) in p.value.data_mut().iter_mut().zip(g.data()) {
                *v -= lr * gv;
            }
        });
        let y1 = c.predict(&x).unwrap();
        assert!(reduce::mean_sq(&y1) < loss0);
    }

    #[test]
    fn no_bias_variant_has_single_param() {
        let mut c = Conv2d::new_no_bias("c", 2, 2, 3, Conv2dParams::default(), 1);
        assert_eq!(c.param_summary().len(), 1);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_without_forward_panics() {
        let mut c = Conv2d::new("c", 1, 1, 3, Conv2dParams::default(), 1);
        let _ = c.backward(&Tensor::zeros([1, 1, 1, 1]));
    }
}
