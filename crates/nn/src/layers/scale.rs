//! Constant scaling layer (EDSR residual scaling, test fixtures).

use dlsr_tensor::{elementwise, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Multiplies its input by a fixed constant. Not trainable.
pub struct Scale {
    factor: f32,
}

impl Scale {
    /// New scaling layer with factor `factor`.
    pub fn new(factor: f32) -> Self {
        Scale { factor }
    }

    /// The scale factor.
    pub fn factor(&self) -> f32 {
        self.factor
    }
}

impl Module for Scale {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        Ok(elementwise::scale(x, self.factor))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        Ok(elementwise::scale(grad_out, self.factor))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_forward_and_backward() {
        let mut s = Scale::new(0.1);
        let x = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let y = s.forward(&x).unwrap();
        assert!((y.data()[0] - 0.1).abs() < 1e-7);
        let g = s.backward(&Tensor::ones([2])).unwrap();
        assert!((g.data()[1] - 0.1).abs() < 1e-7);
    }
}
