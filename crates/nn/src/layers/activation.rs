//! Activation layers.

use dlsr_tensor::{elementwise, Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    input_cache: Option<Tensor>,
}

impl ReLU {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for ReLU {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.input_cache = Some(x.clone());
        Ok(elementwise::relu(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .input_cache
            .take()
            .expect("ReLU::backward called without forward");
        elementwise::relu_backward(grad_out, &input)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        Ok(elementwise::relu(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_and_backward_masks() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec([4], vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = r.backward(&Tensor::ones([4])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0]);
    }
}
