//! Batch normalization (2-D, per-channel) — used by the ResNet-50 comparator
//! (the paper's Fig 5a contrasts EDSR's *removal* of BN against ResNet).

use dlsr_tensor::{Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Per-channel batch normalization over N, H, W.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // backward context
    ctx: Option<BnCtx>,
}

struct BnCtx {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    count: usize,
}

impl BatchNorm2d {
    /// New BN layer for `channels` channels.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(format!("{name}.weight"), Tensor::ones([channels])),
            beta: Param::new(format!("{name}.bias"), Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            ctx: None,
        }
    }

    fn channel_stats(&self, x: &Tensor) -> Result<(Vec<f32>, Vec<f32>, usize)> {
        let (n, c, h, w) = x.shape().as_nchw()?;
        let plane = h * w;
        let count = n * plane;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        for (i, chunk) in x.data().chunks(plane).enumerate() {
            mean[i % c] += chunk.iter().sum::<f32>();
        }
        mean.iter_mut().for_each(|m| *m /= count as f32);
        for (i, chunk) in x.data().chunks(plane).enumerate() {
            let m = mean[i % c];
            var[i % c] += chunk.iter().map(|&v| (v - m) * (v - m)).sum::<f32>();
        }
        var.iter_mut().for_each(|v| *v /= count as f32);
        Ok((mean, var, count))
    }

    fn normalize(&self, x: &Tensor, mean: &[f32], var: &[f32]) -> Result<(Tensor, Vec<f32>)> {
        let (_, c, h, w) = x.shape().as_nchw()?;
        let plane = h * w;
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = x.clone();
        for (i, chunk) in out.data_mut().chunks_mut(plane).enumerate() {
            let ch = i % c;
            let (m, s) = (mean[ch], inv_std[ch]);
            let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
            chunk.iter_mut().for_each(|v| *v = (*v - m) * s * g + b);
        }
        Ok((out, inv_std))
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let (_, c, h, w) = x.shape().as_nchw()?;
        let plane = h * w;
        let (mean, var, count) = self.channel_stats(x)?;
        for ch in 0..c {
            self.running_mean[ch] =
                (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean[ch];
            self.running_var[ch] =
                (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var[ch];
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        // x_hat (normalized, pre-affine) is what backward needs
        let mut x_hat = x.clone();
        for (i, chunk) in x_hat.data_mut().chunks_mut(plane).enumerate() {
            let ch = i % c;
            let (m, s) = (mean[ch], inv_std[ch]);
            chunk.iter_mut().for_each(|v| *v = (*v - m) * s);
        }
        let mut out = x_hat.clone();
        for (i, chunk) in out.data_mut().chunks_mut(plane).enumerate() {
            let ch = i % c;
            let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
            chunk.iter_mut().for_each(|v| *v = *v * g + b);
        }
        self.ctx = Some(BnCtx {
            x_hat,
            inv_std,
            count,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let BnCtx {
            x_hat,
            inv_std,
            count,
        } = self
            .ctx
            .take()
            .expect("BatchNorm2d::backward called without forward");
        let (_, c, h, w) = grad_out.shape().as_nchw()?;
        let plane = h * w;
        let m = count as f32;

        // Per-channel sums: Σg and Σ(g·x_hat)
        let mut sum_g = vec![0.0f32; c];
        let mut sum_gx = vec![0.0f32; c];
        for (i, chunk) in grad_out.data().chunks(plane).enumerate() {
            let ch = i % c;
            let xh = &x_hat.data()[i * plane..(i + 1) * plane];
            sum_g[ch] += chunk.iter().sum::<f32>();
            sum_gx[ch] += chunk.iter().zip(xh).map(|(&g, &x)| g * x).sum::<f32>();
        }
        self.beta.accumulate_grad_slice(&sum_g);
        self.gamma.accumulate_grad_slice(&sum_gx);

        // dL/dx = γ·inv_std/m · (m·g − Σg − x_hat·Σ(g·x_hat))
        let mut gx = grad_out.clone();
        for (i, chunk) in gx.data_mut().chunks_mut(plane).enumerate() {
            let ch = i % c;
            let coeff = self.gamma.value.data()[ch] * inv_std[ch] / m;
            let (sg, sgx) = (sum_g[ch], sum_gx[ch]);
            let xh = &x_hat.data()[i * plane..(i + 1) * plane];
            for (g, &x) in chunk.iter_mut().zip(xh) {
                *g = coeff * (m * *g - sg - x * sgx);
            }
        }
        Ok(gx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let (out, _) = self.normalize(x, &self.running_mean.clone(), &self.running_var.clone())?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_tensor::init;

    #[test]
    fn output_is_normalized() {
        let mut bn = BatchNorm2d::new("bn", 2);
        let x = init::uniform([4, 2, 3, 3], -5.0, 5.0, 1);
        let y = bn.forward(&x).unwrap();
        // per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0)
        let (mean, var, _) = bn.channel_stats(&y).unwrap();
        for ch in 0..2 {
            assert!(mean[ch].abs() < 1e-4, "mean {}", mean[ch]);
            assert!((var[ch] - 1.0).abs() < 1e-2, "var {}", var[ch]);
        }
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new("bn", 1);
        let x = init::uniform([2, 1, 2, 2], -1.0, 1.0, 2);
        let y = bn.forward(&x).unwrap();
        let gy = Tensor::from_vec(
            y.shape().clone(),
            (0..y.numel()).map(|i| (i as f32 * 0.3).sin()).collect(),
        )
        .unwrap();
        let gx = bn.backward(&gy).unwrap();

        // finite differences on a fresh layer (running stats don't affect fwd)
        let eps = 1e-2f32;
        let loss = |x: &Tensor| {
            let mut b2 = BatchNorm2d::new("bn", 1);
            let out = b2.forward(x).unwrap();
            out.data()
                .iter()
                .zip(gy.data())
                .map(|(&o, &g)| o * g)
                .sum::<f32>()
        };
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < 2e-2,
                "idx {idx}: {} vs {fd}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn predict_uses_running_stats() {
        let mut bn = BatchNorm2d::new("bn", 1);
        // Train on data with mean 10 so running stats move toward it.
        let x = Tensor::full([8, 1, 4, 4], 10.0);
        for _ in 0..50 {
            bn.forward(&x).unwrap();
        }
        assert!(bn.running_mean[0] > 9.0);
        // Inference on the same constant input → output near β = 0.
        let y = bn.predict(&x).unwrap();
        assert!(y.data()[0].abs() < 1.0);
    }
}
