//! The EDSR residual block: conv → ReLU → conv, scaled by the residual
//! scaling factor (0.1 in the paper) and added to the skip connection.
//! Unlike the original ResNet block there is **no batch normalization** —
//! the paper's Fig 5a highlights exactly this simplification.
//!
//! The first convolution runs with the ReLU fused into its GEMM epilogue
//! ([`Conv2d::forward_act`]), so the block makes no standalone activation
//! pass; the matching backward mask is applied inside `conv1.backward`.

use dlsr_tensor::conv::{Act, Conv2dParams};
use dlsr_tensor::{elementwise, Result, Tensor};

use crate::layers::Conv2d;
use crate::module::Module;
use crate::param::Param;

/// EDSR residual block with residual scaling.
pub struct ResBlock {
    conv1: Conv2d,
    conv2: Conv2d,
    res_scale: f32,
}

impl ResBlock {
    /// Block over `features` channels with 3×3 "same" convolutions.
    pub fn new(name: &str, features: usize, res_scale: f32, seed: u64) -> Self {
        let p = Conv2dParams::same(3);
        ResBlock {
            conv1: Conv2d::new(&format!("{name}.conv1"), features, features, 3, p, seed),
            conv2: Conv2d::new(
                &format!("{name}.conv2"),
                features,
                features,
                3,
                p,
                seed.wrapping_add(1),
            ),
            res_scale,
        }
    }

    /// The residual scaling factor.
    pub fn res_scale(&self) -> f32 {
        self.res_scale
    }
}

impl Module for ResBlock {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.conv1.forward_act(x, Act::Relu)?;
        let h = self.conv2.forward(&h)?;
        let scaled = elementwise::scale(&h, self.res_scale);
        elementwise::add(x, &scaled)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        // d(x + s·f(x)) = g + s·f'(x)ᵀg; the ReLU mask lives in conv1.
        let g_body = elementwise::scale(grad_out, self.res_scale);
        let g = self.conv2.backward(&g_body)?;
        let g = self.conv1.backward(&g)?;
        elementwise::add(grad_out, &g)
    }

    fn backward_with_hook(
        &mut self,
        grad_out: &Tensor,
        hook: &mut dyn FnMut(&mut Param),
    ) -> Result<Tensor> {
        let g_body = elementwise::scale(grad_out, self.res_scale);
        let g = self.conv2.backward_with_hook(&g_body, hook)?;
        let g = self.conv1.backward_with_hook(&g, hook)?;
        elementwise::add(grad_out, &g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.conv2.visit_params(f);
    }

    fn predict(&mut self, x: &Tensor) -> Result<Tensor> {
        let h = self.conv1.predict_act(x, Act::Relu)?;
        let h = self.conv2.predict(&h)?;
        let scaled = elementwise::scale(&h, self.res_scale);
        elementwise::add(x, &scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::ModuleExt;
    use dlsr_tensor::init;

    #[test]
    fn output_stays_close_to_input_with_small_res_scale() {
        // res_scale=0.1 keeps the block near the identity at init — the
        // stabilization EDSR relies on for deep stacks.
        let mut b = ResBlock::new("rb", 4, 0.1, 1);
        let x = init::uniform([1, 4, 5, 5], -1.0, 1.0, 2);
        let y = b.forward(&x).unwrap();
        let diff = y.max_abs_diff(&x);
        assert!(diff < 1.0, "residual branch dominates: {diff}");
        assert!(diff > 0.0, "block is exactly identity — conv not applied");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut b = ResBlock::new("rb", 2, 0.5, 3);
        let x = init::uniform([1, 2, 3, 3], -1.0, 1.0, 4);
        let y = b.forward(&x).unwrap();
        let gy = Tensor::ones(y.shape().clone());
        let gx = b.backward(&gy).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = b.predict(&xp).unwrap().data().iter().sum();
            let lm: f32 = b.predict(&xm).unwrap().data().iter().sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (gx.data()[idx] - fd).abs() < 2e-2,
                "{} vs {fd}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn param_count() {
        let mut b = ResBlock::new("rb", 8, 0.1, 1);
        // two 3×3 convs: 2 × (8·8·9 + 8)
        assert_eq!(b.num_params(), 2 * (8 * 8 * 9 + 8));
    }

    #[test]
    fn forward_and_predict_agree() {
        // Training-path (fused, cached) and inference-path outputs must be
        // identical.
        let mut b = ResBlock::new("rb", 3, 0.1, 6);
        let x = init::uniform([2, 3, 6, 6], -1.0, 1.0, 7);
        let y_train = b.forward(&x).unwrap();
        let y_infer = b.predict(&x).unwrap();
        assert_eq!(y_train.data(), y_infer.data());
    }
}
