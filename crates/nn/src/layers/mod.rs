//! Layer zoo.

mod activation;
mod batchnorm;
mod conv;
mod linear;
mod meanshift;
mod pool;
mod resblock;
mod scale;
mod shuffle;

pub use activation::ReLU;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use linear::Linear;
pub use meanshift::MeanShift;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use resblock::ResBlock;
pub use scale::Scale;
pub use shuffle::PixelShuffle;
