//! Pixel-shuffle layer (EDSR upsampler tail).

use dlsr_tensor::shuffle;
use dlsr_tensor::{Result, Tensor};

use crate::module::Module;
use crate::param::Param;

/// Sub-pixel rearrangement `[N, C·r², H, W] → [N, C, H·r, W·r]`.
pub struct PixelShuffle {
    r: usize,
}

impl PixelShuffle {
    /// Upscale factor `r`.
    pub fn new(r: usize) -> Self {
        PixelShuffle { r }
    }
}

impl Module for PixelShuffle {
    fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        shuffle::pixel_shuffle(x, self.r)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        // pixel_unshuffle is the exact adjoint (see dlsr-tensor tests).
        shuffle::pixel_unshuffle(grad_out, self.r)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_backward_shapes() {
        let mut p = PixelShuffle::new(2);
        let x = Tensor::zeros([1, 8, 3, 3]);
        let y = p.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 6, 6]);
        let g = p.backward(&y).unwrap();
        assert_eq!(g.shape().dims(), &[1, 8, 3, 3]);
    }
}
