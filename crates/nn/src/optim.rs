//! Optimizers. Each operates through the parameter visitor, keyed by
//! parameter name, so state survives across steps regardless of traversal
//! details and works identically on every rank.

use std::collections::BTreeMap;

use dlsr_tensor::Tensor;

use crate::module::Module;
use crate::param::Param;

/// Shared optimizer interface.
pub trait Optimizer: Send {
    /// Apply one update step using the currently-accumulated gradients,
    /// then zero the gradients.
    fn step(&mut self, model: &mut dyn Module);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Replace the learning rate (used for LR scaling and decay schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: BTreeMap<String, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocity: BTreeMap::new(),
        }
    }

    /// Add L2 weight decay.
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    fn update(&mut self, p: &mut Param) {
        let lr = self.lr;
        let wd = self.weight_decay;
        if self.momentum > 0.0 {
            let v = self
                .velocity
                .entry(p.name.clone())
                .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
            for ((vel, val), &g) in v
                .data_mut()
                .iter_mut()
                .zip(p.value.data_mut().iter_mut())
                .zip(p.grad.data())
            {
                *vel = self.momentum * *vel + g + wd * *val;
                *val -= lr * *vel;
            }
        } else {
            for (val, &g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *val -= lr * (g + wd * *val);
            }
        }
        p.zero_grad();
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Module) {
        // The visitor borrows `self` mutably inside the closure, so split
        // state access through a raw loop over collected updates instead.
        let mut this = std::mem::replace(self, Sgd::new(0.0));
        model.visit_params(&mut |p| this.update(p));
        *self = this;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) — the optimizer EDSR trains with (β₁=0.9, β₂=0.999,
/// ε=1e-8 in the reference implementation).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: BTreeMap<String, Tensor>,
    v: BTreeMap<String, Tensor>,
}

/// One parameter's `(name, shape, m, v)` moment estimates inside an
/// [`AdamState`] snapshot.
pub type MomentEntry = (String, Vec<usize>, Vec<f32>, Vec<f32>);

/// A snapshot of [`Adam`]'s mutable state (step count and moment
/// estimates), sorted by parameter name so the flat encoding is identical
/// on every rank. Restoring it mid-run resumes training bitwise-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Bias-correction step count.
    pub t: u64,
    /// Per-parameter `(name, shape, m, v)` moment estimates, sorted by
    /// name.
    pub moments: Vec<MomentEntry>,
}

impl Adam {
    /// Adam with the EDSR defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: BTreeMap::new(),
            v: BTreeMap::new(),
        }
    }

    /// Snapshot the step count and moment estimates (checkpointing).
    pub fn state_snapshot(&self) -> AdamState {
        let mut moments: Vec<MomentEntry> = self
            .m
            .iter()
            .map(|(name, m)| {
                let v = &self.v[name];
                (
                    name.clone(),
                    m.shape().dims().to_vec(),
                    m.data().to_vec(),
                    v.data().to_vec(),
                )
            })
            .collect();
        moments.sort_by(|a, b| a.0.cmp(&b.0));
        AdamState { t: self.t, moments }
    }

    /// Restore a snapshot taken by [`Adam::state_snapshot`], replacing the
    /// step count and all moment estimates. Parameters with no entry in the
    /// snapshot fall back to fresh zero moments on their next update —
    /// matching an optimizer that had not yet touched them.
    pub fn load_state(&mut self, state: &AdamState) {
        self.t = state.t;
        self.m.clear();
        self.v.clear();
        for (name, shape, m, v) in &state.moments {
            let mut mt = Tensor::zeros(dlsr_tensor::Shape::new(shape.clone()));
            mt.data_mut().copy_from_slice(m);
            let mut vt = Tensor::zeros(dlsr_tensor::Shape::new(shape.clone()));
            vt.data_mut().copy_from_slice(v);
            self.m.insert(name.clone(), mt);
            self.v.insert(name.clone(), vt);
        }
    }

    fn update(&mut self, p: &mut Param, bias1: f32, bias2: f32) {
        let m = self
            .m
            .entry(p.name.clone())
            .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
        let v = self
            .v
            .entry(p.name.clone())
            .or_insert_with(|| Tensor::zeros(p.value.shape().clone()));
        for (((mv, vv), val), &g) in m
            .data_mut()
            .iter_mut()
            .zip(v.data_mut().iter_mut())
            .zip(p.value.data_mut().iter_mut())
            .zip(p.grad.data())
        {
            *mv = self.beta1 * *mv + (1.0 - self.beta1) * g;
            *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            let m_hat = *mv / bias1;
            let v_hat = *vv / bias2;
            *val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        p.zero_grad();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Module) {
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut this = std::mem::replace(self, Adam::new(0.0));
        model.visit_params(&mut |p| this.update(p, bias1, bias2));
        *self = this;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::loss::mse_loss;
    use dlsr_tensor::init;

    fn train_quadratic(mut opt: impl Optimizer, steps: usize) -> f32 {
        // Fit y = 2x with a 1→1 linear layer.
        let mut model = Linear::new("fc", 1, 1, 1);
        let x = init::uniform([8, 1], -1.0, 1.0, 2);
        let y = dlsr_tensor::elementwise::scale(&x, 2.0);
        let mut last = f32::MAX;
        for _ in 0..steps {
            let pred = model.forward(&x).unwrap();
            let (loss, grad) = mse_loss(&pred, &y).unwrap();
            model.backward(&grad).unwrap();
            opt.step(&mut model);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        assert!(train_quadratic(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        assert!(train_quadratic(Sgd::with_momentum(0.05, 0.9), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_fit() {
        assert!(train_quadratic(Adam::new(0.05), 300) < 1e-3);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut model = Linear::new("fc", 2, 2, 3);
        let x = init::uniform([4, 2], -1.0, 1.0, 4);
        let pred = model.forward(&x).unwrap();
        let (_, grad) = mse_loss(&pred, &Tensor::zeros(pred.shape().clone())).unwrap();
        model.backward(&grad).unwrap();
        let mut opt = Sgd::new(0.01);
        opt.step(&mut model);
        model.visit_params(&mut |p| {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        });
    }

    #[test]
    fn adam_state_round_trip_resumes_bitwise() {
        // Train A for 6 steps. Train B for 3, snapshot params + state,
        // continue A-free: restoring into a fresh optimizer and replaying
        // the last 3 steps must reproduce A's parameters bitwise.
        let data = |m: &mut Linear| {
            let x = init::uniform([8, 1], -1.0, 1.0, 2);
            let y = dlsr_tensor::elementwise::scale(&x, 2.0);
            let pred = m.forward(&x).unwrap();
            let (_, grad) = mse_loss(&pred, &y).unwrap();
            m.backward(&grad).unwrap();
        };
        let mut model_a = Linear::new("fc", 1, 1, 1);
        let mut opt_a = Adam::new(0.05);
        for _ in 0..6 {
            data(&mut model_a);
            opt_a.step(&mut model_a);
        }
        let mut model_b = Linear::new("fc", 1, 1, 1);
        let mut opt_b = Adam::new(0.05);
        for _ in 0..3 {
            data(&mut model_b);
            opt_b.step(&mut model_b);
        }
        let snap = opt_b.state_snapshot();
        let params = crate::checkpoint::StateDict::from_module(&mut model_b);
        let mut model_c = Linear::new("fc", 1, 1, 1);
        params.load_into(&mut model_c).unwrap();
        let mut opt_c = Adam::new(0.05);
        opt_c.load_state(&snap);
        assert_eq!(opt_c.state_snapshot(), snap);
        for _ in 0..3 {
            data(&mut model_c);
            opt_c.step(&mut model_c);
        }
        let fa = crate::module::ModuleExt::flatten_params(&mut model_a);
        let fc = crate::module::ModuleExt::flatten_params(&mut model_c);
        assert_eq!(fa, fc);
    }

    #[test]
    fn lr_accessors() {
        let mut a = Adam::new(1e-4);
        assert_eq!(a.lr(), 1e-4);
        a.set_lr(4e-4);
        assert_eq!(a.lr(), 4e-4);
    }
}
