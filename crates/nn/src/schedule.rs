//! Learning-rate schedules.
//!
//! Two schedules matter for this workspace: EDSR's **step decay** (the
//! reference implementation halves the rate every 2×10⁵ steps), and
//! **linear warmup**, the standard companion of Horovod's
//! `lr ← lr · world` scaling (§III-A guideline 4) — large effective batches
//! destabilize early training unless the scaled rate is ramped in.

use crate::optim::Optimizer;

/// A learning-rate schedule: maps a step index to a multiplier of the base
/// rate.
pub trait LrSchedule: Send {
    /// Multiplier applied to the base learning rate at `step` (0-based).
    fn factor(&self, step: u64) -> f32;
}

/// Constant schedule (factor 1 everywhere).
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _step: u64) -> f32 {
        1.0
    }
}

/// EDSR's step decay: multiply by `gamma` every `period` steps.
pub struct StepDecay {
    /// Steps between decays (EDSR: 200_000).
    pub period: u64,
    /// Decay factor (EDSR: 0.5).
    pub gamma: f32,
}

impl StepDecay {
    /// The EDSR reference schedule: ×0.5 every 200k steps.
    pub fn edsr() -> Self {
        StepDecay {
            period: 200_000,
            gamma: 0.5,
        }
    }
}

impl LrSchedule for StepDecay {
    fn factor(&self, step: u64) -> f32 {
        self.gamma.powi((step / self.period) as i32)
    }
}

/// Linear warmup to factor 1 over `warmup_steps`, then an inner schedule.
pub struct Warmup<S: LrSchedule> {
    /// Steps to ramp from `start_factor` to 1.
    pub warmup_steps: u64,
    /// Initial multiplier (e.g. `1/world` so warmup starts from the
    /// single-GPU rate).
    pub start_factor: f32,
    /// Schedule applied after (and scaled during) warmup.
    pub inner: S,
}

impl Warmup<Constant> {
    /// The Goyal-style warmup used with Horovod's lr scaling: start at
    /// `1/world` of the scaled rate and ramp linearly over `steps`.
    pub fn for_world(world: usize, steps: u64) -> Self {
        Warmup {
            warmup_steps: steps,
            start_factor: 1.0 / world as f32,
            inner: Constant,
        }
    }
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, step: u64) -> f32 {
        let inner = self.inner.factor(step);
        if step >= self.warmup_steps || self.warmup_steps == 0 {
            return inner;
        }
        let ramp = self.start_factor
            + (1.0 - self.start_factor) * (step as f32 / self.warmup_steps as f32);
        ramp * inner
    }
}

/// Drives an optimizer's learning rate from a schedule.
pub struct Scheduler<S: LrSchedule> {
    base_lr: f32,
    schedule: S,
    step: u64,
}

impl<S: LrSchedule> Scheduler<S> {
    /// Create a scheduler around the optimizer's *current* rate.
    pub fn new(opt: &impl Optimizer, schedule: S) -> Self {
        Scheduler {
            base_lr: opt.lr(),
            schedule,
            step: 0,
        }
    }

    /// Apply the schedule for the next step (call once per training step,
    /// before `Optimizer::step`).
    pub fn apply(&mut self, opt: &mut impl Optimizer) {
        opt.set_lr(self.base_lr * self.schedule.factor(self.step));
        self.step += 1;
    }

    /// Steps taken so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay::edsr();
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(199_999), 1.0);
        assert_eq!(s.factor(200_000), 0.5);
        assert_eq!(s.factor(400_000), 0.25);
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let w = Warmup::for_world(8, 100);
        assert!((w.factor(0) - 0.125).abs() < 1e-6);
        assert!((w.factor(50) - (0.125 + 0.875 * 0.5)).abs() < 1e-6);
        assert_eq!(w.factor(100), 1.0);
        assert_eq!(w.factor(10_000), 1.0);
    }

    #[test]
    fn warmup_composes_with_decay() {
        let w = Warmup {
            warmup_steps: 10,
            start_factor: 0.1,
            inner: StepDecay {
                period: 20,
                gamma: 0.5,
            },
        };
        assert!((w.factor(0) - 0.1).abs() < 1e-6);
        assert_eq!(w.factor(10), 1.0);
        assert_eq!(w.factor(20), 0.5);
    }

    #[test]
    fn scheduler_drives_the_optimizer() {
        let mut opt = Sgd::new(0.4);
        let mut sched = Scheduler::new(&opt, Warmup::for_world(4, 4));
        let mut seen = Vec::new();
        for _ in 0..6 {
            sched.apply(&mut opt);
            seen.push(opt.lr());
        }
        assert!((seen[0] - 0.1).abs() < 1e-6, "starts at lr/world");
        assert!((seen[4] - 0.4).abs() < 1e-6, "reaches the scaled rate");
        assert!(
            seen.windows(2).all(|w| w[1] >= w[0] - 1e-6),
            "monotone ramp"
        );
        assert_eq!(sched.step_count(), 6);
    }

    #[test]
    fn zero_warmup_is_identity() {
        let w = Warmup {
            warmup_steps: 0,
            start_factor: 0.5,
            inner: Constant,
        };
        assert_eq!(w.factor(0), 1.0);
    }
}
