//! `dlsr-nn` — neural-network building blocks on top of `dlsr-tensor`.
//!
//! The crate implements **module-graph backpropagation**: every [`Module`]
//! caches whatever it needs during `forward` and produces its input gradient
//! (while accumulating parameter gradients) during `backward`. Networks in
//! this workspace are static compositions (sequences + residual skips), so an
//! explicit per-module backward is both simpler and faster than a dynamic
//! tape, and — crucially for the distributed-equivalence tests — perfectly
//! deterministic.
//!
//! Contents:
//! - [`param`]: named trainable parameters with gradient buffers,
//! - [`module`]: the [`Module`] trait, [`Sequential`] containers,
//! - [`layers`]: Conv2d, Linear, ReLU, BatchNorm2d, PixelShuffle, MeanShift,
//!   pooling and the EDSR residual block,
//! - [`loss`]: L1 / MSE / cross-entropy losses with gradients,
//! - [`optim`]: SGD (momentum) and Adam, operating over parameter visitors,
//! - [`schedule`]: learning-rate schedules (EDSR step decay, warmup),
//! - [`checkpoint`]: named state dicts with file round-trips,
//! - [`metrics`]: PSNR and SSIM image-quality metrics.

#![forbid(unsafe_code)]
pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod module;
pub mod optim;
pub mod param;
pub mod schedule;

pub use dlsr_tensor::{Result, Shape, Tensor, TensorError};
pub use module::{Module, Sequential};
pub use param::Param;
