//! Property-based tests for the NN layer: gradient correctness by finite
//! differences on randomly-shaped layers, optimizer algebra, and loss/
//! metric invariants.

use proptest::prelude::*;

use dlsr_nn::layers::{Conv2d, Linear, ResBlock};
use dlsr_nn::loss::{l1_loss, mse_loss};
use dlsr_nn::metrics::psnr;
use dlsr_nn::module::{Module, ModuleExt};
use dlsr_nn::optim::{Optimizer, Sgd};
use dlsr_tensor::conv::Conv2dParams;
use dlsr_tensor::{elementwise, init, Tensor};

/// ⟨backward(g), δx⟩ ≈ d/dε loss(x + ε·δx): the directional-derivative
/// check that validates an entire backward pass at once.
fn directional_check(model: &mut dyn Module, x: &Tensor, seed: u64) -> (f32, f32) {
    let y = model.forward(x).expect("forward");
    // loss = Σ w·y with fixed random weights so the output gradient is
    // non-trivial
    let wvec = init::uniform(y.shape().clone(), -1.0, 1.0, seed);
    let gy = wvec.clone();
    let gx = model.backward(&gy).expect("backward");
    let dir = init::uniform(x.shape().clone(), -1.0, 1.0, seed + 1);
    let analytic: f32 = gx.data().iter().zip(dir.data()).map(|(a, b)| a * b).sum();
    let eps = 1e-3f32;
    let xp = elementwise::add(x, &elementwise::scale(&dir, eps)).unwrap();
    let xm = elementwise::sub(x, &elementwise::scale(&dir, eps)).unwrap();
    let lp: f32 = model
        .predict(&xp)
        .unwrap()
        .data()
        .iter()
        .zip(wvec.data())
        .map(|(a, b)| a * b)
        .sum();
    let lm: f32 = model
        .predict(&xm)
        .unwrap()
        .data()
        .iter()
        .zip(wvec.data())
        .map(|(a, b)| a * b)
        .sum();
    (analytic, (lp - lm) / (2.0 * eps))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conv2d input gradients match finite differences for random shapes.
    #[test]
    fn conv_gradient_directional(
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 3usize..7,
        seed in 0u64..500,
    ) {
        let mut m = Conv2d::new("c", cin, cout, 3, Conv2dParams::same(3), seed);
        let x = init::uniform([1, cin, hw, hw], -1.0, 1.0, seed + 7);
        let (analytic, fd) = directional_check(&mut m, &x, seed + 13);
        let scale = analytic.abs().max(fd.abs()).max(1.0);
        prop_assert!(
            (analytic - fd).abs() / scale < 2e-2,
            "conv grad {analytic} vs fd {fd}"
        );
    }

    /// Linear gradients match finite differences.
    #[test]
    fn linear_gradient_directional(
        n in 1usize..4,
        fin in 1usize..6,
        fout in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut m = Linear::new("fc", fin, fout, seed);
        let x = init::uniform([n, fin], -1.0, 1.0, seed + 3);
        let (analytic, fd) = directional_check(&mut m, &x, seed + 5);
        let scale = analytic.abs().max(fd.abs()).max(1.0);
        prop_assert!((analytic - fd).abs() / scale < 2e-2);
    }

    /// The EDSR residual block's gradient (skip + scaled body) is correct.
    #[test]
    fn resblock_gradient_directional(
        feats in 1usize..5,
        res_scale in 0.05f32..1.0,
        seed in 0u64..500,
    ) {
        let mut m = ResBlock::new("rb", feats, res_scale, seed);
        let x = init::uniform([1, feats, 4, 4], -1.0, 1.0, seed + 9);
        let (analytic, fd) = directional_check(&mut m, &x, seed + 11);
        // wide tolerance: the finite-difference step can hop across the
        // block's ReLU kinks, where the subgradient and the secant differ
        let scale = analytic.abs().max(fd.abs()).max(1.0);
        prop_assert!((analytic - fd).abs() / scale < 0.15, "{analytic} vs {fd}");
    }

    /// Plain SGD: one step moves every parameter by exactly −lr·grad.
    #[test]
    fn sgd_update_rule(lr in 1e-4f32..0.5, seed in 0u64..500) {
        let mut m = Linear::new("fc", 3, 2, seed);
        let before = m.flatten_params();
        let x = init::uniform([2, 3], -1.0, 1.0, seed + 1);
        let y = m.forward(&x).unwrap();
        let (_, g) = mse_loss(&y, &Tensor::zeros(y.shape().clone())).unwrap();
        m.backward(&g).unwrap();
        let grads = m.flatten_grads();
        let mut opt = Sgd::new(lr);
        opt.step(&mut m);
        let after = m.flatten_params();
        for ((b, a), g) in before.iter().zip(after.iter()).zip(grads.iter()) {
            prop_assert!((a - (b - lr * g)).abs() < 1e-5);
        }
        // and gradients were zeroed
        prop_assert!(m.flatten_grads().iter().all(|&g| g == 0.0));
    }

    /// Losses are non-negative, zero exactly at the target, and symmetric
    /// under argument swap.
    #[test]
    fn loss_invariants(data in proptest::collection::vec(-5.0f32..5.0, 1..64)) {
        let n = data.len();
        let p = Tensor::from_vec([n], data.clone()).unwrap();
        let t = Tensor::from_vec([n], data.iter().map(|x| x * 0.9 + 0.1).collect::<Vec<_>>()).unwrap();
        let (l1, _) = l1_loss(&p, &t).unwrap();
        let (l1_swapped, _) = l1_loss(&t, &p).unwrap();
        let (l2, _) = mse_loss(&p, &t).unwrap();
        prop_assert!(l1 >= 0.0 && l2 >= 0.0);
        prop_assert!((l1 - l1_swapped).abs() < 1e-6);
        let (z, _) = l1_loss(&p, &p).unwrap();
        prop_assert_eq!(z, 0.0);
    }

    /// L1 gradient is the (normalized) sign of the residual, so following
    /// it must reduce the loss for a small enough step.
    #[test]
    fn l1_gradient_descends(data in proptest::collection::vec(-2.0f32..2.0, 4..32)) {
        let n = data.len();
        let p = Tensor::from_vec([n], data).unwrap();
        let t = Tensor::zeros([n]);
        let (l0, g) = l1_loss(&p, &t).unwrap();
        prop_assume!(l0 > 1e-3);
        let p2 = elementwise::sub(&p, &elementwise::scale(&g, 0.1)).unwrap();
        let (l1v, _) = l1_loss(&p2, &t).unwrap();
        prop_assert!(l1v <= l0 + 1e-6, "{l0} -> {l1v}");
    }

    /// PSNR strictly decreases as uniform noise amplitude grows.
    #[test]
    fn psnr_monotone_in_noise(seed in 0u64..500) {
        let clean = init::uniform([1, 1, 8, 8], 0.25, 0.75, seed);
        let mut last = f32::INFINITY;
        for (i, amp) in [0.01f32, 0.05, 0.2].iter().enumerate() {
            let noise = init::uniform([1, 1, 8, 8], -amp, *amp, seed + i as u64 + 1);
            let noisy = elementwise::add(&clean, &noise).unwrap();
            let p = psnr(&noisy, &clean, 1.0).unwrap();
            prop_assert!(p < last, "noise {amp}: PSNR {p} !< {last}");
            last = p;
        }
    }
}
