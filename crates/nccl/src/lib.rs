//! `dlsr-nccl` — an NCCL-like collective backend over the simulated
//! cluster.
//!
//! NCCL differs from a CUDA-aware MPI in exactly the ways the paper's
//! comparison (Figs 10, 12, 13) depends on:
//!
//! - it builds **its own CUDA IPC rings** at communicator initialization,
//!   so the `CUDA_VISIBLE_DEVICES` pinning that breaks MVAPICH2's IPC does
//!   not affect it (§III-C),
//! - it moves data through **persistent, pre-registered transport
//!   buffers**, so it never pays per-message pinning,
//! - it uses topology-aware **ring** algorithms for every message size —
//!   bandwidth-optimal for large gradients, but latency-heavy at very
//!   large rank counts (2·(p−1) ring steps), which is where the tuned
//!   hierarchical MPI-Opt overtakes it.
//!
//! Implementation: the backend flips the communicator's
//! [`PathPolicy::NcclLike`] flag (own IPC + own registration bookkeeping)
//! and runs ring collectives in rank order — ranks are dense per node, so
//! the ring is automatically topology-aware (3 NVLink hops per node, one IB
//! hop between nodes).

#![forbid(unsafe_code)]
use dlsr_mpi::collectives::{Allreduce, AllreduceAlgorithm};
use dlsr_mpi::{Comm, PathPolicy};

/// The NCCL-like backend entry points (`ncclAllReduce`, `ncclBroadcast`).
pub struct Nccl;

impl Nccl {
    /// Sum-allreduce `buf` across all ranks (ring algorithm, own IPC).
    pub fn all_reduce(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) {
        comm.set_path_policy(PathPolicy::NcclLike);
        Allreduce::new(buf)
            .buf_id(buf_id)
            .algo(AllreduceAlgorithm::Ring)
            .run(comm);
        comm.set_path_policy(PathPolicy::Mpi);
    }

    /// Broadcast from `root` (ring pipeline approximated by the binomial
    /// tree over NCCL paths — identical asymptotics at these scales).
    pub fn broadcast(comm: &mut Comm, buf: &mut Vec<f32>, root: usize, buf_id: u64) {
        comm.set_path_policy(PathPolicy::NcclLike);
        dlsr_mpi::collectives::bcast(comm, buf, root, buf_id);
        comm.set_path_policy(PathPolicy::Mpi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::{MpiConfig, MpiWorld};
    use dlsr_net::ClusterTopology;

    #[test]
    fn allreduce_is_numerically_correct() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf: Vec<f32> = (0..33).map(|i| (c.rank() * 100 + i) as f32).collect();
            Nccl::all_reduce(c, &mut buf, 1);
            buf
        });
        let p = 8;
        for got in &res.ranks {
            for (i, v) in got.iter().enumerate() {
                let want: f32 = (0..p).map(|r| (r * 100 + i) as f32).sum();
                assert!((v - want).abs() < 1e-3, "elem {i}: {v} vs {want}");
            }
        }
    }

    #[test]
    fn nccl_is_immune_to_pinned_cuda_visible_devices() {
        // Under the broken default env (Pinned), MPI stages large
        // intra-node messages through the host — NCCL still rides NVLink.
        let topo = ClusterTopology::lassen(1);
        let len = 8 << 20; // 32 MB
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
            let mut buf = vec![1.0f32; len];
            Nccl::all_reduce(c, &mut buf, 1);
            (c.stats().nvlink_bytes, c.stats().staged_bytes)
        });
        for (r, &(nv, staged)) in res.ranks.iter().enumerate() {
            assert!(nv > 0, "rank {r}: NCCL sent nothing over NVLink");
            assert_eq!(staged, 0, "rank {r}: NCCL staged through host");
        }
    }

    #[test]
    fn nccl_beats_default_mpi_on_large_intra_node_allreduce() {
        let topo = ClusterTopology::lassen(1);
        let len = 8 << 20;
        let t_nccl = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
            let mut buf = vec![1.0f32; len];
            Nccl::all_reduce(c, &mut buf, 1);
            c.now()
        })
        .makespan();
        let t_mpi = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
            let mut buf = vec![1.0f32; len];
            let algo = c.config().allreduce;
            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
            c.now()
        })
        .makespan();
        assert!(t_nccl < t_mpi, "NCCL {t_nccl} vs default MPI {t_mpi}");
    }

    #[test]
    fn nccl_never_pins_per_message_after_warmup() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = vec![1.0f32; 1 << 20];
            Nccl::all_reduce(c, &mut buf, 1);
            let pins_after_first = c.stats().pin_count;
            for _ in 0..3 {
                Nccl::all_reduce(c, &mut buf, 1);
            }
            (pins_after_first, c.stats().pin_count)
        });
        for &(first, later) in &res.ranks {
            assert_eq!(first, later, "NCCL re-pinned after warmup");
        }
    }

    #[test]
    fn broadcast_delivers_roots_buffer() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = if c.rank() == 3 {
                vec![2.0, 7.0, 1.0, 8.0]
            } else {
                vec![0.0; 4]
            };
            Nccl::broadcast(c, &mut buf, 3, 1);
            buf
        });
        for (r, got) in res.ranks.iter().enumerate() {
            assert_eq!(got, &[2.0, 7.0, 1.0, 8.0], "rank {r}");
        }
    }

    #[test]
    fn inter_node_traffic_rides_ib_and_intra_rides_nvlink() {
        let topo = ClusterTopology::lassen(2);
        let len = 8 << 20; // 32 MB
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), move |c| {
            let mut buf = vec![1.0f32; len];
            Nccl::all_reduce(c, &mut buf, 1);
            (
                c.stats().nvlink_bytes,
                c.stats().staged_bytes,
                c.stats().ib_bytes,
            )
        });
        // ring in dense rank order: ranks 3 and 7 sit at node boundaries
        let total_ib: u64 = res.ranks.iter().map(|r| r.2).sum();
        let total_nv: u64 = res.ranks.iter().map(|r| r.0).sum();
        assert!(total_ib > 0, "the ring must cross nodes over IB");
        assert!(total_nv > total_ib, "most hops are intra-node NVLink");
        assert!(res.ranks.iter().all(|r| r.1 == 0), "NCCL never stages");
    }

    #[test]
    fn policy_is_restored_after_collective() {
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = vec![0.0f32; 16];
            Nccl::all_reduce(c, &mut buf, 1);
            c.path_policy() == PathPolicy::Mpi
        });
        assert!(res.ranks.iter().all(|&ok| ok));
    }
}
