//! Deterministic fixed-bucket log2 histogram.
//!
//! Percentile latencies are what expose stragglers (a mean hides them),
//! but keeping every raw sample makes reports grow linearly with step
//! count and makes merged profiles allocation-heavy. This sketch buckets
//! positive values by the *bit pattern* of their `f64` representation —
//! the 11 exponent bits concatenated with the top [`SUB_BITS`] mantissa
//! bits — so bucketing is integer-exact, identical on every platform,
//! and insensitive to insertion order. Each octave is split into
//! 2^[`SUB_BITS`] sub-buckets, bounding the relative width of a bucket
//! (and therefore the worst-case percentile error) to
//! `2^(1/16) - 1 ≈ 4.4%`.
//!
//! Exact `count`, `sum`, `min` and `max` ride along, and percentile
//! queries clamp the bucket representative into `[min, max]` — so a
//! single-sample cell reports its percentiles *exactly*, and p0/p100
//! are always the true extremes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

/// Mantissa bits kept per octave: 2^4 = 16 sub-buckets per power of two.
pub const SUB_BITS: u32 = 4;

const SHIFT: u32 = 52 - SUB_BITS;

/// A deterministic log2 latency sketch. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Log2Histogram {
    /// Sparse bucket index → occupancy. The index is monotonic in the
    /// recorded value, so an in-order walk is an in-order walk of time.
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: f64,
    /// Valid only when `count > 0`.
    min: f64,
    /// Valid only when `count > 0`.
    max: f64,
}

/// Bucket index of a value: exponent + top mantissa bits for positive
/// finite values; bucket 0 collects zeros, negatives and NaN.
fn bucket_of(v: f64) -> u32 {
    if v > 0.0 && v.is_finite() {
        (v.to_bits() >> SHIFT) as u32
    } else {
        0
    }
}

/// Midpoint value represented by a bucket: the bucket's bit prefix with
/// the discarded mantissa bits set to their halfway point.
fn representative(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    f64::from_bits(((idx as u64) << SHIFT) | (1u64 << (SHIFT - 1)))
}

impl Log2Histogram {
    /// Empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (seconds, bytes — any nonnegative magnitude).
    pub fn record(&mut self, v: f64) {
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Merge another sketch into this one (e.g. across ranks). Exact:
    /// bucket occupancies add and extremes combine losslessly.
    pub fn merge(&mut self, other: &Log2Histogram) {
        if other.count == 0 {
            return;
        }
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank percentile, `q` in `[0, 1]` (0.5 = median); 0.0 when
    /// empty. Returns the bucket midpoint clamped into `[min, max]`, so
    /// the answer is within one bucket width (≈4.4% relative) of the
    /// true order statistic and exact at the extremes.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Serialize for Log2Histogram {
    fn to_value(&self) -> Value {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("count".to_string(), Value::Number(self.count as f64));
        obj.insert("sum".to_string(), Value::Number(self.sum));
        obj.insert("min".to_string(), Value::Number(self.min()));
        obj.insert("max".to_string(), Value::Number(self.max()));
        obj.insert(
            "buckets".to_string(),
            Value::Array(
                self.buckets
                    .iter()
                    .map(|(&idx, &n)| {
                        Value::Array(vec![Value::Number(idx as f64), Value::Number(n as f64)])
                    })
                    .collect(),
            ),
        );
        Value::Object(obj)
    }
}

impl Deserialize for Log2Histogram {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        // Tolerate absent fields so reports written before the sketch
        // existed still load (absent keys deserialize from `Null`).
        if v.is_null() {
            return Ok(Self::default());
        }
        let count = v["count"].as_u64().unwrap_or(0);
        let mut h = Log2Histogram {
            buckets: BTreeMap::new(),
            count,
            sum: v["sum"].as_f64().unwrap_or(0.0),
            min: v["min"].as_f64().unwrap_or(0.0),
            max: v["max"].as_f64().unwrap_or(0.0),
        };
        if let Some(pairs) = v["buckets"].as_array() {
            for p in pairs {
                let idx = p[0]
                    .as_u64()
                    .ok_or_else(|| serde::Error::msg("histogram bucket index"))?;
                let n = p[1]
                    .as_u64()
                    .ok_or_else(|| serde::Error::msg("histogram bucket count"))?;
                h.buckets.insert(idx as u32, n);
            }
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample_percentiles_are_exact() {
        let mut h = Log2Histogram::new();
        h.record(1.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 1.0, "q={q}");
        }
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1.0);
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn percentile_error_is_bounded_by_one_bucket() {
        let mut h = Log2Histogram::new();
        // Deterministic pseudo-uniform spread over three decades.
        let mut x = 1u64;
        let mut vals = Vec::new();
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1e-4 * (1.0 + (x >> 11) as f64 / (1u64 << 53) as f64 * 999.0);
            vals.push(v);
            h.record(v);
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let approx = h.percentile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.045, "q={q} exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn merge_is_exact_on_buckets_and_extremes() {
        let (mut a, mut b, mut whole) = (
            Log2Histogram::new(),
            Log2Histogram::new(),
            Log2Histogram::new(),
        );
        for i in 1..=40 {
            let v = i as f64 * 2.5e-4;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Summation order differs between the split and whole runs, so
        // the sums agree only to rounding; buckets must agree exactly.
        assert!((a.sum() - whole.sum()).abs() < 1e-12 * whole.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q), "q={q}");
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut fwd = Log2Histogram::new();
        let mut rev = Log2Histogram::new();
        let vals = [0.25, 3.0, 0.001, 0.999, 7.5e-5, 0.25];
        for v in vals {
            fwd.record(v);
        }
        for v in vals.iter().rev() {
            rev.record(*v);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn zeros_and_degenerates_go_to_bucket_zero() {
        let mut h = Log2Histogram::new();
        h.record(0.0);
        h.record(-1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.5), 0.0_f64.clamp(h.min(), h.max()).max(-1.0));
        // Representative of bucket 0 is 0.0; clamped into [min,max].
        assert!(h.percentile(1.0) <= h.max());
    }

    #[test]
    fn serde_round_trip_preserves_the_sketch() {
        let mut h = Log2Histogram::new();
        for v in [0.010, 0.011, 0.5, 2.0] {
            h.record(v);
        }
        let s = serde_json::to_string(&h).unwrap();
        let back: Log2Histogram = serde_json::from_str(&s).unwrap();
        assert_eq!(back, h);
        // Null (absent field in an old report) loads as empty.
        let empty = Log2Histogram::from_value(&Value::Null).unwrap();
        assert!(empty.is_empty());
    }
}
