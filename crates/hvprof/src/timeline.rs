//! A Horovod-timeline-style event trace (`HOROVOD_TIMELINE` produces a
//! Chrome `chrome://tracing` JSON file; so does this).

use serde::{Deserialize, Serialize};

/// One complete ("X" phase) trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (e.g. the fused tensor group).
    pub name: String,
    /// Category (e.g. "allreduce", "negotiate", "compute").
    pub cat: String,
    /// Start time in microseconds (virtual).
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Process id — we map the MPI rank here.
    pub rank: usize,
}

/// An append-only event trace for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a complete event spanning `[start_s, end_s]` (seconds).
    pub fn record(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        rank: usize,
        start_s: f64,
        end_s: f64,
    ) {
        debug_assert!(end_s >= start_s, "event ends before it starts");
        self.events.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ts_us: start_s * 1e6,
            dur_us: (end_s - start_s) * 1e6,
            rank,
        });
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Merge another rank's timeline. Events are kept globally ordered by
    /// start time (`ts_us`, stable for ties) so a merged multi-rank trace
    /// reads chronologically in `chrome://tracing`/Perfetto and downstream
    /// consumers can scan it as a sorted stream.
    pub fn merge(&mut self, other: &Timeline) {
        self.events.extend_from_slice(&other.events);
        self.events.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    }

    /// Total duration attributed to a category (seconds).
    pub fn category_seconds(&self, cat: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.cat == cat)
            .map(|e| e.dur_us / 1e6)
            .sum()
    }

    /// Serialize to the Chrome `chrome://tracing` array format.
    pub fn to_chrome_trace(&self) -> String {
        let events: Vec<serde_json::Value> = self
            .events
            .iter()
            .map(|e| {
                serde_json::json!({
                    "name": e.name,
                    "cat": e.cat,
                    "ph": "X",
                    "ts": e.ts_us,
                    "dur": e.dur_us,
                    "pid": e.rank,
                    "tid": 0,
                })
            })
            .collect();
        serde_json::to_string_pretty(&serde_json::Value::Array(events)).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums_categories() {
        let mut t = Timeline::new();
        t.record("group0", "allreduce", 0, 0.010, 0.025);
        t.record("group1", "allreduce", 0, 0.030, 0.050);
        t.record("fwd", "compute", 0, 0.0, 0.010);
        assert_eq!(t.events().len(), 3);
        assert!((t.category_seconds("allreduce") - 0.035).abs() < 1e-9);
        assert!((t.category_seconds("compute") - 0.010).abs() < 1e-9);
        assert_eq!(t.category_seconds("nothing"), 0.0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_phase_x() {
        let mut t = Timeline::new();
        t.record("g", "allreduce", 3, 0.0, 0.001);
        let json = t.to_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["pid"], 3);
        assert!((arr[0]["dur"].as_f64().unwrap() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_ranks() {
        let mut a = Timeline::new();
        a.record("x", "c", 0, 0.0, 1.0);
        let mut b = Timeline::new();
        b.record("y", "c", 1, 0.0, 2.0);
        a.merge(&b);
        assert_eq!(a.events().len(), 2);
        assert!((a.category_seconds("c") - 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_orders_events_by_start_time() {
        // Rank timelines arrive with interleaved timestamps; the merged
        // trace must be sorted by ts_us regardless of merge order.
        let mut a = Timeline::new();
        a.record("a0", "compute", 0, 0.030, 0.040);
        a.record("a1", "compute", 0, 0.000, 0.010);
        let mut b = Timeline::new();
        b.record("b0", "allreduce", 1, 0.020, 0.025);
        b.record("b1", "allreduce", 1, 0.005, 0.015);
        let mut merged = Timeline::new();
        merged.merge(&a);
        merged.merge(&b);
        let ts: Vec<f64> = merged.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(merged.events().len(), 4);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "unsorted: {ts:?}");
        // Stable for ties: equal timestamps keep insertion order.
        let mut c = Timeline::new();
        c.record("first", "c", 0, 0.0, 1.0);
        let mut d = Timeline::new();
        d.record("second", "c", 1, 0.0, 2.0);
        c.merge(&d);
        assert_eq!(c.events()[0].name, "first");
        assert_eq!(c.events()[1].name, "second");
    }

    #[test]
    fn timeline_serde_round_trips() {
        let mut t = Timeline::new();
        t.record("g0", "allreduce", 0, 0.010, 0.025);
        t.record("fwd", "compute", 1, 0.0, 0.010);
        let json = serde_json::to_string(&t).unwrap();
        let back: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn overlap_labels_round_trip_on_their_rank_track() {
        // The overlap engine tags spans with a fusion-group index and the
        // pipelined ring adds step + chunk indices; those labels must
        // survive serde and the chrome-trace export verbatim, on the
        // originating rank's track (pid).
        let labels = [
            "allreduce.pr[g2] rs1.c3 4096B",
            "allreduce.pr[g0] ag0.c0 52B",
            "allreduce.PipelinedRing[g1] 8388608B",
            "pack[g3] 16384B",
            "allreduce.launch[g0] 236B",
        ];
        let mut t = Timeline::new();
        for (i, l) in labels.iter().enumerate() {
            t.record(
                *l,
                "allreduce",
                i,
                i as f64 * 0.001,
                i as f64 * 0.001 + 0.0005,
            );
        }
        // serde round trip preserves names exactly
        let back: Timeline = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(back.events(), t.events());
        // chrome export keeps name and rank→pid pairing
        let v: serde_json::Value = serde_json::from_str(&t.to_chrome_trace()).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), labels.len());
        for (i, l) in labels.iter().enumerate() {
            let ev = arr
                .iter()
                .find(|e| e["name"] == *l)
                .unwrap_or_else(|| panic!("label `{l}` lost in chrome export"));
            assert_eq!(ev["pid"], i, "label `{l}` on the wrong rank track");
        }
    }

    #[test]
    fn chrome_trace_schema_has_required_keys_and_sorted_ts() {
        let mut a = Timeline::new();
        a.record("late", "compute", 0, 0.5, 0.6);
        a.record("early", "compute", 0, 0.1, 0.2);
        let mut m = Timeline::new();
        m.merge(&a);
        let v: serde_json::Value = serde_json::from_str(&m.to_chrome_trace()).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        let mut prev = f64::NEG_INFINITY;
        for ev in arr {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "missing {key}: {ev:?}");
            }
            assert_eq!(ev["ph"], "X");
            assert!(ev["ts"].as_f64().is_some() && ev["dur"].as_f64().is_some());
            let ts = ev["ts"].as_f64().unwrap();
            assert!(ts >= prev, "chrome events not sorted by ts");
            prev = ts;
        }
    }
}
