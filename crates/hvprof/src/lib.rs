//! `dlsr-hvprof` — a reimplementation of *hvprof* (Awan et al., HotI'19),
//! the Horovod/MPI communication profiler the paper uses to find its
//! bottlenecks (§III-B).
//!
//! The profiler aggregates collective timings **by operation and message
//! size bin** — the exact presentation of the paper's Table I and Fig 14.

//! # Example
//!
//! ```
//! use dlsr_hvprof::{compare, render_table, Collective, Hvprof};
//!
//! let mut default = Hvprof::new();
//! let mut optimized = Hvprof::new();
//! default.record(Collective::Allreduce, 48 << 20, 0.016);
//! optimized.record(Collective::Allreduce, 48 << 20, 0.008);
//! let rows = compare(&default, &optimized, Collective::Allreduce);
//! assert!((rows.last().unwrap().improvement_pct - 50.0).abs() < 1e-6);
//! println!("{}", render_table(&rows));
//! ```

#![forbid(unsafe_code)]
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

pub mod hist;
pub mod timeline;

pub use hist::Log2Histogram;
pub use timeline::{Timeline, TraceEvent};

/// Which collective an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Collective {
    /// Gradient averaging.
    Allreduce,
    /// Parameter distribution.
    Bcast,
    /// Variable-size gathers.
    Allgather,
    /// Synchronization.
    Barrier,
}

impl std::fmt::Display for Collective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Collective::Allreduce => "MPI_Allreduce",
            Collective::Bcast => "MPI_Bcast",
            Collective::Allgather => "MPI_Allgather",
            Collective::Barrier => "MPI_Barrier",
        };
        f.write_str(s)
    }
}

/// The paper's message-size bins (Table I).
pub const BINS: &[(&str, u64, u64)] = &[
    ("1-128 KB", 0, 128 << 10),
    ("128 KB - 16 MB", 128 << 10, 16 << 20),
    ("16 MB - 32 MB", 16 << 20, 32 << 20),
    ("32 MB - 64 MB", 32 << 20, 64 << 20),
    (">64 MB", 64 << 20, u64::MAX),
];

/// Index of the bin a message size falls into.
pub fn bin_of(bytes: u64) -> usize {
    BINS.iter()
        .position(|&(_, lo, hi)| bytes >= lo && bytes < hi)
        .expect("bins cover the full range")
}

/// Aggregated statistics for one (collective, bin) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinStats {
    /// Number of collective invocations.
    pub count: u64,
    /// Total virtual seconds spent.
    pub seconds: f64,
    /// Total payload bytes.
    pub bytes: u64,
}

/// A communication profile accumulated over a training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "HvprofWire", into = "HvprofWire")]
pub struct Hvprof {
    cells: BTreeMap<(Collective, usize), BinStats>,
    /// Per-cell latency sketches (seconds), kept so percentile latencies
    /// survive aggregation — a mean alone hides stragglers. A
    /// [`Log2Histogram`] instead of raw samples bounds profile size and
    /// keeps merges allocation-free.
    sketches: BTreeMap<(Collective, usize), Log2Histogram>,
}

/// JSON-friendly wire form (tuple map keys are not valid JSON keys).
/// `sketches` is today's format; `samples` is the raw-sample form older
/// profiles carried — both default to empty and raw samples are replayed
/// into sketches on load, so every historical profile still deserializes.
#[derive(Serialize, Deserialize)]
struct HvprofWire {
    cells: Vec<(Collective, usize, BinStats)>,
    samples: Option<Vec<(Collective, usize, Vec<f64>)>>,
    sketches: Option<Vec<(Collective, usize, Log2Histogram)>>,
}

impl From<HvprofWire> for Hvprof {
    fn from(w: HvprofWire) -> Self {
        let mut sketches: BTreeMap<(Collective, usize), Log2Histogram> = w
            .sketches
            .unwrap_or_default()
            .into_iter()
            .map(|(c, b, h)| ((c, b), h))
            .collect();
        for (c, b, vals) in w.samples.unwrap_or_default() {
            let h = sketches.entry((c, b)).or_default();
            for v in vals {
                h.record(v);
            }
        }
        Hvprof {
            cells: w.cells.into_iter().map(|(c, b, s)| ((c, b), s)).collect(),
            sketches,
        }
    }
}

impl From<Hvprof> for HvprofWire {
    fn from(p: Hvprof) -> Self {
        HvprofWire {
            cells: p.cells.into_iter().map(|((c, b), s)| (c, b, s)).collect(),
            samples: None,
            sketches: Some(
                p.sketches
                    .into_iter()
                    .map(|((c, b), h)| (c, b, h))
                    .collect(),
            ),
        }
    }
}

impl Hvprof {
    /// Empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one collective invocation of `bytes` payload taking
    /// `seconds` of virtual time.
    pub fn record(&mut self, op: Collective, bytes: u64, seconds: f64) {
        let key = (op, bin_of(bytes));
        let cell = self.cells.entry(key).or_default();
        cell.count += 1;
        cell.seconds += seconds;
        cell.bytes += bytes;
        self.sketches.entry(key).or_default().record(seconds);
    }

    /// Merge another profile into this one (e.g. across ranks).
    pub fn merge(&mut self, other: &Hvprof) {
        for (&key, stats) in &other.cells {
            let cell = self.cells.entry(key).or_default();
            cell.count += stats.count;
            cell.seconds += stats.seconds;
            cell.bytes += stats.bytes;
        }
        for (&key, sketch) in &other.sketches {
            self.sketches.entry(key).or_default().merge(sketch);
        }
    }

    /// Nearest-rank latency percentile (seconds) for one cell; `q` in
    /// `[0, 1]` (0.5 = median). 0.0 when the cell is empty. Answered
    /// from the cell's [`Log2Histogram`], so the result is within one
    /// log2 sub-bucket (≈4.4% relative) of the exact order statistic
    /// and exact for single-sample cells and at the extremes.
    pub fn percentile(&self, op: Collective, bin: usize, q: f64) -> f64 {
        self.sketches
            .get(&(op, bin))
            .map(|h| h.percentile(q))
            .unwrap_or(0.0)
    }

    /// The latency sketch backing one cell, if any calls were recorded.
    pub fn sketch(&self, op: Collective, bin: usize) -> Option<&Log2Histogram> {
        self.sketches.get(&(op, bin))
    }

    /// Stats for one (collective, bin) cell.
    pub fn cell(&self, op: Collective, bin: usize) -> BinStats {
        self.cells.get(&(op, bin)).copied().unwrap_or_default()
    }

    /// Total seconds across all bins for a collective.
    pub fn total_seconds(&self, op: Collective) -> f64 {
        self.cells
            .iter()
            .filter(|((o, _), _)| *o == op)
            .map(|(_, s)| s.seconds)
            .sum()
    }

    /// Per-bin seconds for a collective (indexed like [`BINS`]).
    pub fn bin_seconds(&self, op: Collective) -> Vec<f64> {
        (0..BINS.len()).map(|b| self.cell(op, b).seconds).collect()
    }

    /// Effective bandwidth (bytes/second) achieved in one bin.
    pub fn bandwidth(&self, op: Collective, bin: usize) -> f64 {
        let s = self.cell(op, bin);
        if s.seconds > 0.0 {
            s.bytes as f64 / s.seconds
        } else {
            0.0
        }
    }

    /// Export every non-empty cell as CSV:
    /// `collective,bin,calls,total_ms,p50_ms,p95_ms,total_mb,gb_per_s`,
    /// preceded by a `#` comment row documenting the bin edges.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# bins: ");
        for (i, &(name, lo, hi)) in BINS.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            if hi == u64::MAX {
                out.push_str(&format!("{name} = [{lo} B, inf)"));
            } else {
                out.push_str(&format!("{name} = [{lo} B, {hi} B)"));
            }
        }
        out.push('\n');
        out.push_str("collective,bin,calls,total_ms,p50_ms,p95_ms,total_mb,gb_per_s\n");
        for (&(op, bin), s) in &self.cells {
            out.push_str(&format!(
                "{op},{},{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                BINS[bin].0,
                s.count,
                s.seconds * 1e3,
                self.percentile(op, bin, 0.50) * 1e3,
                self.percentile(op, bin, 0.95) * 1e3,
                s.bytes as f64 / (1 << 20) as f64,
                self.bandwidth(op, bin) / 1e9,
            ));
        }
        out
    }

    /// Render the per-bin profile of one collective (Fig 14 style), with
    /// p50/p95 call latencies alongside the totals.
    pub fn render(&self, op: Collective) -> String {
        let mut out = format!("{op} profile by message size:\n");
        for (b, &(name, _, _)) in BINS.iter().enumerate() {
            let s = self.cell(op, b);
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {name:>16}: {:>10.1} ms over {:>6} calls (p50 {:.3} ms, p95 {:.3} ms, {} MB total)\n",
                s.seconds * 1e3,
                s.count,
                self.percentile(op, b, 0.50) * 1e3,
                self.percentile(op, b, 0.95) * 1e3,
                s.bytes >> 20
            ));
        }
        out
    }
}

/// Side-by-side comparison of two profiles for one collective — the
/// presentation of Table I ("Allreduce time performance improvement").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Bin label.
    pub bin: String,
    /// Baseline milliseconds.
    pub default_ms: f64,
    /// Optimized milliseconds.
    pub optimized_ms: f64,
    /// Percentage improvement (positive = optimized faster).
    pub improvement_pct: f64,
}

/// Build a Table-I-style comparison for a collective.
pub fn compare(default: &Hvprof, optimized: &Hvprof, op: Collective) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for (b, &(name, _, _)) in BINS.iter().enumerate() {
        let d = default.cell(op, b).seconds * 1e3;
        let o = optimized.cell(op, b).seconds * 1e3;
        if d == 0.0 && o == 0.0 {
            continue;
        }
        let imp = if d > 0.0 { (d - o) / d * 100.0 } else { 0.0 };
        rows.push(ComparisonRow {
            bin: name.to_string(),
            default_ms: d,
            optimized_ms: o,
            improvement_pct: imp,
        });
    }
    let d_total = default.total_seconds(op) * 1e3;
    let o_total = optimized.total_seconds(op) * 1e3;
    rows.push(ComparisonRow {
        bin: "Total Time".to_string(),
        default_ms: d_total,
        optimized_ms: o_total,
        improvement_pct: if d_total > 0.0 {
            (d_total - o_total) / d_total * 100.0
        } else {
            0.0
        },
    });
    rows
}

/// Render comparison rows as the paper's Table I.
pub fn render_table(rows: &[ComparisonRow]) -> String {
    let mut out = String::from(
        "| Message Size         | Default (ms) | Optimized (ms) | Improvement |\n\
         |----------------------|--------------|----------------|-------------|\n",
    );
    for r in rows {
        let imp = if r.improvement_pct.abs() < 2.0 {
            "≈ 0".to_string()
        } else {
            format!("{:.1}%", r.improvement_pct)
        };
        out.push_str(&format!(
            "| {:<20} | {:>12.1} | {:>14.1} | {:>11} |\n",
            r.bin, r.default_ms, r.optimized_ms, imp
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_match_the_papers_boundaries() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(127 << 10), 0);
        assert_eq!(bin_of(128 << 10), 1);
        assert_eq!(bin_of((16 << 20) - 1), 1);
        assert_eq!(bin_of(16 << 20), 2);
        assert_eq!(bin_of(32 << 20), 3);
        assert_eq!(bin_of(63 << 20), 3);
        assert_eq!(bin_of(64 << 20), 4);
    }

    #[test]
    fn record_accumulates_cells() {
        let mut p = Hvprof::new();
        p.record(Collective::Allreduce, 20 << 20, 0.010);
        p.record(Collective::Allreduce, 20 << 20, 0.015);
        p.record(Collective::Bcast, 1 << 10, 0.001);
        let cell = p.cell(Collective::Allreduce, 2);
        assert_eq!(cell.count, 2);
        assert!((cell.seconds - 0.025).abs() < 1e-12);
        assert!((p.total_seconds(Collective::Allreduce) - 0.025).abs() < 1e-12);
        assert!((p.total_seconds(Collective::Bcast) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_profiles() {
        let mut a = Hvprof::new();
        a.record(Collective::Allreduce, 1024, 0.5);
        let mut b = Hvprof::new();
        b.record(Collective::Allreduce, 1024, 0.25);
        a.merge(&b);
        assert_eq!(a.cell(Collective::Allreduce, 0).count, 2);
        assert!((a.total_seconds(Collective::Allreduce) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn comparison_reproduces_improvement_math() {
        // Table I total: 7179.9 → 3918.5 ms = 45.4 %
        let mut d = Hvprof::new();
        let mut o = Hvprof::new();
        d.record(Collective::Allreduce, 48 << 20, 7.1799);
        o.record(Collective::Allreduce, 48 << 20, 3.9185);
        let rows = compare(&d, &o, Collective::Allreduce);
        let total = rows.last().unwrap();
        assert_eq!(total.bin, "Total Time");
        assert!((total.improvement_pct - 45.4).abs() < 0.1);
    }

    #[test]
    fn render_table_marks_small_deltas_as_zero() {
        let mut d = Hvprof::new();
        let mut o = Hvprof::new();
        d.record(Collective::Allreduce, 1024, 0.392);
        o.record(Collective::Allreduce, 1024, 0.3912);
        let table = render_table(&compare(&d, &o, Collective::Allreduce));
        assert!(table.contains("≈ 0"), "{table}");
    }

    #[test]
    fn json_round_trip() {
        let mut p = Hvprof::new();
        p.record(Collective::Allreduce, 5 << 20, 0.1);
        let s = serde_json::to_string(&p).unwrap();
        let q: Hvprof = serde_json::from_str(&s).unwrap();
        assert_eq!(q.cell(Collective::Allreduce, 1).count, 1);
    }

    #[test]
    fn bandwidth_and_csv() {
        let mut p = Hvprof::new();
        p.record(Collective::Allreduce, 1 << 30, 1.0); // 1 GiB in 1 s
        let bw = p.bandwidth(Collective::Allreduce, bin_of(1 << 30));
        assert!((bw - (1u64 << 30) as f64).abs() < 1.0);
        assert_eq!(p.bandwidth(Collective::Bcast, 0), 0.0);
        let csv = p.to_csv();
        let mut lines = csv.lines();
        let edges = lines.next().unwrap();
        assert!(edges.starts_with("# bins: "), "{edges}");
        assert!(edges.contains("1-128 KB = [0 B, 131072 B)"));
        assert!(edges.contains(">64 MB = [67108864 B, inf)"));
        assert_eq!(
            lines.next().unwrap(),
            "collective,bin,calls,total_ms,p50_ms,p95_ms,total_mb,gb_per_s"
        );
        assert!(csv.contains("MPI_Allreduce,>64 MB,1,1000.000,1000.000,1000.000,1024.000"));
    }

    #[test]
    fn percentiles_expose_stragglers_the_mean_hides() {
        let mut p = Hvprof::new();
        // 19 fast calls and one 100× straggler in the same bin.
        for _ in 0..19 {
            p.record(Collective::Allreduce, 20 << 20, 0.010);
        }
        p.record(Collective::Allreduce, 20 << 20, 1.0);
        // Sketch-backed percentiles: within one log2 sub-bucket (≈4.4%).
        let p50 = p.percentile(Collective::Allreduce, 2, 0.50);
        let p95 = p.percentile(Collective::Allreduce, 2, 0.95);
        assert!((p50 - 0.010).abs() / 0.010 < 0.045, "{p50}");
        assert!((p95 - 0.010).abs() / 0.010 < 0.045, "{p95}");
        // The extremes are exact by construction.
        assert!((p.percentile(Collective::Allreduce, 2, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(p.percentile(Collective::Bcast, 0, 0.5), 0.0);
        let rendered = p.render(Collective::Allreduce);
        assert!(rendered.contains("p50 10.0"), "{rendered}");
        assert!(rendered.contains("p95 10.0"), "{rendered}");
    }

    #[test]
    fn percentiles_survive_merge_and_serde() {
        let mut a = Hvprof::new();
        a.record(Collective::Allreduce, 1024, 0.001);
        a.record(Collective::Allreduce, 1024, 0.002);
        let mut b = Hvprof::new();
        b.record(Collective::Allreduce, 1024, 0.100);
        a.merge(&b);
        let p50 = a.percentile(Collective::Allreduce, 0, 0.5);
        let p95 = a.percentile(Collective::Allreduce, 0, 0.95);
        assert!((p50 - 0.002).abs() / 0.002 < 0.045, "{p50}");
        assert!((p95 - 0.100).abs() / 0.100 < 0.045, "{p95}");
        let s = serde_json::to_string(&a).unwrap();
        let q: Hvprof = serde_json::from_str(&s).unwrap();
        let p95 = q.percentile(Collective::Allreduce, 0, 0.95);
        assert!((p95 - 0.100).abs() / 0.100 < 0.045, "{p95}");
        // Wire form without samples (pre-percentile profiles) still loads.
        let legacy = r#"{"cells":[["Allreduce",0,{"count":1,"seconds":0.5,"bytes":1024}]]}"#;
        let old: Hvprof = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.cell(Collective::Allreduce, 0).count, 1);
        assert_eq!(old.percentile(Collective::Allreduce, 0, 0.5), 0.0);
        // Raw-sample wire form (the pre-sketch format) is replayed into
        // sketches on load; single samples stay exact.
        let raw = r#"{"cells":[["Allreduce",0,{"count":1,"seconds":0.5,"bytes":1024}]],"samples":[["Allreduce",0,[0.5]]]}"#;
        let old: Hvprof = serde_json::from_str(raw).unwrap();
        assert!((old.percentile(Collective::Allreduce, 0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_skips_empty_bins() {
        let mut p = Hvprof::new();
        p.record(Collective::Allreduce, 20 << 20, 0.01);
        let s = p.render(Collective::Allreduce);
        assert!(s.contains("16 MB - 32 MB"));
        assert!(!s.contains("32 MB - 64 MB"));
    }
}
