//! Property-based tests for the cluster simulator: plan/estimate
//! monotonicity and jitter bounds over arbitrary inputs.

use proptest::prelude::*;

use dlsr_cluster::{estimate_allreduce, Scenario};
use dlsr_horovod::Backend;
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transport estimates are monotone in message size and finite.
    #[test]
    fn estimate_monotone_in_bytes(
        nodes in 1usize..200,
        a in 0u64..(128 << 20),
        b in 0u64..(128 << 20),
        opt in proptest::bool::ANY,
        nccl in proptest::bool::ANY,
    ) {
        let topo = ClusterTopology::lassen(nodes.min(792));
        let cfg = if opt { MpiConfig::mpi_opt() } else { MpiConfig::default_mpi() };
        let backend = if nccl { Backend::Nccl } else { Backend::Mpi };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t_lo = estimate_allreduce(&cfg, backend, &topo, lo);
        let t_hi = estimate_allreduce(&cfg, backend, &topo, hi);
        prop_assert!(t_lo.is_finite() && t_hi.is_finite());
        prop_assert!(t_lo >= 0.0);
        // the only size-dependence discontinuity is the IPC threshold,
        // which strictly *reduces* per-byte cost — so never strict inverse
        // monotonicity beyond it
        if lo >= (16 << 20) || hi < (16 << 20) {
            prop_assert!(t_lo <= t_hi + 1e-12, "{t_lo} > {t_hi} for {lo} <= {hi}");
        }
    }

    /// Optimized transport is never slower than default at equal size.
    #[test]
    fn estimate_opt_never_slower(nodes in 1usize..129, bytes in 0u64..(128 << 20)) {
        let topo = ClusterTopology::lassen(nodes);
        let d = estimate_allreduce(&MpiConfig::default_mpi(), Backend::Mpi, &topo, bytes);
        let o = estimate_allreduce(&MpiConfig::mpi_opt(), Backend::Mpi, &topo, bytes);
        prop_assert!(o <= d + 1e-12, "opt {o} > default {d}");
    }

    /// Scenario presets are internally consistent with their labels.
    #[test]
    fn scenario_roundtrip(i in 0usize..4) {
        let s = Scenario::ALL[i];
        // label is unique and stable
        prop_assert_eq!(Scenario::ALL.iter().filter(|x| x.label() == s.label()).count(), 1);
        // every scenario's config is constructible and self-consistent
        let cfg = s.mpi_config();
        prop_assert!(cfg.transport.nvlink.bandwidth > cfg.transport.staged.bandwidth);
    }
}

// jitter_factor is pub in dlsr_cluster::sim; re-exported check below
mod jitter {
    use dlsr_cluster::sim::jitter_factor;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Jitter is deterministic, bounded by [1, 1+σ), and varies.
        #[test]
        fn jitter_bounds(seed in 0u64..1000, rank in 0usize..512, step in 0u64..1000) {
            let sigma = 0.05;
            let j = jitter_factor(seed, rank, step, sigma);
            prop_assert!((1.0..1.0 + sigma).contains(&j));
            prop_assert_eq!(j, jitter_factor(seed, rank, step, sigma));
        }

        /// Across many ranks the draws are not all equal (the straggler
        /// model needs spread).
        #[test]
        fn jitter_spreads(seed in 0u64..1000, step in 0u64..1000) {
            let draws: Vec<f64> =
                (0..64).map(|r| jitter_factor(seed, r, step, 0.05)).collect();
            let min = draws.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = draws.iter().cloned().fold(0.0, f64::max);
            prop_assert!(max - min > 0.005, "no spread: {min}..{max}");
        }
    }
}
