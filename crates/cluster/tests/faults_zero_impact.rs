//! The zero-impact guarantee of `docs/ROBUSTNESS.md`: compiling the
//! `faults` feature in must not perturb a fault-free run. With no plan —
//! or an *empty* plan — attached, training produces bitwise-identical
//! losses, parameters and virtual makespan to the baseline, in both
//! overlap modes. (The cross-*build* half of the guarantee — default build
//! vs `--features faults` — is checked by the CI chaos job comparing
//! `dlsr train --digest` output across compilations.)

use std::sync::Arc;

use dlsr_cluster::{train_real, RealTrainConfig, RealTrainResult};
use dlsr_faults::FaultPlan;
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;
use parking_lot::Mutex;

/// Serializes the tests in this binary: the trace collector is a process
/// global, so a traced run must not interleave with other runs.
static LOCK: Mutex<()> = Mutex::new(());

fn topo(gpus: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("w{gpus}"),
        nodes: 1,
        gpus_per_node: gpus,
    }
}

fn digest(r: &RealTrainResult) -> (Vec<u32>, Vec<u32>, u64) {
    (
        r.losses.iter().map(|l| l.to_bits()).collect(),
        r.final_params.iter().map(|p| p.to_bits()).collect(),
        r.makespan.to_bits(),
    )
}

#[test]
fn empty_plan_is_bitwise_identical_to_no_plan() {
    let _g = LOCK.lock();
    for overlap in [true, false] {
        for gpus in [1usize, 2] {
            let t = topo(gpus);
            let cfg = RealTrainConfig::builder().steps(8).overlap(overlap).build();
            let bare = train_real(&t, MpiConfig::mpi_opt(), &cfg);
            let planned_cfg = MpiConfig::mpi_opt()
                .to_builder()
                .fault_plan(Some(Arc::new(FaultPlan::empty(99))))
                .build();
            let planned = train_real(&t, planned_cfg, &cfg);
            assert_eq!(
                digest(&bare),
                digest(&planned),
                "empty fault plan perturbed a fault-free run (overlap={overlap}, {gpus} ranks)"
            );
            assert_eq!(planned.comm_stats.retries, 0);
            assert_eq!(planned.comm_stats.backoff_seconds, 0.0);
            assert_eq!(planned.comm_stats.degraded_seconds, 0.0);
        }
    }
}

#[test]
fn checkpointing_is_identical_with_and_without_a_plan() {
    let _g = LOCK.lock();
    // checkpoint_every exercises the snapshot path; an empty plan must not
    // change when snapshots are taken or what they cost
    let cfg = RealTrainConfig::builder()
        .steps(9)
        .checkpoint_every(4)
        .build();
    let t = topo(2);
    let bare = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let planned_cfg = MpiConfig::mpi_opt()
        .to_builder()
        .fault_plan(Some(Arc::new(FaultPlan::empty(7))))
        .build();
    let planned = train_real(&t, planned_cfg, &cfg);
    assert_eq!(digest(&bare), digest(&planned));
}
