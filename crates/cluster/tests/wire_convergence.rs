//! Convergence equivalence for lossy gradient wire formats (docs/WIRE.md).
//!
//! The compressed wire formats change what goes over the simulated network,
//! not what training converges to: a 20-step EDSR(tiny) run under bf16,
//! fp16 and top-k (with error feedback) must track the f32 loss curve
//! within a small relative envelope and reach essentially the same final
//! loss. This is the empirical half of the wire contract — the bitwise
//! half (every rank sees identical quantized values) lives in the
//! `dlsr-mpi` property tests and the in-crate allreduce tests.

#![forbid(unsafe_code)]

use dlsr_cluster::realtrain::{train_real, RealTrainConfig};
use dlsr_mpi::{MpiConfig, WireFormat};
use dlsr_net::ClusterTopology;

fn topo() -> ClusterTopology {
    ClusterTopology {
        name: "wire-conv".into(),
        nodes: 2,
        gpus_per_node: 2,
    }
}

fn cfg() -> RealTrainConfig {
    RealTrainConfig::builder()
        .steps(20)
        .global_batch(8)
        .seed(0xC0DE)
        .build()
}

fn run(wf: WireFormat, hierarchical: bool) -> Vec<f32> {
    let mpi = MpiConfig::mpi_opt()
        .to_builder()
        .wire(wf)
        .wire_threshold(0)
        .hierarchical(hierarchical)
        .build();
    train_real(&topo(), mpi, &cfg()).losses
}

/// Largest per-step relative deviation from the f32 loss curve.
fn max_rel_dev(base: &[f32], lossy: &[f32]) -> f64 {
    assert_eq!(base.len(), lossy.len());
    base.iter()
        .zip(lossy)
        .map(|(b, l)| ((l - b) as f64 / *b as f64).abs())
        .fold(0.0, f64::max)
}

#[test]
fn lossy_wire_formats_track_the_f32_loss_curve() {
    let f32_losses = run(WireFormat::F32, false);
    assert!(
        f32_losses.last().unwrap() < &(f32_losses[0] * 0.8),
        "f32 baseline did not converge: {f32_losses:?}"
    );
    for (wf, tol, label) in [
        (WireFormat::Bf16, 0.01, "bf16"),
        (WireFormat::Fp16, 0.01, "fp16"),
        (WireFormat::TopK { k_permille: 200 }, 0.25, "topk:200"),
    ] {
        let losses = run(wf, false);
        let dev = max_rel_dev(&f32_losses, &losses);
        assert!(
            dev <= tol,
            "{label}: loss curve deviates {:.1}% from f32 (tol {:.0}%)\n  f32 {:?}\n  {label} {:?}",
            dev * 100.0,
            tol * 100.0,
            f32_losses,
            losses,
        );
        // The lossy run must also *converge*, not merely stay near a
        // baseline that happens to plateau.
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "{label} run did not converge: {losses:?}"
        );
    }
}

/// The hierarchical (two-level) path composes with compression without
/// changing the convergence story: bf16 over intra-node + leader-ring
/// reduction tracks the same envelope as bf16 over the flat path.
#[test]
fn hierarchical_allreduce_with_bf16_converges_like_flat() {
    let f32_losses = run(WireFormat::F32, false);
    let losses = run(WireFormat::Bf16, true);
    let dev = max_rel_dev(&f32_losses, &losses);
    assert!(
        dev <= 0.01,
        "hierarchical+bf16 deviates {:.2}% from the flat f32 curve\n  f32 {:?}\n  hier {:?}",
        dev * 100.0,
        f32_losses,
        losses,
    );
    assert!(losses.last().unwrap() < &(losses[0] * 0.8));
}
