//! Determinism contract of the online comm tuner (docs/WIRE.md):
//! *same binary + same seed + same `DLSR_COMM_TUNE` cache ⇒ the same
//! training bits*, on any execution core and any rayon pool size.
//!
//! Three pieces:
//!
//! 1. **Cross-core agreement on the frozen path.** The first tuned run in
//!    a process installs its frozen decision in the process-global table;
//!    later runs with the same (world, grad bytes) key freeze at step 0.
//!    The event and threaded cores must train identical bits from that
//!    shared frozen state.
//! 2. **Exploration is reproducible.** Fresh-cache runs must print the
//!    same digest on any core and any rayon pool size — the tuner's
//!    measurements are virtual-clock durations agreed through a
//!    Max-allreduce, never wall time. The in-process table would leak the
//!    first run's decision into the second, so each exploration gets its
//!    own child process (the re-exec pattern of `tests/determinism.rs`).
//! 3. **Cache round-trip through the environment.** A run pointed at an
//!    absent `DLSR_COMM_TUNE` file explores and appends its frozen
//!    decision; later runs pointed at that file freeze at step 0, are
//!    bitwise stable across pool sizes, and never grow the file.

#![forbid(unsafe_code)]

use std::process::Command;

use dlsr_cluster::realtrain::{train_real, RealTrainConfig, RealTrainResult};
use dlsr_mpi::{MpiConfig, SimCore};
use dlsr_net::ClusterTopology;

const CHILD_ENV: &str = "DLSR_COMM_TUNE_DIGEST_CHILD";
const CHILD_CORE_ENV: &str = "DLSR_COMM_TUNE_DIGEST_CORE";

fn topo() -> ClusterTopology {
    ClusterTopology {
        name: "comm-tune-det".into(),
        nodes: 2,
        gpus_per_node: 2,
    }
}

fn cfg() -> RealTrainConfig {
    // Long enough to outlast exploration: two steps (settle + measure)
    // per candidate, at most 8 candidates.
    RealTrainConfig::builder()
        .steps(16)
        .global_batch(8)
        .seed(0x7E57_7E57)
        .tune_comm(true)
        .build()
}

/// FNV-1a over the exact bit patterns of losses and parameters.
fn digest(res: &RealTrainResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u32| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for l in &res.losses {
        eat(l.to_bits());
    }
    for p in &res.final_params {
        eat(p.to_bits());
    }
    h
}

fn on_core(core: SimCore) -> MpiConfig {
    MpiConfig::mpi_opt().to_builder().sim_core(core).build()
}

#[test]
fn cores_agree_bitwise_on_the_frozen_tuner_path() {
    // Warm the process-global table: this run explores, freezes, installs.
    let _warm = train_real(&topo(), on_core(SimCore::Event), &cfg());
    assert!(
        !dlsr_horovod::tuner::entries().is_empty(),
        "a tuned run left no frozen decision behind"
    );
    // Both runs below find the installed entry and freeze at step 0.
    let ev = train_real(&topo(), on_core(SimCore::Event), &cfg());
    let th = train_real(&topo(), on_core(SimCore::Threaded), &cfg());
    assert_eq!(
        digest(&ev),
        digest(&th),
        "frozen-tuner runs diverged between the event and threaded cores"
    );
    assert_eq!(ev.makespan.to_bits(), th.makespan.to_bits());
}

/// Child mode: print the digest of one tuned run and exit. The parent
/// pins `RAYON_NUM_THREADS`, `DLSR_COMM_TUNE` and the core before
/// spawning.
#[test]
fn comm_tune_cache_makes_runs_bitwise_reproducible() {
    if std::env::var_os(CHILD_ENV).is_some() {
        let core = match std::env::var(CHILD_CORE_ENV).as_deref() {
            Ok("threaded") => SimCore::Threaded,
            _ => SimCore::Event,
        };
        let res = train_real(&topo(), on_core(core), &cfg());
        println!("DIGEST={:#018x}", digest(&res));
        return;
    }
    let dir = std::env::temp_dir().join(format!("dlsr-comm-tune-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create comm-tune dir");

    // Fresh-cache exploration is core- and thread-count invariant. Each
    // child gets its own cache file so no child reads another's frozen
    // decision.
    let d1 = digest_from_child("1", "event", &dir.join("explore-1.tune"));
    let d4 = digest_from_child("4", "event", &dir.join("explore-4.tune"));
    let dt = digest_from_child("1", "threaded", &dir.join("explore-t.tune"));
    assert_eq!(d1, d4, "exploration digests differ across rayon pool sizes");
    assert_eq!(d1, dt, "exploration digests differ across execution cores");

    // The seeding child above appended exactly one frozen decision
    // (appends are header-less, like the GEMM tune cache; `# comments`
    // are tolerated when reading).
    let cache = dir.join("explore-1.tune");
    let text = std::fs::read_to_string(&cache).expect("tuned child persisted its decision");
    assert_eq!(
        text.lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .count(),
        1,
        "expected exactly one frozen entry:\n{text}"
    );

    // The same cache state must now reproduce the same bits on any pool
    // size and core — the warm children freeze at step 0, skipping
    // exploration, so their digest legitimately differs from the
    // exploring run's.
    let w1 = digest_from_child("1", "event", &cache);
    let w4 = digest_from_child("4", "event", &cache);
    let wt = digest_from_child("1", "threaded", &cache);
    assert_eq!(w1, w4, "warm-cache digests differ across rayon pool sizes");
    assert_eq!(w1, wt, "warm-cache digests differ across execution cores");
    // Appending happens at freeze time only: a run that starts frozen
    // must not grow the file (the cache state would otherwise depend on
    // how many runs came before).
    let after = std::fs::read_to_string(&cache).expect("cache still readable");
    assert_eq!(text, after, "a warm-cache run mutated the cache file");
    let _ = std::fs::remove_dir_all(&dir);
}

fn digest_from_child(rayon_threads: &str, core: &str, cache: &std::path::Path) -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .args([
            "comm_tune_cache_makes_runs_bitwise_reproducible",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_ENV, "1")
        .env(CHILD_CORE_ENV, core)
        .env("RAYON_NUM_THREADS", rayon_threads)
        .env("DLSR_COMM_TUNE", cache)
        .output()
        .expect("spawn digest child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "digest child ({rayon_threads} threads, {core} core) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let at = stdout
        .find("DIGEST=0x")
        .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
    let hex: String = stdout[at + "DIGEST=0x".len()..]
        .chars()
        .take_while(char::is_ascii_hexdigit)
        .collect();
    u64::from_str_radix(&hex, 16).expect("digest parses")
}
