//! Injected-fault behavior of the real training path (`docs/ROBUSTNESS.md`):
//! every fault class is timing-only — retries, degraded links, stragglers
//! and even a mid-run rank failure stretch the virtual timeline but leave
//! the training math bitwise identical to a fault-free run — and the whole
//! injected run is deterministic in the fault-plan seed.

use std::sync::Arc;

use dlsr_cluster::{train_real, RealTrainConfig, RealTrainResult};
use dlsr_faults::{ChaosScenario, FaultPlan, FaultSpec, RankFailure};
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;
use parking_lot::Mutex;

/// Serializes the tests in this binary: the trace collector is a process
/// global, so a traced run must not interleave with other runs.
static LOCK: Mutex<()> = Mutex::new(());

fn topo(nodes: usize, gpus: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("n{nodes}g{gpus}"),
        nodes,
        gpus_per_node: gpus,
    }
}

fn with_plan(plan: FaultPlan) -> MpiConfig {
    MpiConfig::mpi_opt()
        .to_builder()
        .fault_plan(Some(Arc::new(plan)))
        .build()
}

fn math_digest(r: &RealTrainResult) -> (Vec<u32>, Vec<u32>) {
    (
        r.losses.iter().map(|l| l.to_bits()).collect(),
        r.final_params.iter().map(|p| p.to_bits()).collect(),
    )
}

/// The recovery demo of ISSUE 5: rank 1 dies at step 5; the job restores
/// from the step-3 checkpoint, replays, and lands on the *same* trained
/// model — recovery costs time, never accuracy.
#[test]
fn rank_failure_restores_from_checkpoint_and_reconverges() {
    let _g = LOCK.lock();
    let t = topo(1, 2);
    let cfg = RealTrainConfig::builder()
        .steps(10)
        .checkpoint_every(3)
        .eval_every(Some(5))
        .build();
    let clean = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let plan = ChaosScenario::RankFailure.plan(42, 2, 10);
    let f = plan.rank_failure().expect("scenario schedules a failure");
    assert_eq!((f.rank, f.step), (1, 5));
    dlsr_trace::set_enabled(true);
    dlsr_trace::reset();
    let faulted = train_real(&t, with_plan(plan), &cfg);
    dlsr_trace::set_enabled(false);
    // bitwise re-convergence: step-keyed data + exact state restore make
    // the replayed steps identical, so the final model matches exactly —
    // comfortably within the 0.1 dB acceptance bound
    assert_eq!(math_digest(&clean), math_digest(&faulted));
    assert_eq!(faulted.psnr_curve, clean.psnr_curve);
    assert!((faulted.model_psnr - clean.model_psnr).abs() < 0.1);
    assert!(
        faulted.makespan > clean.makespan,
        "detection + restore + replayed steps must cost virtual time: {} vs {}",
        faulted.makespan,
        clean.makespan
    );
    // the restore and the checkpoints it relies on are visible in the
    // step report's fault summary
    let counters = dlsr_trace::counters_snapshot();
    let report = dlsr_trace::report::StepReport::build(&faulted.trace, &counters);
    assert!(report.faults.restores >= 1, "restore counter missing");
    assert!(
        report.faults.checkpoints >= 3,
        "checkpoint counters missing"
    );
    assert!(report.faults.checkpoint_s > 0.0);
    assert!(report.render().contains("faults:"));
}

/// A failure *before* any periodic checkpoint falls back to the initial
/// (post-broadcast) snapshot: the whole prefix replays.
#[test]
fn early_failure_restores_from_initial_snapshot() {
    let _g = LOCK.lock();
    let t = topo(1, 2);
    let cfg = RealTrainConfig::builder().steps(6).build(); // no checkpoints
    let clean = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let plan = FaultPlan::from_spec(FaultSpec {
        seed: 1,
        rank_failure: Some(RankFailure { rank: 0, step: 2 }),
        ..Default::default()
    })
    .unwrap();
    let faulted = train_real(&t, with_plan(plan), &cfg);
    assert_eq!(math_digest(&clean), math_digest(&faulted));
    assert!(faulted.makespan > clean.makespan);
}

/// Message loss/corruption is absorbed by retry + exponential backoff: the
/// transport pays, the math doesn't notice.
#[test]
fn lossy_transport_retries_without_changing_the_math() {
    let _g = LOCK.lock();
    let t = topo(1, 2);
    let cfg = RealTrainConfig::builder().steps(6).build();
    let clean = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let faulted = train_real(&t, with_plan(ChaosScenario::Lossy.plan(42, 2, 6)), &cfg);
    assert_eq!(math_digest(&clean), math_digest(&faulted));
    assert!(
        faulted.comm_stats.retries > 0,
        "5%+2% loss must trigger retries"
    );
    assert!(faulted.comm_stats.backoff_seconds > 0.0);
    assert!(faulted.makespan > clean.makespan);
}

/// A degraded inter-node link slows transfers inside its window only.
#[test]
fn degraded_link_charges_time_on_the_wire() {
    let _g = LOCK.lock();
    let t = topo(2, 1);
    let cfg = RealTrainConfig::builder().steps(4).build();
    let clean = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let faulted = train_real(
        &t,
        with_plan(ChaosScenario::DegradedLink.plan(42, 2, 4)),
        &cfg,
    );
    assert_eq!(math_digest(&clean), math_digest(&faulted));
    assert!(faulted.comm_stats.degraded_seconds > 0.0);
    assert!(faulted.makespan > clean.makespan);
}

/// A straggler rank stretches its compute; synchronous data parallelism
/// makes everyone wait for it.
#[test]
fn straggler_rank_stretches_the_makespan() {
    let _g = LOCK.lock();
    let t = topo(1, 2);
    let cfg = RealTrainConfig::builder().steps(4).build();
    let clean = train_real(&t, MpiConfig::mpi_opt(), &cfg);
    let faulted = train_real(&t, with_plan(ChaosScenario::Straggler.plan(42, 2, 4)), &cfg);
    assert_eq!(math_digest(&clean), math_digest(&faulted));
    assert!(faulted.makespan > clean.makespan);
}

/// Determinism contract: the same fault-plan seed reproduces the injected
/// run exactly — losses, retry counts and makespan — at every world size.
#[test]
fn injected_runs_are_deterministic_in_the_plan_seed() {
    let _g = LOCK.lock();
    for gpus in [1usize, 2, 4] {
        let t = topo(1, gpus);
        let cfg = RealTrainConfig::builder().steps(5).build();
        let run = || train_real(&t, with_plan(ChaosScenario::Lossy.plan(7, gpus, 5)), &cfg);
        let (a, b) = (run(), run());
        assert_eq!(math_digest(&a), math_digest(&b));
        assert_eq!(a.comm_stats.retries, b.comm_stats.retries);
        assert_eq!(
            a.comm_stats.backoff_seconds.to_bits(),
            b.comm_stats.backoff_seconds.to_bits()
        );
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits(), "{gpus} ranks");
    }
}
