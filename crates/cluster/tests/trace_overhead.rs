//! Tracing must be (virtually) free: the collector records spans and
//! counters but never advances a rank's virtual clock, so the simulated
//! step time with tracing enabled must stay within 3 % of the untraced
//! run. Virtual time is deterministic, which makes this a stable bound —
//! in practice the two runs are bit-identical.

use dlsr_cluster::{edsr_measured_workload, run_training, Scenario};
use dlsr_net::ClusterTopology;

#[test]
fn enabling_trace_changes_step_time_by_less_than_3_percent() {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology::lassen(2);

    dlsr_trace::set_enabled(false);
    dlsr_trace::reset();
    let off = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 4, 7);
    assert!(
        off.trace.is_empty(),
        "disabled collector must record nothing"
    );

    dlsr_trace::set_enabled(true);
    dlsr_trace::reset();
    let on = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 4, 7);
    dlsr_trace::set_enabled(false);
    dlsr_trace::reset();
    assert!(
        !on.trace.is_empty(),
        "enabled collector must record the run"
    );

    let delta = (on.step_time - off.step_time).abs() / off.step_time;
    assert!(
        delta < 0.03,
        "tracing perturbed virtual step time by {:.2}%: {} vs {} s",
        delta * 100.0,
        on.step_time,
        off.step_time
    );
}
