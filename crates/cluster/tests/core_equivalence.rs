//! The cross-core contract of the event-driven rewrite (`docs/SIMCORE.md`):
//! the zero-thread driven engine and the thread-per-rank context core run
//! the *same* task state machines, so a training run must be bitwise
//! identical across cores — same per-step losses, same final parameters,
//! same virtual makespan — at every world size, with and without
//! communication overlap, and under an injected fault plan. Any
//! divergence means a core has private semantics, which is exactly what
//! the single-implementation task design exists to forbid.

use dlsr_cluster::{train_real, RealTrainConfig, RealTrainResult};
use dlsr_mpi::{MpiConfig, SimCore};
use dlsr_net::ClusterTopology;
use parking_lot::Mutex;

/// Serializes the tests in this binary: the trace collector is a process
/// global, so a traced run must not interleave with other runs.
static LOCK: Mutex<()> = Mutex::new(());

fn topo(gpus: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("eq{gpus}"),
        nodes: 1,
        gpus_per_node: gpus,
    }
}

fn on_core(core: SimCore) -> MpiConfig {
    MpiConfig::mpi_opt().to_builder().sim_core(core).build()
}

/// Everything the cores must agree on, as exact bit patterns.
fn bits(r: &RealTrainResult) -> (Vec<u32>, Vec<u32>, u64) {
    (
        r.losses.iter().map(|l| l.to_bits()).collect(),
        r.final_params.iter().map(|p| p.to_bits()).collect(),
        r.makespan.to_bits(),
    )
}

#[test]
fn cores_agree_bitwise_across_world_sizes_and_overlap_modes() {
    let _g = LOCK.lock();
    for gpus in [1usize, 2, 4, 8] {
        let t = topo(gpus);
        for overlap in [true, false] {
            // global batch 8 divides every world size under test
            let cfg = RealTrainConfig::builder()
                .steps(6)
                .global_batch(8)
                .overlap(overlap)
                .build();
            let ev = train_real(&t, on_core(SimCore::Event), &cfg);
            let th = train_real(&t, on_core(SimCore::Threaded), &cfg);
            let mode = if overlap { "overlapped" } else { "sequential" };
            assert_eq!(
                bits(&ev),
                bits(&th),
                "{gpus} ranks, {mode}: event and threaded cores diverged"
            );
        }
    }
}

/// Fault injection must not open a gap between cores either: the plan is
/// applied by the shared communicator layer, beneath the executor.
#[cfg(feature = "faults")]
#[test]
fn cores_agree_bitwise_under_an_injected_fault_plan() {
    use std::sync::Arc;

    use dlsr_faults::ChaosScenario;

    let _g = LOCK.lock();
    let t = topo(4);
    let cfg = RealTrainConfig::builder().steps(6).build();
    for scenario in [ChaosScenario::Lossy, ChaosScenario::DegradedLink] {
        let run = |core: SimCore| {
            let mpi = on_core(core)
                .to_builder()
                .fault_plan(Some(Arc::new(scenario.plan(7, 4, 6))))
                .build();
            train_real(&t, mpi, &cfg)
        };
        let ev = run(SimCore::Event);
        let th = run(SimCore::Threaded);
        assert_eq!(
            bits(&ev),
            bits(&th),
            "{scenario:?}: event and threaded cores diverged under faults"
        );
    }
}
