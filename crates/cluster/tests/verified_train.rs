//! End-to-end smoke test: real distributed EDSR training under the
//! collective-matching verifier (`verify` feature — see Cargo.toml).
//!
//! This is the "clean workspace" half of the verifier story: the full
//! training path (parameter bcast, coordinator negotiation, overlapped
//! fusion-group allreduces, metric reductions) must rendezvous cleanly at
//! every round, and the launch order recorded per rank must match the
//! analytic schedule.

#![forbid(unsafe_code)]

use dlsr_cluster::realtrain::{train_real, RealTrainConfig};
use dlsr_mpi::{verify, MpiConfig};
use dlsr_net::ClusterTopology;

#[test]
fn real_training_passes_the_verifier() {
    // `required-features = ["verify"]` guarantees verify::COMPILED here.
    let topo = ClusterTopology {
        name: "mini".into(),
        nodes: 1,
        gpus_per_node: 2,
    };
    let cfg = RealTrainConfig::builder().steps(6).build();
    // Overlapped engine: fusion groups launch mid-backward, which is
    // exactly the path whose launch order the verifier audits.
    let res = train_real(&topo, MpiConfig::mpi_opt(), &cfg);
    assert!(res.losses.len() == 6);
    assert!(
        verify::take_violations().is_empty(),
        "clean training must record no violations"
    );
    let summary = verify::last_summary().expect("verified run stores a summary");
    assert_eq!(summary.ranks, 2);
    assert!(
        summary.collectives_checked > 0,
        "bcast/negotiate/allreduce rounds were checked: {summary:?}"
    );
    assert!(
        summary.launches_checked > 0,
        "fusion-group launches were checked: {summary:?}"
    );

    // Sequential engine covers the backward-then-allreduce path too.
    let cfg = RealTrainConfig::builder().steps(3).overlap(false).build();
    let res = train_real(&topo, MpiConfig::mpi_opt(), &cfg);
    assert!(res.losses.len() == 3);
    assert!(verify::take_violations().is_empty());
}
