//! The overlap engine's correctness bar: overlapped execution must be
//! *bitwise* identical to the sequential backward-then-allreduce path —
//! same losses, same final parameters — because group packing preserves
//! byte ranges, the size-binned algorithm choice is a pure function of
//! group bytes, and every reduction keeps a fixed element-wise order.
//! And it must actually help: the step report's exposed communication has
//! to shrink when launches ride inside the backward window.

use dlsr_cluster::{train_real, RealTrainConfig};
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;
use parking_lot::Mutex;

/// Serializes the tests in this binary: the trace collector is a process
/// global, so a traced run must not interleave with other runs.
static LOCK: Mutex<()> = Mutex::new(());

fn topo(gpus: usize) -> ClusterTopology {
    ClusterTopology {
        name: format!("w{gpus}"),
        nodes: 1,
        gpus_per_node: gpus,
    }
}

#[test]
fn overlapped_training_is_bitwise_identical_to_sequential() {
    let _g = LOCK.lock();
    for gpus in [1usize, 2, 4] {
        let t = topo(gpus);
        let sequential = RealTrainConfig::builder().steps(20).overlap(false).build();
        let overlapped = sequential.clone().to_builder().overlap(true).build();
        let a = train_real(&t, MpiConfig::mpi_opt(), &sequential);
        let b = train_real(&t, MpiConfig::mpi_opt(), &overlapped);
        assert_eq!(
            a.losses, b.losses,
            "{gpus} ranks: per-step losses diverged between sequential and overlapped"
        );
        assert_eq!(
            a.final_params, b.final_params,
            "{gpus} ranks: final parameters diverged between sequential and overlapped"
        );
    }
}

#[test]
fn measured_readiness_reconciles_with_the_analytic_schedule() {
    let _g = LOCK.lock();
    let cfg = RealTrainConfig::builder().steps(5).build();
    let res = train_real(&topo(2), MpiConfig::mpi_opt(), &cfg);
    let rec = res
        .readiness
        .expect("overlapped run must reconcile readiness");
    assert_eq!(rec.analytic.len(), rec.measured.len());
    assert!(!rec.analytic.is_empty());
    assert!(
        rec.measured_monotone,
        "hooks fire in backward order, measured readiness must be non-decreasing"
    );
    // Both schedules are normalized to fractions of their final value; the
    // analytic model (readiness ∝ cumulative parameter volume) should track
    // the real path's shape. The bound is loose — measured readiness is
    // wall-clock and therefore noisy.
    assert!(
        rec.max_abs_dev < 0.6,
        "analytic schedule diverged from measured readiness: max dev {}",
        rec.max_abs_dev
    );
    // sequential runs record no reconciliation
    let seq = train_real(
        &topo(2),
        MpiConfig::mpi_opt(),
        &RealTrainConfig::builder().overlap(false).steps(2).build(),
    );
    assert!(seq.readiness.is_none());
}

#[test]
fn overlap_shrinks_exposed_communication() {
    let _g = LOCK.lock();
    let run = |overlap: bool| {
        dlsr_trace::set_enabled(true);
        dlsr_trace::reset();
        let cfg = RealTrainConfig::builder()
            .steps(3)
            .global_batch(8)
            .overlap(overlap)
            .build();
        let res = train_real(&ClusterTopology::lassen(2), MpiConfig::mpi_opt(), &cfg);
        dlsr_trace::set_enabled(false);
        let counters = dlsr_trace::counters_snapshot();
        dlsr_trace::reset();
        let report = dlsr_trace::report::StepReport::build(&res.trace, &counters);
        (res, report)
    };
    let (_, seq) = run(false);
    let (ovl_res, ovl) = run(true);

    let mean_exposed = |r: &dlsr_trace::report::StepReport| {
        r.ranks.iter().map(|b| b.exposed_comm_s).sum::<f64>() / r.ranks.len() as f64
    };
    let (e_seq, e_ovl) = (mean_exposed(&seq), mean_exposed(&ovl));
    assert!(e_seq > 0.0, "sequential run must expose some communication");
    assert!(
        e_ovl <= 0.75 * e_seq,
        "overlap did not shrink exposed comm by ≥25%: {e_ovl} vs {e_seq} s"
    );
    // the overlapped run leaves wall-clock launch markers mid-backward
    assert!(
        ovl_res
            .trace
            .iter()
            .any(|e| e.cat == dlsr_trace::cat::AR_LAUNCH),
        "overlapped run recorded no allreduce.launch markers"
    );
}
