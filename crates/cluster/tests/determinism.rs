//! Determinism regression tests for the real training path.
//!
//! Two guarantees, both bitwise:
//!
//! 1. **Same seed ⇒ same run.** Two identical 2-rank `train_real` calls in
//!    the same process produce identical final parameters.
//! 2. **Thread-count invariance.** The rayon pool size is a performance
//!    knob, not a numerics knob: the kernel engine splits work on fixed
//!    batch/row boundaries, so 1 worker thread and 4 worker threads must
//!    produce the same bits. Rayon reads `RAYON_NUM_THREADS` once at pool
//!    initialization, so each pool size needs its own process: the test
//!    re-executes its own binary with the env var pinned and compares the
//!    digests the children print.

#![forbid(unsafe_code)]

use std::process::Command;

use dlsr_cluster::realtrain::{train_real, RealTrainConfig};
use dlsr_mpi::MpiConfig;
use dlsr_net::ClusterTopology;

const CHILD_ENV: &str = "DLSR_DETERMINISM_DIGEST_CHILD";

fn topo() -> ClusterTopology {
    ClusterTopology {
        name: "det".into(),
        nodes: 1,
        gpus_per_node: 2,
    }
}

fn cfg() -> RealTrainConfig {
    RealTrainConfig::builder()
        .steps(4)
        .seed(0x000D_5EED)
        .build()
}

/// FNV-1a over the exact bit patterns of the parameters: any single-ULP
/// drift changes the digest.
fn digest(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in params {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn train_digest() -> u64 {
    let res = train_real(&topo(), MpiConfig::mpi_opt(), &cfg());
    digest(&res.final_params)
}

#[test]
fn same_seed_twice_is_bitwise_identical() {
    let a = train_real(&topo(), MpiConfig::mpi_opt(), &cfg());
    let b = train_real(&topo(), MpiConfig::mpi_opt(), &cfg());
    assert_eq!(
        a.final_params,
        b.final_params,
        "same-seed runs diverged (digests {:#x} vs {:#x})",
        digest(&a.final_params),
        digest(&b.final_params)
    );
}

/// Run in a child process (see below): print the digest on a parseable
/// line and nothing else of consequence.
#[test]
fn thread_count_does_not_change_parameters() {
    if std::env::var_os(CHILD_ENV).is_some() {
        // Child mode: the pool size was pinned by the parent via
        // RAYON_NUM_THREADS before this process started.
        println!("DIGEST={:#018x}", train_digest());
        return;
    }
    let d1 = digest_from_child("1", &[]);
    let d4 = digest_from_child("4", &[]);
    assert_eq!(
        d1, d4,
        "1 vs 4 rayon threads changed the trained parameters"
    );
}

/// The SIMD kernel engine's digest contract: *same binary + same tune
/// cache + same seed ⇒ same digest on any thread count and any ISA.*
/// Every cell of the {1, 4 threads} × {SIMD, forced-scalar} ×
/// {no cache, cold cache, warm cache} matrix must produce the bits of the
/// plain single-threaded run. The warm cache deliberately overrides the
/// kernel variant / `nc` / parallel hint for the EDSR body shapes (keeping
/// `kc`, the only bit-affecting field) — proving tuning can change speed
/// but never results.
#[test]
fn simd_isa_and_tune_cache_do_not_change_parameters() {
    if std::env::var_os(CHILD_ENV).is_some() {
        println!("DIGEST={:#018x}", train_digest());
        return;
    }
    let base = digest_from_child("1", &[]);

    for threads in ["1", "4"] {
        let d = digest_from_child(threads, &[("DLSR_FORCE_SCALAR", "1")]);
        assert_eq!(
            base, d,
            "forced-scalar kernels changed the digest ({threads} threads)"
        );
    }

    let dir = std::env::temp_dir().join(format!("dlsr-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tune-cache dir");
    let cold = dir.join("cold.tune");
    let warm = dir.join("warm.tune");
    // Warm cache: same kc as the heuristic (576→256, 64→64), everything
    // else perturbed away from what the selector would pick on its own.
    std::fs::write(
        &warm,
        "# digest-preserving overrides: kc untouched\n\
         64 576 2304 scalar 6 8 256 64 seq\n\
         576 64 2304 avx2_4x16 4 16 64 128 rows\n",
    )
    .expect("write warm tune cache");
    for (label, path) in [("cold", &cold), ("warm", &warm)] {
        for threads in ["1", "4"] {
            let d = digest_from_child(
                threads,
                &[("DLSR_TUNE_CACHE", path.to_str().expect("utf-8 tmp path"))],
            );
            assert_eq!(
                base, d,
                "{label} tune cache changed the digest ({threads} threads)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn digest_from_child(rayon_threads: &str, extra_env: &[(&str, &str)]) -> u64 {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args([
        "thread_count_does_not_change_parameters",
        "--exact",
        "--nocapture",
        "--test-threads=1",
    ])
    .env(CHILD_ENV, "1")
    .env("RAYON_NUM_THREADS", rayon_threads);
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn digest child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "digest child ({rayon_threads} threads) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // With --nocapture the harness may interleave its own status text on
    // the same line, so locate the marker anywhere in the output.
    let at = stdout
        .find("DIGEST=0x")
        .unwrap_or_else(|| panic!("no DIGEST marker in child output:\n{stdout}"));
    let hex: String = stdout[at + "DIGEST=0x".len()..]
        .chars()
        .take_while(char::is_ascii_hexdigit)
        .collect();
    u64::from_str_radix(&hex, 16).expect("digest parses")
}
