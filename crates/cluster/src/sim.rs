//! The at-scale training-step simulator.

use dlsr_gpu::{GpuSpec, KernelCostModel, MemoryError, WorkloadProfile};
use dlsr_horovod::{
    plan_dynamic, readiness_from_elems, Backend, HorovodConfig, NegotiateTask, ScheduledGroup,
    TensorSpec,
};
use dlsr_hvprof::{Collective, Hvprof, Timeline};
use dlsr_mpi::collectives::tasks::{AllreduceElemsTask, BarrierTask};
use dlsr_mpi::collectives::AllreduceAlgorithm;
use dlsr_mpi::config::DeviceMode;
use dlsr_mpi::{drive_program, Comm, MpiConfig, PathPolicy, RankProgram, Step, Task};
use dlsr_net::{ClusterTopology, RegCacheStats};

use crate::scenario::Scenario;

/// Stable id namespace for fusion buffers (mirrors the Horovod layer).
const FUSION_BUF_ID_BASE: u64 = 0x4655_5300;

/// Coordinator per-report processing cost charged in the *executed*
/// once-per-step negotiation (rank 0, per worker).
const COORDINATOR_REPORT_COST: f64 = 20.0e-6;

/// Per-fused-group coordination cost in the *planning estimate*: every
/// reduction round requires a coordinator cycle in which rank 0 handles one
/// readiness report per worker (≈120 µs each, Python-side) plus fixed
/// engine work. This linear-in-world term is Horovod's known scalability
/// tax; at 512 ranks it makes the engine fall behind the backward pass, so
/// fused groups both grow and spill past the end of backward — the two
/// effects behind the paper's efficiency fall-off (Figs 10/13).
fn coordination_cost(world: usize) -> f64 {
    1.0e-3 + world as f64 * 120.0e-6
}

/// The Horovod cycle time used for EDSR runs. §II-D: "HOROVOD_CYCLE_TIME
/// [is] carefully tuned at each scale to maximize training throughput" —
/// for a 163 MB gradient set produced over a ~250 ms backward pass, a long
/// cycle maximizes fusion (≈64 MB/s × 80 ms ≈ 26–35 MB per fused message),
/// reproducing the 16–64 MB message mix of Table I / Fig 14.
const TUNED_CYCLE_TIME: f64 = 80.0e-3;

/// Tuned fusion threshold (§II-D): large enough to fuse a cycle's worth of
/// tensors, capped below the paper's top profiling bin.
const TUNED_FUSION_THRESHOLD: u64 = 48 << 20;

/// Elements in the per-step metrics allreduce (§III-A guideline 5: "add
/// logging at each training step" — loss and throughput scalars averaged
/// across ranks). These tiny reductions populate the 1–128 KB profile bin
/// and, riding the host eager path, see no benefit from the IPC fix —
/// Table I row 1.
const METRICS_ELEMS: usize = 256;

/// Fraction of host-staged transfer time that *blocks* the compute stream.
/// Without CUDA IPC, MPI "must default to main memory for all GPU
/// transfers" (§III-C): the staging `cudaMemcpy`s through unpinned bounce
/// buffers synchronize with the default stream, stealing copy-engine and SM
/// time from the concurrent backward pass — the GPU cross-talk of Fig 6.
/// NVLink IPC transfers (and NCCL's kernels on their own stream) overlap.
const STAGED_BLOCKING_FRACTION: f64 = 1.0;

/// Deterministic per-(rank, step) compute jitter: a uniform draw in
/// `[0, sigma)` added to 1.0. Synchronous data parallelism waits for the
/// slowest rank each step, so with many ranks the *maximum* of these draws
/// — not the mean — sets the step time: the classic straggler tax that
/// erodes scaling efficiency.
pub fn jitter_factor(seed: u64, rank: usize, step: u64, sigma: f64) -> f64 {
    // splitmix64
    let mut z = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (step << 24);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + sigma * u
}

/// Closed-form allreduce *transport* duration estimate used for
/// fusion-group planning; per-round coordination is charged separately.
/// All ranks must derive identical plans, so the estimate — not measured,
/// rank-skewed time — drives grouping.
pub fn estimate_allreduce(
    cfg: &MpiConfig,
    backend: Backend,
    topo: &ClusterTopology,
    bytes: u64,
) -> f64 {
    let t = &cfg.transport;
    let gpn = topo.gpus_per_node;
    let n = topo.nodes;
    let p = topo.total_gpus();
    let b = bytes as f64;
    match backend {
        Backend::Nccl => {
            let bw = if n > 1 {
                t.nccl_ib.bandwidth
            } else {
                t.nvlink.bandwidth
            };
            let steps = 2.0 * (p.saturating_sub(1)) as f64;
            steps / p as f64 * b / bw + steps * 10.0e-6
        }
        Backend::Mpi => {
            let ipc =
                cfg.device_mode == DeviceMode::PinnedWithMv2 && bytes >= t.ipc_large_threshold;
            let intra_bw = if ipc {
                t.nvlink.bandwidth
            } else {
                t.staged.bandwidth
            };
            let rounds = 2.0 * (gpn as f64).log2().ceil();
            let intra = if gpn > 1 {
                rounds * (b / intra_bw + 20.0e-6)
            } else {
                0.0
            };
            let inter = if n > 1 {
                let ring = 2.0 * (n - 1) as f64 / n as f64 * b / t.ib.bandwidth
                    + 2.0 * (n - 1) as f64 * 8.0e-6;
                // each ring step pins its send and receive chunk unless the
                // registration cache holds them: 2 × 2(n−1) pins per rank
                let pins = if cfg.registration_cache {
                    0.0
                } else {
                    4.0 * (n - 1) as f64 * t.pin_time(bytes / n as u64)
                };
                ring + pins
            } else {
                0.0
            };
            intra + inter
        }
    }
}

/// Measurement window of one simulated training run on one rank.
#[derive(Debug, Clone)]
pub struct RankRun {
    /// Virtual time when the warmup steps finished.
    pub warm_end: f64,
    /// Virtual time when the measured steps finished.
    pub end: f64,
    /// This rank's allreduce profile over the measured steps.
    pub prof: Hvprof,
    /// Registration-cache statistics.
    pub reg: RegCacheStats,
    /// HOROVOD_TIMELINE-style event trace over the measured steps.
    pub timeline: Timeline,
    /// Structured trace spans from this rank's thread over the measured
    /// steps (empty unless the `dlsr-trace` collector is enabled).
    pub trace: Vec<dlsr_trace::TraceEvent>,
}

/// Costs-only distributed training driver: calibrated GPU compute +
/// dynamic-fusion Horovod synchronization over the simulated fabric.
pub struct SimTrainer {
    workload: WorkloadProfile,
    n_tensors: usize,
    batch: usize,
    scenario: Scenario,
    hcfg: HorovodConfig,
    plan: Vec<ScheduledGroup>,
    fwd: f64,
    bwd: f64,
    tail: f64,
    /// Per-step compute-stream stall caused by host-staged transfers.
    staged_blocking: f64,
    jitter_sigma: f64,
    seed: u64,
    /// Collect the per-step diagnostic artifacts (Hvprof profile,
    /// HOROVOD_TIMELINE events). On by default; the simulator-scaling
    /// benchmark turns it off — at 4096 ranks those strings are O(ranks ×
    /// steps) host memory and allocator traffic that measure nothing. The
    /// virtual clocks are identical either way.
    artifacts: bool,
}

impl SimTrainer {
    /// Plan a training run; fails with the OOM error if `batch` does not
    /// fit in device memory.
    pub fn new(
        workload: WorkloadProfile,
        tensors: Vec<TensorSpec>,
        batch: usize,
        scenario: Scenario,
        topo: &ClusterTopology,
        seed: u64,
    ) -> Result<Self, MemoryError> {
        let hcfg = HorovodConfig::builder()
            .backend(scenario.backend())
            .cycle_time(TUNED_CYCLE_TIME)
            .fusion_threshold(TUNED_FUSION_THRESHOLD)
            .build();
        Self::with_horovod_config(workload, tensors, batch, scenario, topo, seed, hcfg)
    }

    /// Like [`SimTrainer::new`] but with explicit Horovod tuning knobs —
    /// used by the fusion-threshold / cycle-time ablation harnesses that
    /// back the paper's "carefully tuned at each scale" statement (§II-D).
    pub fn with_horovod_config(
        workload: WorkloadProfile,
        tensors: Vec<TensorSpec>,
        batch: usize,
        scenario: Scenario,
        topo: &ClusterTopology,
        seed: u64,
        hcfg: HorovodConfig,
    ) -> Result<Self, MemoryError> {
        let cost = KernelCostModel::new(GpuSpec::v100());
        // allocate the training footprint on a simulated device so the OOM
        // path is the device's own, not just arithmetic
        let mut gpu = dlsr_gpu::Gpu::new(dlsr_gpu::GpuId { node: 0, local: 0 }, GpuSpec::v100());
        gpu.reserve(cost.memory_required(&workload, batch, scenario.context_count()))?;
        let step = cost.train_step_time(&workload, batch, scenario.context_count())?;
        let fwd = step.compute_s / 3.0;
        let bwd = step.compute_s * 2.0 / 3.0;
        let tail = step.launch_s + step.framework_s;
        let world = topo.total_gpus();
        let hcfg = hcfg.to_builder().backend(scenario.backend()).build();
        let readiness = readiness_from_elems(&tensors, bwd);
        let mpi_cfg = scenario.mpi_config();
        let backend = scenario.backend();
        let est = move |bytes: u64| estimate_allreduce(&mpi_cfg, backend, topo, bytes);
        let plan = if world > 1 {
            plan_dynamic(
                &tensors,
                &readiness,
                hcfg.cycle_time,
                hcfg.fusion_threshold,
                coordination_cost(world),
                &est,
            )
        } else {
            Vec::new()
        };
        // compute-stream stall from host-staged intra-node phases
        let mpi_cfg2 = scenario.mpi_config();
        let t = &mpi_cfg2.transport;
        let rounds = 2.0 * (topo.gpus_per_node as f64).log2().ceil();
        let staged_blocking = if scenario.backend() == Backend::Mpi && topo.gpus_per_node > 1 {
            plan.iter()
                .map(|sg| {
                    let ipc = mpi_cfg2.device_mode == DeviceMode::PinnedWithMv2
                        && sg.group.bytes >= t.ipc_large_threshold;
                    if ipc {
                        0.0
                    } else {
                        STAGED_BLOCKING_FRACTION * rounds * sg.group.bytes as f64
                            / t.staged.bandwidth
                    }
                })
                .sum()
        } else {
            0.0
        };
        Ok(SimTrainer {
            workload,
            n_tensors: tensors.len(),
            batch,
            scenario,
            hcfg,
            plan,
            fwd,
            bwd,
            tail,
            staged_blocking,
            jitter_sigma: 0.02,
            seed,
            artifacts: true,
        })
    }

    /// Override the straggler-jitter amplitude (default 2 %).
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    /// Turn per-step diagnostic artifacts (profile + timeline) on or off.
    /// Timing — virtual and, at large worlds, mostly host wall too — is
    /// unaffected; the returned [`RankRun`]s just carry empty artifacts.
    pub fn with_artifacts(mut self, on: bool) -> Self {
        self.artifacts = on;
        self
    }

    /// The fusion schedule (for inspection/tests).
    pub fn plan(&self) -> &[ScheduledGroup] {
        &self.plan
    }

    /// The scenario this trainer was planned for.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Per-GPU batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The workload being trained.
    pub fn workload(&self) -> &WorkloadProfile {
        &self.workload
    }

    /// Run `warmup + steps` training steps; the profile and timeline cover
    /// only the measured window. Blocking form of [`SimTrainer::program`],
    /// driven in place — context cores and the driven engine execute the
    /// identical state machine.
    pub fn run(&self, comm: &mut Comm, warmup: usize, steps: usize) -> RankRun {
        drive_program(comm, self.program(warmup, steps))
    }

    /// This rank's run as a resumable [`RankProgram`] for
    /// [`dlsr_mpi::MpiWorld::run_driven`].
    pub fn program(&self, warmup: usize, steps: usize) -> SimProgram<'_> {
        SimProgram {
            trainer: self,
            warmup,
            steps,
            step_idx: 0,
            phase: SimPhase::StepStart,
            warm_marked: false,
            warm_end: 0.0,
            prof: Hvprof::new(),
            tl: Timeline::new(),
            t0: 0.0,
            jit: 1.0,
            bwd_start: 0.0,
            ts: 0.0,
            gi: 0,
        }
    }
}

/// Resume point within one training step.
enum SimPhase {
    StepStart,
    AfterNegotiate,
    GroupLaunch,
    AfterGroup,
    Backward,
    AfterBarrier,
    AfterMetrics,
    StepTail,
}

/// One rank's training run as a resumable [`RankProgram`]: synchronous
/// compute segments happen in `next`, every communication round is yielded
/// as a task the engine can park mid-flight. [`SimTrainer::run`] drives
/// this same machine on the context cores, so the two paths cannot drift.
pub struct SimProgram<'a> {
    trainer: &'a SimTrainer,
    warmup: usize,
    steps: usize,
    step_idx: u64,
    phase: SimPhase,
    warm_marked: bool,
    warm_end: f64,
    prof: Hvprof,
    tl: Timeline,
    t0: f64,
    jit: f64,
    bwd_start: f64,
    ts: f64,
    gi: usize,
}

impl RankProgram for SimProgram<'_> {
    type Out = RankRun;

    fn next(&mut self, comm: &mut Comm) -> Step {
        let tr = self.trainer;
        loop {
            match self.phase {
                SimPhase::StepStart => {
                    if !self.warm_marked && self.step_idx as usize == self.warmup {
                        // Warmup boundary: drop warmup spans so the trace
                        // covers only the measured window (mirrors the
                        // prof/timeline reset).
                        self.warm_marked = true;
                        self.warm_end = comm.now();
                        self.prof = Hvprof::new();
                        self.tl = Timeline::new();
                        return Step::DiscardTrace;
                    }
                    if self.step_idx as usize == self.warmup + self.steps {
                        return Step::Done;
                    }
                    let rank = comm.rank();
                    let step_idx = self.step_idx;
                    self.t0 = comm.now();
                    let jit = jitter_factor(tr.seed, rank, step_idx, tr.jitter_sigma);
                    // A straggler rank from the fault plan runs all its
                    // compute slower by a fixed multiplier, on top of the
                    // per-step jitter.
                    #[cfg(feature = "faults")]
                    let jit = jit
                        * comm
                            .config()
                            .fault_plan
                            .as_ref()
                            .map(|p| p.compute_multiplier(rank))
                            .unwrap_or(1.0);
                    self.jit = jit;
                    self.bwd_start = self.t0 + tr.fwd * jit;
                    comm.advance_to(self.bwd_start);
                    if tr.artifacts {
                        self.tl.record(
                            format!("fwd[{step_idx}]"),
                            "compute",
                            rank,
                            self.t0,
                            self.bwd_start,
                        );
                    }
                    dlsr_trace::record_span(
                        move || format!("fwd[{step_idx}]"),
                        dlsr_trace::cat::COMPUTE,
                        self.t0,
                        self.bwd_start,
                    );
                    if comm.size() > 1 {
                        // Per-group coordination cost is embedded in the
                        // plan's launch offsets (see `coordination_cost`);
                        // the executed negotiation here carries the real
                        // control messages once per step.
                        self.ts = comm.now();
                        self.phase = SimPhase::AfterNegotiate;
                        return Step::Task(Task::custom(NegotiateTask::new(
                            tr.n_tensors,
                            step_idx,
                            COORDINATOR_REPORT_COST,
                        )));
                    }
                    self.phase = SimPhase::Backward;
                }
                SimPhase::AfterNegotiate => {
                    if tr.artifacts {
                        self.tl.record(
                            format!("negotiate[{}]", self.step_idx),
                            "negotiate",
                            comm.rank(),
                            self.ts,
                            comm.now(),
                        );
                    }
                    self.gi = 0;
                    self.phase = SimPhase::GroupLaunch;
                }
                SimPhase::GroupLaunch => {
                    let Some(sg) = tr.plan.get(self.gi) else {
                        self.phase = SimPhase::Backward;
                        continue;
                    };
                    dlsr_trace::counter_add(dlsr_trace::report::keys::FUSION_GROUPS, 1.0);
                    dlsr_trace::counter_add(
                        dlsr_trace::report::keys::FUSION_PACKED_BYTES,
                        sg.group.bytes as f64,
                    );
                    dlsr_trace::counter_add(
                        dlsr_trace::report::keys::FUSION_CAPACITY_BYTES,
                        sg.group.bytes.max(tr.hcfg.fusion_threshold) as f64,
                    );
                    comm.advance_to(self.bwd_start + sg.launch_offset * self.jit);
                    self.ts = comm.now();
                    let buf_id = FUSION_BUF_ID_BASE + self.gi as u64;
                    let algo = match tr.hcfg.backend {
                        Backend::Mpi => comm.config().allreduce,
                        Backend::Nccl => {
                            comm.set_path_policy(PathPolicy::NcclLike);
                            AllreduceAlgorithm::Ring
                        }
                    };
                    self.phase = SimPhase::AfterGroup;
                    return Step::Task(
                        AllreduceElemsTask::new(sg.group.elems, buf_id, algo).into(),
                    );
                }
                SimPhase::AfterGroup => {
                    if tr.hcfg.backend == Backend::Nccl {
                        comm.set_path_policy(PathPolicy::Mpi);
                    }
                    let sg = &tr.plan[self.gi];
                    let (step_idx, gi, bytes) = (self.step_idx, self.gi, sg.group.bytes);
                    if tr.artifacts {
                        self.prof
                            .record(Collective::Allreduce, bytes, comm.now() - self.ts);
                        self.tl.record(
                            format!("allreduce[{step_idx}.{gi}] {}MB", bytes >> 20),
                            "allreduce",
                            comm.rank(),
                            self.ts,
                            comm.now(),
                        );
                    }
                    dlsr_trace::record_span(
                        move || format!("allreduce[{step_idx}.{gi}] {bytes}B"),
                        dlsr_trace::cat::ALLREDUCE,
                        self.ts,
                        comm.now(),
                    );
                    self.gi += 1;
                    self.phase = SimPhase::GroupLaunch;
                }
                SimPhase::Backward => {
                    // backward must have finished before the optimizer
                    // step; staged transfers stall the compute stream,
                    // stretching it (Fig 6)
                    let step_idx = self.step_idx;
                    let bwd_end = self.t0 + (tr.fwd + tr.bwd) * self.jit + tr.staged_blocking;
                    comm.advance_to(bwd_end);
                    if tr.artifacts {
                        self.tl.record(
                            format!("bwd[{step_idx}]"),
                            "compute",
                            comm.rank(),
                            self.bwd_start,
                            bwd_end,
                        );
                    }
                    dlsr_trace::record_span(
                        move || format!("bwd[{step_idx}]"),
                        dlsr_trace::cat::COMPUTE,
                        self.bwd_start,
                        bwd_end,
                    );
                    if comm.size() > 1 {
                        // per-step metric logging (§III-A guideline 5):
                        // tiny allreduce of loss/throughput scalars — the
                        // 1–128 KB bin of Table I. Logging happens at a
                        // synchronized point (after the optimizer step), so
                        // the straggler wait lands in the barrier and the
                        // recorded allreduce time is pure transport — which
                        // is why this bin shows no IPC benefit (Table I
                        // row 1).
                        self.phase = SimPhase::AfterBarrier;
                        return Step::Task(BarrierTask::new().into());
                    }
                    self.phase = SimPhase::StepTail;
                }
                SimPhase::AfterBarrier => {
                    self.ts = comm.now();
                    self.phase = SimPhase::AfterMetrics;
                    return Step::Task(
                        AllreduceElemsTask::new(
                            METRICS_ELEMS,
                            FUSION_BUF_ID_BASE - 2,
                            comm.config().allreduce,
                        )
                        .into(),
                    );
                }
                SimPhase::AfterMetrics => {
                    let step_idx = self.step_idx;
                    if tr.artifacts {
                        self.prof.record(
                            Collective::Allreduce,
                            (METRICS_ELEMS * 4) as u64,
                            comm.now() - self.ts,
                        );
                        self.tl.record(
                            format!("metrics[{step_idx}]"),
                            "allreduce",
                            comm.rank(),
                            self.ts,
                            comm.now(),
                        );
                    }
                    dlsr_trace::record_span(
                        move || format!("metrics[{step_idx}]"),
                        dlsr_trace::cat::ALLREDUCE,
                        self.ts,
                        comm.now(),
                    );
                    self.phase = SimPhase::StepTail;
                }
                SimPhase::StepTail => {
                    comm.advance(tr.tail);
                    self.step_idx += 1;
                    self.phase = SimPhase::StepStart;
                }
            }
        }
    }

    fn finish(&mut self, comm: &mut Comm, trace: Vec<dlsr_trace::TraceEvent>) -> RankRun {
        RankRun {
            warm_end: self.warm_end,
            end: comm.now(),
            prof: std::mem::replace(&mut self.prof, Hvprof::new()),
            reg: comm.regcache_stats(),
            timeline: std::mem::replace(&mut self.tl, Timeline::new()),
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::edsr_measured_workload;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = jitter_factor(1, 3, 7, 0.05);
        let b = jitter_factor(1, 3, 7, 0.05);
        assert_eq!(a, b);
        for rank in 0..100 {
            let j = jitter_factor(1, rank, 0, 0.05);
            assert!((1.0..1.05).contains(&j), "jitter {j}");
        }
    }

    #[test]
    fn estimate_prefers_ipc_for_large_messages() {
        let topo = ClusterTopology::lassen(1);
        let big = 32 << 20;
        let t_def = estimate_allreduce(&MpiConfig::default_mpi(), Backend::Mpi, &topo, big);
        let t_opt = estimate_allreduce(&MpiConfig::mpi_opt(), Backend::Mpi, &topo, big);
        assert!(t_opt < t_def);
        // below the IPC threshold the estimates coincide
        let small = 1 << 20;
        let s_def = estimate_allreduce(&MpiConfig::default_mpi(), Backend::Mpi, &topo, small);
        let s_opt = estimate_allreduce(&MpiConfig::mpi_opt(), Backend::Mpi, &topo, small);
        assert_eq!(s_def, s_opt);
    }

    #[test]
    fn plan_produces_multiple_bins_for_the_measured_workload() {
        // The Table I mechanism: the dynamic engine must emit both small
        // (early, lone tensors) and large (accumulated) fused messages.
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(1);
        let trainer = SimTrainer::new(w, tensors, 4, Scenario::MpiDefault, &topo, 1).unwrap();
        let sizes: Vec<u64> = trainer.plan().iter().map(|g| g.group.bytes).collect();
        assert!(!sizes.is_empty());
        let mid = sizes
            .iter()
            .filter(|&&b| ((128 << 10)..(16 << 20)).contains(&b))
            .count();
        let bin16 = sizes
            .iter()
            .filter(|&&b| ((16 << 20)..(32u64 << 20)).contains(&b))
            .count();
        let bin32 = sizes
            .iter()
            .filter(|&&b| ((32u64 << 20)..(64 << 20)).contains(&b))
            .count();
        assert!(mid > 0, "no 128KB-16MB messages: {sizes:?}");
        assert!(bin16 > 0, "no 16-32MB messages: {sizes:?}");
        assert!(bin32 > 0, "no 32-64MB messages: {sizes:?}");
        assert!(
            bin32 >= bin16,
            "32-64MB should dominate as in Table I: {sizes:?}"
        );
        let total: u64 = sizes.iter().sum();
        assert_eq!(total, trainer.workload().grad_bytes() as u64);
        // the 1-128KB bin traffic comes from the per-step metrics allreduce
        // (exercised in the experiment tests)
    }

    #[test]
    fn oversize_batch_is_oom() {
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(1);
        assert!(SimTrainer::new(w, tensors, 64, Scenario::MpiOpt, &topo, 1).is_err());
    }
}
