//! Simulator-scaling benchmark: how fast (host wall-clock) the execution
//! cores push the paper-scale costs-only workload through 64–4096 virtual
//! ranks, behind `dlsr simscale`.
//!
//! Two families of numbers live in a [`SimScaleReport`], with different
//! portability:
//!
//! - **virtual** quantities (`virtual_step_s`, `efficiency`) are on the
//!   simulated clock. They are bitwise machine-independent, so a committed
//!   report is a CI regression baseline for them ([`gate`]).
//! - **wall** quantities (`wall_s`, `rank_steps_per_s`,
//!   `speedup_vs_threaded`) measure the simulator itself on the host that
//!   ran it. They are never gated against a committed file; `dlsr simscale
//!   --check` asserts the absolute criteria (512-rank step under a wall
//!   bound, driven-vs-threaded speedup) on the machine at hand.

use std::time::Instant;

use dlsr_attr as dlsr;
use dlsr_mpi::SimCore;
use dlsr_net::ClusterTopology;
use serde::{Deserialize, Serialize};

use crate::experiment::run_world;
use crate::scenario::Scenario;
use crate::sim::SimTrainer;
use crate::workload::edsr_measured_workload;

/// Default node sweep: 64 → 512 ranks on 4-GPU Lassen nodes (Figs 12/13).
pub const DEFAULT_NODES: [usize; 4] = [16, 32, 64, 128];

/// One measured world size on one execution core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScalePoint {
    /// Total ranks (nodes × 4).
    pub world: usize,
    pub nodes: usize,
    /// Mean virtual step time over the measured window, seconds
    /// (machine-independent; identical across cores by the equivalence
    /// suite).
    pub virtual_step_s: f64,
    /// Weak-scaling efficiency vs. the single-rank virtual step time.
    pub efficiency: f64,
    /// Host wall-clock of the whole run, seconds (machine-dependent).
    pub wall_s: f64,
    /// Simulator throughput: `world × (warmup + steps) / wall_s`.
    pub rank_steps_per_s: f64,
}

/// Everything `dlsr simscale` writes to `results/BENCH_simscale.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimScaleReport {
    pub scenario: String,
    pub batch: usize,
    pub warmup: usize,
    pub steps: usize,
    /// The default (event-driven) core across the node sweep.
    pub event: Vec<SimScalePoint>,
    /// Thread-per-rank baseline at the smallest sweep world.
    pub threaded: Option<SimScalePoint>,
    /// Driven-over-threaded `rank_steps_per_s` ratio at the baseline
    /// world. Wall-clock: comparable only within one report.
    pub speedup_vs_threaded: Option<f64>,
    /// Large-world smoke point (4096 ranks), when requested.
    #[serde(default)]
    pub smoke: Option<SimScalePoint>,
}

impl SimScaleReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SimScaleReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad simscale JSON: {e:?}"))
    }
}

/// Run the paper-scale EDSR workload on `nodes` Lassen nodes on the given
/// core and measure it. `t1_step` is the single-rank virtual step time
/// (from [`single_rank_step_s`]) the efficiency is normalized against.
/// The wall measurement is best-of-`repeats` (virtual quantities are
/// bitwise identical across repeats, so only the wall numbers differ):
/// single-shot walls on a busy host are dominated by scheduler noise.
#[allow(clippy::too_many_arguments)]
pub fn measure_point(
    nodes: usize,
    sc: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
    core: SimCore,
    t1_step: f64,
    repeats: usize,
) -> SimScalePoint {
    let (topo, trainer) = setup(nodes, sc, batch, seed);
    let (wall_s, res) = time_core(&topo, &trainer, sc, core, warmup, steps, repeats);
    point_from(&topo, nodes, &res, wall_s, warmup, steps, t1_step)
}

/// Measure the driven-vs-threaded pair at one world size with
/// *interleaved* repeats: the cores alternate run by run and each wall is
/// the best of its `pairs` runs. On a busy host, scheduler noise varies on
/// the hundreds-of-milliseconds scale — interleaving makes both cores
/// sample the same noise environment, so their ratio (the speedup
/// criterion `dlsr simscale --check` asserts) is far more stable than two
/// independently-timed measurements taken at different moments.
#[allow(clippy::too_many_arguments)]
pub fn measure_speedup_pair(
    nodes: usize,
    sc: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
    t1_step: f64,
    pairs: usize,
) -> (SimScalePoint, SimScalePoint) {
    let (topo, trainer) = setup(nodes, sc, batch, seed);
    let mut best = [f64::INFINITY; 2];
    let mut results = [None, None];
    for _ in 0..pairs.max(1) {
        for (i, core) in [SimCore::Event, SimCore::Threaded].into_iter().enumerate() {
            // A driven run at this world size finishes in single-digit
            // milliseconds — far below the host's scheduling-noise scale —
            // so its best-of needs many inner repeats to touch the true
            // floor. They cost ~1 ms each; the threaded run costs hundreds
            // of milliseconds and gets one per pair.
            let reps = match core {
                SimCore::Event => 16,
                SimCore::Threaded => 1,
            };
            let (wall, res) = time_core(&topo, &trainer, sc, core, warmup, steps, reps);
            best[i] = best[i].min(wall);
            results[i] = Some(res);
        }
    }
    let ev = point_from(
        &topo,
        nodes,
        results[0].as_ref().expect("event ran"),
        best[0],
        warmup,
        steps,
        t1_step,
    );
    let th = point_from(
        &topo,
        nodes,
        results[1].as_ref().expect("threaded ran"),
        best[1],
        warmup,
        steps,
        t1_step,
    );
    (ev, th)
}

/// Build the Lassen-shaped world and the artifacts-off trainer every
/// simscale measurement runs.
fn setup(nodes: usize, sc: Scenario, batch: usize, seed: u64) -> (ClusterTopology, SimTrainer) {
    let (w, tensors) = edsr_measured_workload();
    // Lassen-shaped nodes (4 V100s, NVLink + IB EDR); worlds beyond the
    // real machine's 792 nodes (the 4096-rank smoke) keep the same shape.
    let topo = if nodes <= 792 {
        ClusterTopology::lassen(nodes)
    } else {
        ClusterTopology {
            name: format!("lassen-xl-{nodes}"),
            nodes,
            gpus_per_node: 4,
        }
    };
    // Artifacts off: per-step profile/timeline strings are O(world × steps)
    // allocator traffic that would distort — and at 4096 ranks dominate —
    // what this benchmark measures. Virtual clocks are unaffected, and
    // both cores run identically instrumented.
    let trainer = SimTrainer::new(w, tensors, batch, sc, &topo, seed)
        .expect("per-GPU batch must fit")
        .with_artifacts(false);
    (topo, trainer)
}

/// Best-of-`repeats` wall for one core (virtual quantities are bitwise
/// identical across repeats, so only the wall differs). Wall-domain
/// boundary: simscale's product IS host wall time — it benchmarks the
/// simulator itself and never feeds rank-visible state.
#[dlsr::wall]
fn time_core(
    topo: &ClusterTopology,
    trainer: &SimTrainer,
    sc: Scenario,
    core: SimCore,
    warmup: usize,
    steps: usize,
    repeats: usize,
) -> (f64, dlsr_mpi::WorldResult<crate::sim::RankRun>) {
    let cfg = sc.mpi_config().to_builder().sim_core(core).build();
    let mut wall_s = f64::INFINITY;
    let mut res = None;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let r = run_world(topo, cfg.clone(), trainer, warmup, steps);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
        res = Some(r);
    }
    (wall_s, res.expect("at least one repeat ran"))
}

fn point_from(
    topo: &ClusterTopology,
    nodes: usize,
    res: &dlsr_mpi::WorldResult<crate::sim::RankRun>,
    wall_s: f64,
    warmup: usize,
    steps: usize,
    t1_step: f64,
) -> SimScalePoint {
    let warm_end = res.ranks.iter().map(|r| r.warm_end).fold(0.0, f64::max);
    let end = res.ranks.iter().map(|r| r.end).fold(0.0, f64::max);
    let virtual_step_s = (end - warm_end) / steps.max(1) as f64;
    let world = topo.total_gpus();
    SimScalePoint {
        world,
        nodes,
        virtual_step_s,
        efficiency: if virtual_step_s > 0.0 {
            t1_step / virtual_step_s
        } else {
            0.0
        },
        wall_s,
        rank_steps_per_s: (world * (warmup + steps)) as f64 / wall_s.max(1e-9),
    }
}

/// The single-rank (comm-free) virtual step time: the weak-scaling
/// efficiency denominator.
pub fn single_rank_step_s(
    sc: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> f64 {
    let (w, tensors) = edsr_measured_workload();
    let topo = ClusterTopology {
        name: "simscale-1x1".into(),
        nodes: 1,
        gpus_per_node: 1,
    };
    let trainer =
        SimTrainer::new(w, tensors, batch, sc, &topo, seed).expect("single-GPU batch must fit");
    let res = run_world(&topo, sc.mpi_config(), &trainer, warmup, steps);
    let r = &res.ranks[0];
    (r.end - r.warm_end) / steps.max(1) as f64
}

/// Compare a fresh report against a committed baseline. Only the
/// machine-independent virtual quantities are gated, and only in the
/// *worse* direction: slower virtual steps or lower efficiency beyond
/// `tol_pct` percent trip; wall-clock never does.
pub fn gate(current: &SimScaleReport, baseline: &SimScaleReport, tol_pct: f64) -> Vec<String> {
    let tol = tol_pct / 100.0;
    let mut violations = Vec::new();
    for base in &baseline.event {
        let Some(cur) = current.event.iter().find(|p| p.world == base.world) else {
            violations.push(format!(
                "world {} present in the baseline but missing from the sweep",
                base.world
            ));
            continue;
        };
        if base.virtual_step_s > 0.0 && cur.virtual_step_s > base.virtual_step_s * (1.0 + tol) {
            violations.push(format!(
                "virtual step at {} ranks regressed: {:.3} ms vs baseline {:.3} ms (tol {tol_pct}%)",
                base.world,
                cur.virtual_step_s * 1e3,
                base.virtual_step_s * 1e3,
            ));
        }
        if base.efficiency > 0.0 && cur.efficiency < base.efficiency * (1.0 - tol) {
            violations.push(format!(
                "efficiency at {} ranks regressed: {:.1}% vs baseline {:.1}% (tol {tol_pct}%)",
                base.world,
                cur.efficiency * 100.0,
                base.efficiency * 100.0,
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_point(nodes: usize, core: SimCore) -> SimScalePoint {
        let t1 = single_rank_step_s(Scenario::MpiOpt, 4, 1, 3, 7);
        measure_point(nodes, Scenario::MpiOpt, 4, 1, 3, 7, core, t1, 1)
    }

    #[test]
    fn cores_agree_on_virtual_time_bitwise() {
        // The headline simscale quantity must not depend on which core
        // produced it — same worlds, same virtual clocks, to the bit.
        for nodes in [1, 2] {
            let ev = quick_point(nodes, SimCore::Event);
            let th = quick_point(nodes, SimCore::Threaded);
            assert_eq!(
                ev.virtual_step_s.to_bits(),
                th.virtual_step_s.to_bits(),
                "cores disagree at {nodes} nodes: {} vs {}",
                ev.virtual_step_s,
                th.virtual_step_s
            );
            assert!(ev.efficiency > 0.3 && ev.efficiency <= 1.001, "{ev:?}");
        }
    }

    #[test]
    fn gate_trips_on_virtual_regressions_only() {
        let p = quick_point(1, SimCore::Event);
        let report = SimScaleReport {
            scenario: "MPI-Opt".into(),
            batch: 4,
            warmup: 1,
            steps: 3,
            event: vec![p.clone()],
            threaded: None,
            speedup_vs_threaded: None,
            smoke: None,
        };
        assert!(gate(&report, &report, 10.0).is_empty());
        // Wall-clock differences never trip.
        let mut slow_wall = report.clone();
        slow_wall.event[0].wall_s *= 100.0;
        slow_wall.event[0].rank_steps_per_s /= 100.0;
        assert!(gate(&slow_wall, &report, 10.0).is_empty());
        // A slower virtual step does.
        let mut regressed = report.clone();
        regressed.event[0].virtual_step_s *= 1.5;
        let v = gate(&regressed, &report, 10.0);
        assert!(
            v.iter().any(|m| m.contains("virtual step")),
            "expected a virtual-step violation, got {v:?}"
        );
        // A missing world does.
        let empty = SimScaleReport {
            event: Vec::new(),
            ..report.clone()
        };
        assert!(!gate(&empty, &report, 10.0).is_empty());
        // JSON round-trip (the committed-baseline format).
        let back = SimScaleReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
