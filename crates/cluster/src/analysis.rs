//! Scaling-efficiency projection and the bench regression gate behind
//! `dlsr analyze`.
//!
//! The paper's Figs 12/13 ask one question of a measured profile: *what
//! happens to step time as the world grows?* This module answers it by
//! fitting a small closed-form cost model to a traced small-world
//! training run and extrapolating along the collectives' algorithmic
//! scaling laws:
//!
//! - **base** — critical-path kernel compute plus checkpoint/fault cost
//!   per step. Constant under weak scaling (fixed local batch).
//! - **coordination** — the Horovod negotiate round. Rank 0 absorbs one
//!   readiness report per peer, so the round grows linearly in
//!   `world − 1` ([`dlsr_horovod::coordinator`]).
//! - **communication** — each fusion group's allreduce, scaled by the
//!   round count of the algorithm [`dlsr_mpi::MpiConfig::select_allreduce`]
//!   picks for its payload: `log2(p)` for recursive doubling, `2(p−1)` rounds
//!   (latency regime) or `2(p−1)/p` payload factors (bandwidth regime)
//!   for ring-family algorithms.
//! - **overlap capacity** — the comm seconds the fit-world run hid under
//!   backward compute. Projection assumes the engine keeps hiding the
//!   same absolute capacity; only the remainder is exposed.
//!
//! All fitted quantities live on the **virtual** clock, so a committed
//! [`AnalysisReport`] is machine-independent and can serve as a CI
//! regression baseline ([`gate`]).

use std::collections::BTreeMap;

use dlsr_mpi::AllreduceAlgorithm;
use dlsr_net::ClusterTopology;
use dlsr_trace::analyze::{collective_profiles, critical_path, Attribution, CritPath};
use dlsr_trace::TraceEvent;
use serde::{Deserialize, Serialize};

use crate::realtrain::{train_real, RealTrainConfig};
use crate::scenario::Scenario;

/// One traced real-training run: everything the fit needs.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// Ranks in the run.
    pub world: usize,
    /// Optimizer steps.
    pub steps: usize,
    /// Virtual makespan, seconds.
    pub makespan: f64,
    /// Recorded spans (virtual + wall).
    pub trace: Vec<TraceEvent>,
    /// Counter snapshot at the end of the run.
    pub counters: BTreeMap<String, f64>,
}

/// Run real EDSR(tiny) training on `topo` with tracing on and collect
/// the spans. Weak scaling: one image per rank per step, matching
/// `dlsr profile`. Resets the global trace state.
pub fn traced_real_run(
    topo: &ClusterTopology,
    sc: Scenario,
    steps: usize,
    checkpoint_every: usize,
) -> TracedRun {
    let world = topo.total_gpus();
    let cfg = RealTrainConfig::builder()
        .steps(steps)
        .global_batch(world)
        .checkpoint_every(checkpoint_every)
        .build();
    dlsr_trace::set_enabled(true);
    dlsr_trace::reset();
    let res = train_real(topo, sc.mpi_config(), &cfg);
    dlsr_trace::set_enabled(false);
    let counters = dlsr_trace::counters_snapshot();
    TracedRun {
        world,
        steps,
        makespan: res.makespan,
        trace: res.trace,
        counters,
    }
}

/// Per-fusion-group communication term of the fitted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupCost {
    /// Collective span name (`allreduce[g0] 8192B`).
    pub name: String,
    /// Payload bytes.
    pub bytes: u64,
    /// Mean invocations per step (per rank).
    pub calls_per_step: f64,
    /// Mean measured duration at the fit world, seconds.
    pub mean_s: f64,
    /// Algorithm the size-binned selector picks for this payload, with
    /// the wire format suffixed when lossy (`"PipelinedRing+bf16"`) —
    /// wire compression is a constant factor at every world size, so it
    /// cancels in the scaling ratio but is recorded for the report.
    pub algo: String,
}

/// Closed-form step-time model fitted from one small-world trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Scenario label the trace was recorded under.
    pub scenario: String,
    /// World size of the fit run.
    pub fit_world: usize,
    /// Images per rank per step (weak scaling holds this fixed).
    pub local_batch: usize,
    /// Compute + checkpoint + fault seconds per step (world-invariant).
    pub base_s: f64,
    /// Negotiate seconds per step at the fit world.
    pub negotiate_s: f64,
    /// Straggler wait per step not explained by negotiate (kept
    /// constant — it is collective entry skew, not a scaling term).
    pub wait_resid_s: f64,
    /// Total per-step communication at the fit world (hidden + exposed).
    pub comm_total_s: f64,
    /// Comm seconds per step the fit run hid under backward compute.
    pub hidden_s: f64,
    /// Per-group communication terms.
    pub groups: Vec<GroupCost>,
}

/// Round/payload scaling factor of an allreduce algorithm at world `p`.
/// Relative use only: predictions divide out the factor at the fit
/// world, so constant per-round costs cancel.
fn algo_scale(algo: AllreduceAlgorithm, bytes: u64, p: usize) -> f64 {
    // Below this payload a round is latency-bound and cost tracks the
    // *round count*; above it the payload-bytes-on-the-wire factor
    // dominates (ring moves 2(p−1)/p of the buffer per rank).
    const LATENCY_BOUND_BYTES: u64 = 64 << 10;
    let pf = p as f64;
    let ring = || {
        if bytes <= LATENCY_BOUND_BYTES {
            2.0 * (pf - 1.0)
        } else {
            2.0 * (pf - 1.0) / pf
        }
    };
    match algo {
        AllreduceAlgorithm::RecursiveDoubling => {
            // Non-power-of-two worlds fall back to ring inside the
            // collective, mirroring the implementation.
            if p.is_power_of_two() {
                pf.log2().max(1.0)
            } else {
                ring()
            }
        }
        _ => ring(),
    }
}

/// Fit the cost model from a traced run. Also returns the critical-path
/// analysis of the same trace (callers print and attach it).
pub fn fit_model(run: &TracedRun, sc: Scenario) -> (CostModel, CritPath) {
    let cp = critical_path(&run.trace, run.steps);
    let steps = run.steps.max(1) as f64;
    let per_step = |x: f64| x / steps;
    let a = &cp.total;

    let mpi_cfg = sc.mpi_config();
    let mut groups = Vec::new();
    let mut comm_total = 0.0;
    let mut negotiate_s = 0.0;
    for row in collective_profiles(&run.trace) {
        if row.name.starts_with("negotiate") {
            negotiate_s += row.calls as f64 * row.mean_s / steps;
        } else {
            let calls_per_step = row.calls as f64 / steps;
            comm_total += calls_per_step * row.mean_s;
            let algo = mpi_cfg.select_allreduce(row.bytes);
            let wf = mpi_cfg.tuning.select_wire(row.bytes);
            groups.push(GroupCost {
                algo: if wf.is_f32() {
                    format!("{algo:?}")
                } else {
                    format!("{algo:?}+{wf}")
                },
                name: row.name,
                bytes: row.bytes,
                calls_per_step,
                mean_s: row.mean_s,
            });
        }
    }

    let model = CostModel {
        scenario: sc.label().to_string(),
        fit_world: run.world,
        local_batch: 1,
        base_s: per_step(a.compute_s + a.checkpoint_s + a.fault_s),
        negotiate_s,
        wait_resid_s: (per_step(a.straggler_wait_s) - negotiate_s).max(0.0),
        comm_total_s: comm_total,
        hidden_s: (comm_total - per_step(a.exposed_comm_s)).max(0.0),
        groups,
    };
    (model, cp)
}

impl CostModel {
    /// Predicted step time at world `p`, seconds.
    pub fn predict_step_s(&self, p: usize) -> f64 {
        let fit = self.fit_world.max(2);
        let negotiate = self.negotiate_s * (p.saturating_sub(1)) as f64 / (fit - 1) as f64;
        let mut comm = 0.0;
        for g in &self.groups {
            // Strip any `+wire` suffix: compression scales the payload by
            // the same factor at every world, so it cancels in the ratio.
            let algo: AllreduceAlgorithm = match g.algo.split('+').next().unwrap_or("") {
                "Ring" => AllreduceAlgorithm::Ring,
                "RecursiveDoubling" => AllreduceAlgorithm::RecursiveDoubling,
                "PipelinedRing" => AllreduceAlgorithm::PipelinedRing,
                _ => AllreduceAlgorithm::TwoLevel,
            };
            let scale = algo_scale(algo, g.bytes, p) / algo_scale(algo, g.bytes, fit);
            comm += g.calls_per_step * g.mean_s * scale;
        }
        let exposed = (comm - self.hidden_s).max(0.0);
        self.base_s + self.wait_resid_s + negotiate + exposed
    }

    /// Predicted weak-scaling throughput (images/s) at world `p`.
    pub fn predict_images_per_sec(&self, p: usize) -> f64 {
        p as f64 * self.local_batch as f64 / self.predict_step_s(p)
    }

    /// Predicted scaling efficiency at world `p`: throughput over the
    /// ideal `p ×` extrapolation of the comm-free single-rank step.
    pub fn predict_efficiency(&self, p: usize) -> f64 {
        if self.base_s <= 0.0 {
            return 0.0;
        }
        self.base_s / self.predict_step_s(p)
    }
}

/// Model-vs-measurement comparison at one world size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    pub world: usize,
    /// Model-predicted step time, seconds.
    pub predicted_step_s: f64,
    /// Measured (virtual) step time of an actual run, seconds.
    pub actual_step_s: f64,
    /// `|predicted − actual| / actual`.
    pub rel_err: f64,
}

/// Projected operating point at one world size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionPoint {
    pub world: usize,
    pub step_s: f64,
    pub images_per_sec: f64,
    pub efficiency: f64,
}

/// Validate the fitted model against actual runs at `worlds` (single
/// node, matching the fit run's transport domain).
pub fn validate(
    model: &CostModel,
    sc: Scenario,
    steps: usize,
    worlds: &[usize],
) -> Vec<ValidationPoint> {
    worlds
        .iter()
        .map(|&w| {
            let topo = ClusterTopology {
                name: format!("validate-1x{w}"),
                nodes: 1,
                gpus_per_node: w,
            };
            let run = traced_real_run(&topo, sc, steps, 0);
            let actual = run.makespan / steps.max(1) as f64;
            let predicted = model.predict_step_s(w);
            ValidationPoint {
                world: w,
                predicted_step_s: predicted,
                actual_step_s: actual,
                rel_err: if actual > 0.0 {
                    (predicted - actual).abs() / actual
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Project the efficiency curve at the paper's world sizes.
pub fn project(model: &CostModel, worlds: &[usize]) -> Vec<ProjectionPoint> {
    worlds
        .iter()
        .map(|&w| ProjectionPoint {
            world: w,
            step_s: model.predict_step_s(w),
            images_per_sec: model.predict_images_per_sec(w),
            efficiency: model.predict_efficiency(w),
        })
        .collect()
}

/// Run the costs-only simulator (paper-scale EDSR workload, event core)
/// on `topo` with tracing enabled and package the measured window as a
/// [`TracedRun`], so the same [`fit_model`] machinery that fits real
/// training traces can fit simulated ones. Resets the global trace state.
pub fn traced_sim_run(
    topo: &ClusterTopology,
    sc: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> TracedRun {
    let (w, tensors) = crate::workload::edsr_measured_workload();
    let trainer = crate::sim::SimTrainer::new(w, tensors, batch, sc, topo, seed)
        .expect("per-GPU batch must fit");
    dlsr_trace::set_enabled(true);
    dlsr_trace::reset();
    let res = crate::experiment::run_world(topo, sc.mpi_config(), &trainer, warmup, steps);
    dlsr_trace::set_enabled(false);
    let counters = dlsr_trace::counters_snapshot();
    let warm_end = res.ranks.iter().map(|r| r.warm_end).fold(0.0, f64::max);
    let end = res.ranks.iter().map(|r| r.end).fold(0.0, f64::max);
    let mut trace = Vec::new();
    for r in &res.ranks {
        trace.extend(r.trace.iter().cloned());
    }
    TracedRun {
        world: topo.total_gpus(),
        steps,
        makespan: end - warm_end,
        trace,
        counters,
    }
}

/// Projection vs. discrete-event simulation at one world size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCheckPoint {
    pub world: usize,
    /// Step time the analytic model predicts, seconds.
    pub predicted_step_s: f64,
    /// Step time the event-driven simulator measured, seconds.
    pub simulated_step_s: f64,
    /// `|predicted − simulated| / simulated`.
    pub step_rel_err: f64,
    /// Model-projected weak-scaling efficiency.
    pub predicted_eff: f64,
    /// Simulated weak-scaling efficiency (vs. the single-rank step).
    pub simulated_eff: f64,
    /// `|predicted_eff − simulated_eff|`, in efficiency points.
    pub eff_abs_err: f64,
}

/// Cross-validation of the analytic projection against the event-driven
/// simulator at world sizes real training cannot reach: the model is
/// fitted from a *simulated* trace at `fit_world` ranks and its
/// extrapolation compared against actual driven-engine runs at 64–512.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCheck {
    /// Ranks of the simulated fit trace.
    pub fit_world: usize,
    pub points: Vec<SimCheckPoint>,
}

/// Fit the cost model on a small simulated world and validate its
/// projection against full event-driven simulations at `worlds` (ranks;
/// multiples of 4 — Lassen nodes hold 4 GPUs).
pub fn sim_check(
    sc: Scenario,
    batch: usize,
    warmup: usize,
    steps: usize,
    fit_nodes: usize,
    worlds: &[usize],
    seed: u64,
) -> SimCheck {
    let fit_topo = ClusterTopology::lassen(fit_nodes);
    let fit_run = traced_sim_run(&fit_topo, sc, batch, warmup, steps, seed);
    let (model, _) = fit_model(&fit_run, sc);
    let t1 = crate::simscale::single_rank_step_s(sc, batch, warmup, steps, seed);
    let points = worlds
        .iter()
        .map(|&w| {
            assert_eq!(w % 4, 0, "worlds are whole Lassen nodes (4 GPUs each)");
            let p = crate::simscale::measure_point(
                w / 4,
                sc,
                batch,
                warmup,
                steps,
                seed,
                dlsr_mpi::SimCore::Event,
                t1,
                1,
            );
            let predicted_step_s = model.predict_step_s(w);
            let simulated_step_s = p.virtual_step_s;
            let predicted_eff = model.predict_efficiency(w);
            let simulated_eff = p.efficiency;
            SimCheckPoint {
                world: w,
                predicted_step_s,
                simulated_step_s,
                step_rel_err: if simulated_step_s > 0.0 {
                    (predicted_step_s - simulated_step_s).abs() / simulated_step_s
                } else {
                    0.0
                },
                predicted_eff,
                simulated_eff,
                eff_abs_err: (predicted_eff - simulated_eff).abs(),
            }
        })
        .collect();
    SimCheck {
        fit_world: fit_topo.total_gpus(),
        points,
    }
}

/// Everything `dlsr analyze` exports to `results/BENCH_analysis.json`.
/// Virtual-clock quantities only, so the file is identical across
/// machines and usable as a committed regression baseline.
/// `Deserialize` is hand-written so committed baselines recorded before
/// wire accounting existed (no `wire_bytes`/`wire_dense_bytes` keys →
/// `Null`) lift to 0 instead of failing the parse.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AnalysisReport {
    pub scenario: String,
    /// World of the headline critical-path trace.
    pub world: usize,
    pub steps: usize,
    /// Measured mean step time of the headline trace, seconds.
    pub measured_step_s: f64,
    /// Per-step critical-path attribution of the headline trace.
    pub attribution_per_step: Attribution,
    pub model: CostModel,
    pub validation: Vec<ValidationPoint>,
    pub projection: Vec<ProjectionPoint>,
    /// Projection-vs-simulation cross-validation at 64–512 ranks
    /// (`None` when skipped; absent in pre-simscale baselines).
    pub sim_check: Option<SimCheck>,
    /// Encoded gradient bytes per the `mpi.wire_bytes` counter of the
    /// headline trace (0 when tracing predates wire accounting).
    pub wire_bytes: f64,
    /// Dense f32 bytes the same collectives would have moved
    /// (`mpi.wire_dense_bytes`); `wire_dense_bytes / wire_bytes` is the
    /// achieved compression ratio.
    pub wire_dense_bytes: f64,
}

impl serde::Deserialize for AnalysisReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected object for AnalysisReport"))?;
        static NULL: serde::Value = serde::Value::Null;
        let field = |k: &str| obj.get(k).unwrap_or(&NULL);
        fn req<T: serde::Deserialize>(v: &serde::Value, k: &str) -> Result<T, serde::Error> {
            T::from_value(v).map_err(|e| serde::Error::msg(format!("AnalysisReport.{k}: {e}")))
        }
        Ok(AnalysisReport {
            scenario: req(field("scenario"), "scenario")?,
            world: req(field("world"), "world")?,
            steps: req(field("steps"), "steps")?,
            measured_step_s: req(field("measured_step_s"), "measured_step_s")?,
            attribution_per_step: req(field("attribution_per_step"), "attribution_per_step")?,
            model: req(field("model"), "model")?,
            validation: req(field("validation"), "validation")?,
            projection: req(field("projection"), "projection")?,
            sim_check: req(field("sim_check"), "sim_check")?,
            wire_bytes: field("wire_bytes").as_f64().unwrap_or(0.0),
            wire_dense_bytes: field("wire_dense_bytes").as_f64().unwrap_or(0.0),
        })
    }
}

impl AnalysisReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("AnalysisReport serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("bad analysis JSON: {e:?}"))
    }
}

/// Compare a fresh analysis against a committed baseline. Returns one
/// message per regression beyond `tol_pct` percent; empty means the
/// gate passes. Only *worse* directions trip: faster steps, higher
/// efficiency and lower exposed comm always pass.
pub fn gate(current: &AnalysisReport, baseline: &AnalysisReport, tol_pct: f64) -> Vec<String> {
    let tol = tol_pct / 100.0;
    let mut violations = Vec::new();
    let worse = |cur: f64, base: f64| base > 0.0 && cur > base * (1.0 + tol);
    if worse(current.measured_step_s, baseline.measured_step_s) {
        violations.push(format!(
            "step time regressed: {:.3} ms vs baseline {:.3} ms (tol {tol_pct}%)",
            current.measured_step_s * 1e3,
            baseline.measured_step_s * 1e3,
        ));
    }
    if worse(
        current.attribution_per_step.exposed_comm_s,
        baseline.attribution_per_step.exposed_comm_s,
    ) {
        violations.push(format!(
            "exposed comm regressed: {:.3} ms vs baseline {:.3} ms (tol {tol_pct}%)",
            current.attribution_per_step.exposed_comm_s * 1e3,
            baseline.attribution_per_step.exposed_comm_s * 1e3,
        ));
    }
    for base_p in &baseline.projection {
        if let Some(cur_p) = current.projection.iter().find(|p| p.world == base_p.world) {
            if base_p.efficiency > 0.0 && cur_p.efficiency < base_p.efficiency * (1.0 - tol) {
                violations.push(format!(
                    "projected efficiency at {} ranks regressed: {:.1}% vs baseline {:.1}% (tol {tol_pct}%)",
                    base_p.world,
                    cur_p.efficiency * 100.0,
                    base_p.efficiency * 100.0,
                ));
            }
        }
    }
    // Wire-byte accounting may not regress: more encoded bytes per run at
    // equal dense bytes means the compression pipeline lost ground. Gated
    // only when both reports carry wire counters (old baselines hold 0).
    if current.wire_bytes > 0.0
        && baseline.wire_bytes > 0.0
        && worse(current.wire_bytes, baseline.wire_bytes)
    {
        violations.push(format!(
            "wire bytes regressed: {:.0} vs baseline {:.0} (tol {tol_pct}%)",
            current.wire_bytes, baseline.wire_bytes,
        ));
    }
    // Projection-vs-simulation agreement may not decay: the error at each
    // world may grow by at most `tol_pct` efficiency *points* over the
    // baseline (gated only when both reports carry the cross-validation).
    if let (Some(cur), Some(base)) = (&current.sim_check, &baseline.sim_check) {
        for bp in &base.points {
            if let Some(cp) = cur.points.iter().find(|p| p.world == bp.world) {
                if cp.eff_abs_err > bp.eff_abs_err + tol {
                    violations.push(format!(
                        "projection-vs-simulation efficiency error at {} ranks grew: \
                         {:.1} pts vs baseline {:.1} pts (tol {tol_pct} pts)",
                        bp.world,
                        cp.eff_abs_err * 100.0,
                        bp.eff_abs_err * 100.0,
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> CostModel {
        CostModel {
            scenario: "mpi-opt".into(),
            fit_world: 2,
            local_batch: 1,
            base_s: 1.0e-3,
            negotiate_s: 50.0e-6,
            wait_resid_s: 0.0,
            comm_total_s: 200.0e-6,
            hidden_s: 150.0e-6,
            groups: vec![GroupCost {
                name: "allreduce[g0] 8192B".into(),
                bytes: 8192,
                calls_per_step: 1.0,
                mean_s: 200.0e-6,
                algo: "RecursiveDoubling".into(),
            }],
        }
    }

    #[test]
    fn recursive_doubling_scales_logarithmically() {
        // 8KB at p=4 (log2=2) doubles the comm of p=2 (log2=1).
        let m = toy_model();
        let t2 = m.predict_step_s(2);
        let t4 = m.predict_step_s(4);
        // At p=2: comm 200µs − hidden 150µs = 50µs exposed.
        assert!((t2 - (1.0e-3 + 50.0e-6 + 50.0e-6)).abs() < 1e-12, "{t2}");
        // At p=4: comm 400µs − 150µs = 250µs, negotiate 150µs.
        assert!((t4 - (1.0e-3 + 150.0e-6 + 250.0e-6)).abs() < 1e-12, "{t4}");
        // Efficiency decays monotonically with world size.
        let eff: Vec<f64> = [2, 64, 128, 256, 512]
            .iter()
            .map(|&p| m.predict_efficiency(p))
            .collect();
        for w in eff.windows(2) {
            assert!(w[1] < w[0], "{eff:?}");
        }
    }

    #[test]
    fn hidden_capacity_clamps_exposed_comm_at_zero() {
        let mut m = toy_model();
        m.hidden_s = 10.0; // hides everything at any world size
        let t = m.predict_step_s(512);
        let negotiate = m.negotiate_s * 511.0;
        assert!((t - (m.base_s + negotiate)).abs() < 1e-12);
    }

    #[test]
    fn gate_trips_on_slower_steps_only() {
        let run = |step_s: f64, eff512: f64| AnalysisReport {
            scenario: "mpi-opt".into(),
            world: 8,
            steps: 4,
            measured_step_s: step_s,
            attribution_per_step: Attribution {
                compute_s: step_s * 0.8,
                exposed_comm_s: step_s * 0.2,
                ..Default::default()
            },
            model: toy_model(),
            validation: Vec::new(),
            projection: vec![ProjectionPoint {
                world: 512,
                step_s,
                images_per_sec: 512.0 / step_s,
                efficiency: eff512,
            }],
            sim_check: None,
            wire_bytes: 0.0,
            wire_dense_bytes: 0.0,
        };
        let base = run(1.0e-3, 0.70);
        // Identical → pass; faster → pass; 20% slower at 10% tol → trip.
        assert!(gate(&run(1.0e-3, 0.70), &base, 10.0).is_empty());
        assert!(gate(&run(0.8e-3, 0.75), &base, 10.0).is_empty());
        let v = gate(&run(1.2e-3, 0.70), &base, 10.0);
        assert!(!v.is_empty());
        assert!(v[0].contains("step time regressed"), "{v:?}");
        // Projected-efficiency collapse trips even with flat step time.
        let v = gate(&run(1.0e-3, 0.40), &base, 10.0);
        assert!(
            v.iter().any(|m| m.contains("projected efficiency")),
            "{v:?}"
        );
        // JSON round-trip for the baseline file format.
        let s = base.to_json();
        let back = AnalysisReport::from_json(&s).unwrap();
        assert_eq!(back, base);
    }

    #[test]
    fn gate_trips_when_projection_sim_agreement_decays() {
        let report = |err: f64| AnalysisReport {
            scenario: "mpi-opt".into(),
            world: 8,
            steps: 4,
            measured_step_s: 1.0e-3,
            attribution_per_step: Attribution::default(),
            model: toy_model(),
            validation: Vec::new(),
            projection: Vec::new(),
            sim_check: Some(SimCheck {
                fit_world: 16,
                points: vec![SimCheckPoint {
                    world: 256,
                    predicted_step_s: 1.0e-3,
                    simulated_step_s: 1.0e-3,
                    step_rel_err: err,
                    predicted_eff: 0.8,
                    simulated_eff: 0.8 - err,
                    eff_abs_err: err,
                }],
            }),
            wire_bytes: 0.0,
            wire_dense_bytes: 0.0,
        };
        let base = report(0.02);
        // Same error, or error within tol points → pass.
        assert!(gate(&report(0.02), &base, 10.0).is_empty());
        assert!(gate(&report(0.08), &base, 10.0).is_empty());
        // Error grew by more than 10 points → trip.
        let v = gate(&report(0.15), &base, 10.0);
        assert!(
            v.iter().any(|m| m.contains("projection-vs-simulation")),
            "{v:?}"
        );
        // Baselines without the section never trip the new rule.
        let mut old = base.clone();
        old.sim_check = None;
        assert!(gate(&report(0.5), &old, 10.0).is_empty());
        // And pre-simscale JSON (no sim_check key) still parses.
        let stripped = base.to_json().replace("\"sim_check\"", "\"ignored\"");
        let parsed = AnalysisReport::from_json(&stripped);
        assert!(parsed.is_err() || parsed.unwrap().sim_check.is_none());
    }

    #[test]
    fn gate_checks_wire_bytes_only_when_both_sides_have_them() {
        let report = |wire: f64, dense: f64| AnalysisReport {
            scenario: "mpi-opt".into(),
            world: 8,
            steps: 4,
            measured_step_s: 1.0e-3,
            attribution_per_step: Attribution::default(),
            model: toy_model(),
            validation: Vec::new(),
            projection: Vec::new(),
            sim_check: None,
            wire_bytes: wire,
            wire_dense_bytes: dense,
        };
        let base = report(1.0e6, 4.0e6);
        assert!(gate(&report(1.0e6, 4.0e6), &base, 10.0).is_empty());
        assert!(gate(&report(0.5e6, 4.0e6), &base, 10.0).is_empty());
        let v = gate(&report(1.5e6, 4.0e6), &base, 10.0);
        assert!(v.iter().any(|m| m.contains("wire bytes")), "{v:?}");
        // Pre-wire baselines (0) never trip, in either direction.
        assert!(gate(&report(1.5e6, 4.0e6), &report(0.0, 0.0), 10.0).is_empty());
        assert!(gate(&report(0.0, 0.0), &base, 10.0).is_empty());
        // And pre-wire JSON (no wire keys) still parses with 0 defaults.
        let stripped = base
            .to_json()
            .replace("\"wire_bytes\"", "\"ignored_a\"")
            .replace("\"wire_dense_bytes\"", "\"ignored_b\"");
        let p = AnalysisReport::from_json(&stripped).expect("pre-wire baselines must parse");
        assert_eq!(p.wire_bytes, 0.0);
        assert_eq!(p.wire_dense_bytes, 0.0);
    }

    #[test]
    fn sim_check_model_tracks_the_simulator() {
        // Fit at 8 simulated ranks, then hold the projection against
        // actual driven-engine runs at 16 and 32 ranks: the analytic
        // scaling laws must track the discrete-event simulation.
        let chk = sim_check(Scenario::MpiOpt, 4, 1, 3, 2, &[16, 32], 7);
        assert_eq!(chk.fit_world, 8);
        assert_eq!(chk.points.len(), 2);
        for p in &chk.points {
            assert!(p.simulated_step_s > 0.0);
            assert!(p.simulated_eff > 0.3 && p.simulated_eff <= 1.001, "{p:?}");
            assert!(
                p.step_rel_err < 0.10,
                "model off by {:.1}% at {} ranks: predicted {:.3} ms vs simulated {:.3} ms",
                p.step_rel_err * 100.0,
                p.world,
                p.predicted_step_s * 1e3,
                p.simulated_step_s * 1e3,
            );
        }
    }

    #[test]
    fn fit_reproduces_the_fit_world_measurement() {
        // End-to-end on a real traced 2-rank run: predict_step_s at the
        // fit world must reproduce the measured step time by
        // construction of the fit (hidden/exposed split is exact there).
        let topo = ClusterTopology {
            name: "fit-1x2".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let run = traced_real_run(&topo, Scenario::MpiOpt, 3, 0);
        assert_eq!(run.world, 2);
        assert!(!run.trace.is_empty());
        let (model, cp) = fit_model(&run, Scenario::MpiOpt);
        let measured = run.makespan / 3.0;
        let predicted = model.predict_step_s(2);
        let rel = (predicted - measured).abs() / measured;
        assert!(rel < 0.02, "predicted {predicted} vs measured {measured}");
        // The attribution buckets sum to the makespan (1% criterion).
        assert!((cp.total.total() - cp.makespan_s).abs() <= 0.01 * cp.makespan_s);
    }
}
