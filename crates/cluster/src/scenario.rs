//! The four evaluated configurations of the paper.

use std::fmt;
use std::str::FromStr;

use dlsr_horovod::Backend;
use dlsr_mpi::MpiConfig;

/// One column of the paper's comparison plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Default Horovod + MVAPICH2-GDR: `CUDA_VISIBLE_DEVICES` pinned, no
    /// IPC for MPI, no registration cache. ("MPI" in Figs 10–13.)
    MpiDefault,
    /// Default + registration cache ("MPI-Reg", Fig 11).
    MpiReg,
    /// Registration cache + `MV2_VISIBLE_DEVICES` restoring CUDA IPC
    /// ("MPI-Opt", Figs 12–14, Table I).
    MpiOpt,
    /// Horovod + NCCL.
    Nccl,
}

impl Scenario {
    /// Every scenario, in presentation order.
    pub const ALL: [Scenario; 4] = [
        Scenario::MpiDefault,
        Scenario::MpiReg,
        Scenario::MpiOpt,
        Scenario::Nccl,
    ];

    /// The MPI library configuration for this scenario.
    pub fn mpi_config(self) -> MpiConfig {
        match self {
            Scenario::MpiDefault => MpiConfig::default_mpi(),
            Scenario::MpiReg => MpiConfig::mpi_reg(),
            Scenario::MpiOpt => MpiConfig::mpi_opt(),
            // NCCL manages its own transports; the MPI config only carries
            // the shared link constants.
            Scenario::Nccl => MpiConfig::default_mpi(),
        }
    }

    /// The Horovod backend for this scenario.
    pub fn backend(self) -> Backend {
        match self {
            Scenario::Nccl => Backend::Nccl,
            _ => Backend::Mpi,
        }
    }

    /// Label used in plots/tables.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::MpiDefault => "MPI",
            Scenario::MpiReg => "MPI-Reg",
            Scenario::MpiOpt => "MPI-Opt",
            Scenario::Nccl => "NCCL",
        }
    }

    /// CUDA contexts each training process holds (all four scenarios pin
    /// the framework to one device; only a hypothetical unpinned run pays
    /// more — see `dlsr_gpu::DeviceEnv::unpinned`).
    pub fn context_count(self) -> usize {
        1
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Scenario {
    type Err = String;

    /// Parses the plot label, case-insensitively — so the `dlsr profile`
    /// and `dlsr chaos` subcommands accept the same names the reports
    /// print (`MPI`, `MPI-Reg`, `MPI-Opt`, `NCCL`, or any casing thereof).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::ALL
            .iter()
            .copied()
            .find(|sc| sc.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!(
                    "unknown scenario `{s}` (expected one of: {})",
                    Scenario::ALL.map(|sc| sc.label()).join(" | ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlsr_mpi::config::DeviceMode;

    #[test]
    fn scenario_configs_are_distinct() {
        assert_eq!(
            Scenario::MpiDefault.mpi_config().device_mode,
            DeviceMode::Pinned
        );
        assert!(!Scenario::MpiDefault.mpi_config().registration_cache);
        assert!(Scenario::MpiReg.mpi_config().registration_cache);
        assert_eq!(
            Scenario::MpiOpt.mpi_config().device_mode,
            DeviceMode::PinnedWithMv2
        );
        assert_eq!(Scenario::Nccl.backend(), Backend::Nccl);
        assert_eq!(Scenario::MpiOpt.backend(), Backend::Mpi);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            Scenario::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn labels_parse_back_case_insensitively() {
        for s in Scenario::ALL {
            assert_eq!(s.label().parse::<Scenario>(), Ok(s));
            assert_eq!(s.label().to_lowercase().parse::<Scenario>(), Ok(s));
            assert_eq!(s.to_string(), s.label());
        }
        assert!("infiniband".parse::<Scenario>().is_err());
    }
}
