//! Real distributed training of small EDSR configurations: every rank runs
//! actual forward/backward/optimizer math and exchanges real gradients
//! through the simulated MPI fabric. This is the correctness anchor for
//! the costs-only simulator: data-parallel training must match single-rank
//! training numerically, and must actually learn to super-resolve.
//!
//! The training loop carries the graceful-degradation machinery of
//! `docs/ROBUSTNESS.md`: periodic in-memory parameter + optimizer-state
//! checkpoints ([`RealTrainConfig::checkpoint_every`]) and, under the
//! `faults` feature, restore-and-continue recovery from a scheduled
//! mid-run rank failure. Because data loading is step-keyed and the
//! restored state is exact, the replayed steps are bitwise identical to an
//! undisturbed run — only the virtual timeline pays for the fault.

use std::fmt;

use dlsr_data::{DataLoader, Div2kSynthetic, ShardSpec, SyntheticImageSpec};
use dlsr_horovod::{broadcast_parameters, DistributedOptimizer, HorovodConfig};
use dlsr_hvprof::Hvprof;
use dlsr_models::{Edsr, EdsrConfig};
use dlsr_mpi::{MpiConfig, MpiWorld};
use dlsr_net::ClusterTopology;
use dlsr_nn::checkpoint::StateDict;
use dlsr_nn::loss::l1_loss;
use dlsr_nn::metrics::psnr;
use dlsr_nn::module::Module;
use dlsr_nn::module::ModuleExt as _;
use dlsr_nn::optim::{Adam, AdamState};
use dlsr_nn::schedule::{LrSchedule, StepDecay, Warmup};
use dlsr_tensor::resize::bicubic_upsample;

/// Configuration of a real training run.
///
/// `#[non_exhaustive]`: construct through [`RealTrainConfig::default`] or
/// the chainable [`RealTrainConfig::builder`], never a struct literal, so
/// new knobs (like `checkpoint_every`) land additively.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RealTrainConfig {
    /// EDSR variant to train (use small configs — this is real CPU math).
    pub model: EdsrConfig,
    /// LR patch extent.
    pub lr_patch: usize,
    /// Global batch size (split across ranks).
    pub global_batch: usize,
    /// Training steps.
    pub steps: usize,
    /// Base learning rate (scaled by world size by Horovod).
    pub lr: f32,
    /// Number of synthetic DIV2K images.
    pub n_images: usize,
    /// Master seed.
    pub seed: u64,
    /// EDSR-style patch augmentation (random flips + rot90).
    pub augment: bool,
    /// Linear LR warmup steps (the standard companion of Horovod's
    /// `lr · world` scaling at large effective batches).
    pub warmup_steps: u64,
    /// Optional step decay `(period, gamma)` — EDSR uses `(200_000, 0.5)`.
    pub lr_decay: Option<(u64, f32)>,
    /// Evaluate held-out PSNR every `n` steps (recorded in `psnr_curve`).
    pub eval_every: Option<usize>,
    /// Overlap backward compute with gradient allreduce (the cycle-driven
    /// engine, [`DistributedOptimizer::backward_and_step`]); `false` runs
    /// the classic backward-then-allreduce sequential path.
    pub overlap: bool,
    /// Horovod fusion threshold in bytes. The default is sized so a tiny
    /// EDSR's ~23 KB gradient set splits into a handful of groups —
    /// overlap needs more than one group to have anything to pipeline.
    pub fusion_threshold: u64,
    /// Horovod cycle time in seconds; also paces overlapped group
    /// launches (expected phase lag `cycle_time / 2`).
    pub cycle_time: f64,
    /// Take an in-memory parameter + optimizer-state checkpoint every `n`
    /// steps (0 — the default — disables checkpointing entirely; the
    /// training loop is then byte-identical to the pre-checkpoint code).
    /// Every checkpoint charges a deterministic virtual cost on all ranks.
    pub checkpoint_every: usize,
    /// Enable the online comm tuner ([`dlsr_horovod::tuner`]): the first
    /// steps each measure one fusion/cycle/threshold candidate, then the
    /// argmin freezes. Pre-warm the `DLSR_COMM_TUNE` cache to skip
    /// exploration and keep the run digest-stable from step 0.
    pub tune_comm: bool,
}

impl Default for RealTrainConfig {
    fn default() -> Self {
        RealTrainConfig {
            model: EdsrConfig::tiny(),
            lr_patch: 12,
            global_batch: 4,
            steps: 30,
            lr: 3e-3,
            n_images: 4,
            seed: 42,
            augment: false,
            warmup_steps: 0,
            lr_decay: None,
            eval_every: None,
            overlap: true,
            fusion_threshold: 8 << 10,
            cycle_time: 0.35e-3,
            checkpoint_every: 0,
            tune_comm: false,
        }
    }
}

impl RealTrainConfig {
    /// Chainable, validated construction starting from the defaults.
    pub fn builder() -> RealTrainConfigBuilder {
        RealTrainConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Reopen any config for further tweaking.
    pub fn to_builder(self) -> RealTrainConfigBuilder {
        RealTrainConfigBuilder { cfg: self }
    }
}

/// A [`RealTrainConfigBuilder`] rejected its knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid RealTrainConfig: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`RealTrainConfig`]: defaults-based, chainable, validated
/// at [`RealTrainConfigBuilder::try_build`].
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until built"]
pub struct RealTrainConfigBuilder {
    cfg: RealTrainConfig,
}

impl RealTrainConfigBuilder {
    /// EDSR variant to train.
    pub fn model(mut self, model: EdsrConfig) -> Self {
        self.cfg.model = model;
        self
    }

    /// LR patch extent.
    pub fn lr_patch(mut self, px: usize) -> Self {
        self.cfg.lr_patch = px;
        self
    }

    /// Global batch size (split across ranks).
    pub fn global_batch(mut self, n: usize) -> Self {
        self.cfg.global_batch = n;
        self
    }

    /// Training steps.
    pub fn steps(mut self, n: usize) -> Self {
        self.cfg.steps = n;
        self
    }

    /// Base learning rate.
    pub fn lr(mut self, lr: f32) -> Self {
        self.cfg.lr = lr;
        self
    }

    /// Number of synthetic DIV2K images.
    pub fn n_images(mut self, n: usize) -> Self {
        self.cfg.n_images = n;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// EDSR-style patch augmentation.
    pub fn augment(mut self, on: bool) -> Self {
        self.cfg.augment = on;
        self
    }

    /// Linear LR warmup steps.
    pub fn warmup_steps(mut self, n: u64) -> Self {
        self.cfg.warmup_steps = n;
        self
    }

    /// Optional step decay `(period, gamma)`.
    pub fn lr_decay(mut self, decay: Option<(u64, f32)>) -> Self {
        self.cfg.lr_decay = decay;
        self
    }

    /// Evaluate held-out PSNR every `n` steps.
    pub fn eval_every(mut self, every: Option<usize>) -> Self {
        self.cfg.eval_every = every;
        self
    }

    /// Overlap backward compute with gradient allreduce.
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Horovod fusion threshold in bytes.
    pub fn fusion_threshold(mut self, bytes: u64) -> Self {
        self.cfg.fusion_threshold = bytes;
        self
    }

    /// Horovod cycle time in seconds.
    pub fn cycle_time(mut self, seconds: f64) -> Self {
        self.cfg.cycle_time = seconds;
        self
    }

    /// Checkpoint period in steps (0 disables).
    pub fn checkpoint_every(mut self, steps: usize) -> Self {
        self.cfg.checkpoint_every = steps;
        self
    }

    /// Enable the online comm tuner.
    pub fn tune_comm(mut self, on: bool) -> Self {
        self.cfg.tune_comm = on;
        self
    }

    /// Validate and build.
    pub fn try_build(self) -> Result<RealTrainConfig, ConfigError> {
        let c = &self.cfg;
        if c.steps == 0 {
            return Err(ConfigError("steps must be ≥ 1".into()));
        }
        if c.lr_patch == 0 {
            return Err(ConfigError("lr_patch must be ≥ 1".into()));
        }
        if c.global_batch == 0 {
            return Err(ConfigError("global_batch must be ≥ 1".into()));
        }
        if c.n_images == 0 {
            return Err(ConfigError("n_images must be ≥ 1".into()));
        }
        if !(c.lr > 0.0 && c.lr.is_finite()) {
            return Err(ConfigError(format!("lr ({}) must be positive", c.lr)));
        }
        if c.fusion_threshold == 0 {
            return Err(ConfigError("fusion_threshold must be positive".into()));
        }
        if !(c.cycle_time > 0.0 && c.cycle_time.is_finite()) {
            return Err(ConfigError(format!(
                "cycle_time ({}) must be a positive duration",
                c.cycle_time
            )));
        }
        Ok(self.cfg)
    }

    /// [`RealTrainConfigBuilder::try_build`], panicking on invalid knobs.
    pub fn build(self) -> RealTrainConfig {
        self.try_build()
            .unwrap_or_else(|e| panic!("RealTrainConfigBuilder::build: {e}"))
    }
}

/// Virtual-clock compute cost per multiply-accumulate, calibrated against
/// the CPU reference kernels the real path actually runs: the deterministic
/// charge keeps every rank's compute identical (no wall-clock noise in the
/// simulated timeline) while staying in the same regime as the measured
/// kernels, so exposed-vs-hidden communication in the step report is
/// meaningful. Backward costs 2× forward (grad-input + grad-weight GEMMs).
const FWD_SECONDS_PER_MAC: f64 = 2.5e-9;
const BWD_SECONDS_PER_MAC: f64 = 5.0e-9;

/// Checkpoint cost model: streaming the snapshot (params + two Adam
/// moments, f32) to node-local stable storage, plus a fixed coordination
/// cost. Charged identically on all ranks (checkpoints are synchronous).
const CHECKPOINT_BANDWIDTH: f64 = 2.0e9;
const CHECKPOINT_FIXED_SECONDS: f64 = 50.0e-6;
/// Virtual time for the fabric to agree a rank died (heartbeat timeout).
#[cfg(feature = "faults")]
const FAILURE_DETECT_SECONDS: f64 = 1.0e-3;

/// Outcome of a real training run.
#[derive(Debug, Clone)]
pub struct RealTrainResult {
    /// Per-step global average L1 loss (rank 0's local loss — identical
    /// across ranks in expectation).
    pub losses: Vec<f32>,
    /// PSNR of the trained model on a held-out image.
    pub model_psnr: f32,
    /// PSNR of plain bicubic upsampling on the same image.
    pub bicubic_psnr: f32,
    /// Final flattened parameters (rank 0) — for equivalence checks.
    pub final_params: Vec<f32>,
    /// `(step, PSNR)` samples when `eval_every` is set.
    pub psnr_curve: Vec<(usize, f32)>,
    /// Virtual makespan of the job.
    pub makespan: f64,
    /// Registration-cache statistics of rank 0.
    pub regcache: dlsr_net::RegCacheStats,
    /// Communicator statistics of rank 0 (transport mix, retry/backoff and
    /// degraded-link charges under faults).
    pub comm_stats: dlsr_mpi::CommStats,
    /// Structured trace spans from every rank (plus rank-tagged kernel
    /// spans from worker threads); empty unless the `dlsr-trace`
    /// collector is enabled.
    pub trace: Vec<dlsr_trace::TraceEvent>,
    /// Analytic-vs-measured gradient-readiness reconciliation from rank
    /// 0's last overlapped backward; `None` on the sequential path.
    pub readiness: Option<dlsr_horovod::ReadinessReconciliation>,
}

fn image_spec(lr_patch: usize, scale: usize) -> SyntheticImageSpec {
    SyntheticImageSpec {
        height: (lr_patch * scale * 2).max(32),
        width: (lr_patch * scale * 2).max(32),
        ..Default::default()
    }
}

/// An in-memory checkpoint: everything needed to replay from `step`.
/// Replicated on every rank (the replicas are identical — synchronous data
/// parallelism keeps all ranks' parameters equal), so recovery needs only
/// rank 0's copy re-broadcast to overwrite any replacement rank.
#[derive(Clone)]
#[cfg_attr(not(feature = "faults"), allow(dead_code))] // read only by restore
struct Snapshot {
    step: usize,
    params: StateDict,
    opt: AdamState,
}

/// Flat f32 encoding of [`AdamState`] for `bcast`: `[t, m₀…, v₀…, m₁…, …]`
/// in the snapshot's (name-sorted) order. Exact for `t < 2^24`.
#[cfg(feature = "faults")]
fn flatten_adam_state(s: &AdamState) -> Vec<f32> {
    let mut flat = vec![s.t as f32];
    for (_, _, m, v) in &s.moments {
        flat.extend_from_slice(m);
        flat.extend_from_slice(v);
    }
    flat
}

/// Inverse of [`flatten_adam_state`], using `template` for the name/shape
/// skeleton (identical on every rank — same model, same step).
#[cfg(feature = "faults")]
fn unflatten_adam_state(template: &AdamState, flat: &[f32]) -> AdamState {
    let mut out = template.clone();
    out.t = flat[0] as u64;
    let mut off = 1;
    for (_, _, m, v) in &mut out.moments {
        let (ml, vl) = (m.len(), v.len());
        m.copy_from_slice(&flat[off..off + ml]);
        off += ml;
        v.copy_from_slice(&flat[off..off + vl]);
        off += vl;
    }
    out
}

/// Train EDSR data-parallel on a simulated cluster with real math.
pub fn train_real(
    topo: &ClusterTopology,
    mpi: MpiConfig,
    cfg: &RealTrainConfig,
) -> RealTrainResult {
    let cfg = cfg.clone();
    let world = topo.total_gpus();
    assert!(
        cfg.global_batch.is_multiple_of(world),
        "global batch {} not divisible by {world} ranks",
        cfg.global_batch
    );
    let res = MpiWorld::run(topo, mpi, move |comm| {
        let scale = cfg.model.scale;
        let mut model = Edsr::new(cfg.model, cfg.seed + comm.rank() as u64);
        let mut prof = Hvprof::new();
        // make all ranks start from rank 0's parameters
        broadcast_parameters(&mut model, comm, 0, &mut prof);
        let dataset = Div2kSynthetic::new(
            image_spec(cfg.lr_patch, scale),
            cfg.n_images,
            scale,
            cfg.seed,
        );
        let mut loader = DataLoader::new(
            dataset,
            cfg.lr_patch,
            cfg.global_batch,
            ShardSpec {
                rank: comm.rank(),
                world,
            },
        )
        .with_augmentation(cfg.augment);
        let mut eval_ds =
            Div2kSynthetic::new(image_spec(cfg.lr_patch, scale), 1, scale, cfg.seed ^ 0xEEEE);
        // DistributedOptimizer applies Horovod's lr ← lr · world scaling
        // (§III-A guideline 4). `cfg.lr` is the *effective* rate: feeding
        // lr/world keeps the trajectory identical across world sizes for a
        // fixed global batch, which the equivalence tests rely on.
        let mut opt = DistributedOptimizer::new(
            Adam::new(cfg.lr / world as f32),
            &mut model,
            HorovodConfig::builder()
                .fusion_threshold(cfg.fusion_threshold)
                .cycle_time(cfg.cycle_time)
                .tune_comm(cfg.tune_comm)
                .build(),
            world,
        );
        // Deterministic virtual compute charge per step: identical in the
        // sequential and overlapped modes (required for their bitwise
        // equivalence) and on every rank (no wall-clock noise). A
        // straggler multiplier from the fault plan stretches this rank's
        // compute without touching the math.
        #[cfg(feature = "faults")]
        let compute_mult = comm
            .config()
            .fault_plan
            .as_ref()
            .map(|p| p.compute_multiplier(comm.rank()))
            .unwrap_or(1.0);
        #[cfg(not(feature = "faults"))]
        let compute_mult = 1.0;
        let local_batch = cfg.global_batch / world;
        let macs =
            model.num_params() as f64 * (cfg.lr_patch * cfg.lr_patch) as f64 * local_batch as f64;
        let fwd_virtual = macs * FWD_SECONDS_PER_MAC * compute_mult;
        let bwd_virtual = macs * BWD_SECONDS_PER_MAC * compute_mult;
        // LR schedule: warmup (for the world-scaled rate) + optional decay
        let (period, gamma) = cfg.lr_decay.unwrap_or((u64::MAX, 1.0));
        let schedule = Warmup {
            warmup_steps: cfg.warmup_steps,
            start_factor: 1.0 / world as f32,
            inner: StepDecay { period, gamma },
        };
        let mut sched = SchedulerShim::new(opt_lr(&opt), schedule);
        let (hr, lr) = eval_ds.image(0);
        let (hr, lr) = (hr.clone(), lr.clone());
        let mut losses = Vec::with_capacity(cfg.steps);
        let mut psnr_curve = Vec::new();
        // Bytes one snapshot streams to stable storage: params + m + v + t.
        let snapshot_bytes = (model.num_params() * 3 + 1) as f64 * 4.0;
        let checkpoint_cost = CHECKPOINT_FIXED_SECONDS + snapshot_bytes / CHECKPOINT_BANDWIDTH;
        // The scheduled mid-run failure, if any (Copy — read out up front
        // so the borrow of the config doesn't pin `comm`).
        #[cfg(feature = "faults")]
        let rank_failure = comm
            .config()
            .fault_plan
            .as_ref()
            .and_then(|p| p.rank_failure());
        #[cfg(feature = "faults")]
        let mut restored = false;
        #[cfg(feature = "faults")]
        let want_snapshots = cfg.checkpoint_every > 0 || rank_failure.is_some();
        #[cfg(not(feature = "faults"))]
        let want_snapshots = cfg.checkpoint_every > 0;
        // Initial snapshot (free: taken from the post-broadcast state
        // before any virtual time passes) so recovery always has a base.
        let mut snapshot: Option<Snapshot> = want_snapshots.then(|| Snapshot {
            step: 0,
            params: StateDict::from_module(&mut model),
            opt: opt.inner().state_snapshot(),
        });
        let mut step = 0usize;
        while step < cfg.steps {
            // Scheduled rank failure: once the virtual job reaches the
            // failure step, all ranks detect the death, roll back to the
            // last checkpoint and continue — the replacement rank slots in
            // with re-broadcast state. Replay is bitwise-exact because the
            // loader is step-keyed and the restored state is exact.
            #[cfg(feature = "faults")]
            // dlsr-lint: allow(collective-order) -- rank_failure is config,
            // identical on every rank: all ranks take the same arm together
            if let Some(f) = rank_failure {
                if !restored && step == f.step {
                    let snap = snapshot.clone().expect("initial snapshot exists");
                    let t0 = comm.now();
                    comm.advance(FAILURE_DETECT_SECONDS);
                    if comm.rank() == 0 {
                        snap.params.load_into(&mut model).expect("restore params");
                    }
                    broadcast_parameters(&mut model, comm, 0, &mut prof);
                    // Optimizer state rides a flat bcast from rank 0; every
                    // rank's replica is identical, so non-root buffers are
                    // correctly sized from their own copy.
                    let mut flat = flatten_adam_state(&snap.opt);
                    dlsr_mpi::collectives::bcast(comm, &mut flat, 0, 0x4641_554C /* "FAUL" */);
                    opt.inner_mut()
                        .load_state(&unflatten_adam_state(&snap.opt, &flat));
                    comm.advance(checkpoint_cost);
                    dlsr_trace::record_span(
                        || format!("restore r{} step {} <- ckpt {}", f.rank, f.step, snap.step),
                        dlsr_trace::cat::FAULT,
                        t0,
                        comm.now(),
                    );
                    if comm.rank() == 0 {
                        dlsr_trace::counter_add(dlsr_trace::report::keys::FAULT_RESTORES, 1.0);
                    }
                    sched.reset_to(snap.step as u64);
                    step = snap.step;
                    losses.truncate(step);
                    psnr_curve.retain(|&(s, _)| s <= step);
                    restored = true;
                    continue;
                }
            }
            sched.apply(&mut opt);
            let (lr_batch, hr_batch) = loader.batch(0, step as u64);
            let t_fwd = comm.now();
            let pred = model.forward(&lr_batch).expect("forward");
            comm.advance(fwd_virtual);
            dlsr_trace::record_span(
                || format!("fwd b{local_batch}"),
                dlsr_trace::cat::COMPUTE,
                t_fwd,
                comm.now(),
            );
            let (loss, grad) = l1_loss(&pred, &hr_batch).expect("loss");
            if cfg.overlap {
                // Cycle-driven engine: fusion groups launch their
                // allreduces from inside backward, as gradients finalize.
                opt.backward_and_step(&mut model, &grad, comm, bwd_virtual)
                    .expect("backward");
            } else {
                let t_bwd = comm.now();
                model.backward(&grad).expect("backward");
                comm.advance(bwd_virtual);
                dlsr_trace::record_span(
                    || format!("bwd b{local_batch}"),
                    dlsr_trace::cat::COMPUTE,
                    t_bwd,
                    comm.now(),
                );
                opt.step(&mut model, comm);
            }
            losses.push(loss);
            if let Some(every) = cfg.eval_every {
                if every > 0 && (step + 1).is_multiple_of(every) {
                    let sr = model.predict(&lr).expect("predict");
                    psnr_curve.push((step + 1, psnr(&sr, &hr, 1.0).expect("psnr")));
                }
            }
            // Periodic synchronous checkpoint: all ranks charge the same
            // deterministic cost and refresh their replica.
            if cfg.checkpoint_every > 0 && (step + 1).is_multiple_of(cfg.checkpoint_every) {
                let t0 = comm.now();
                snapshot = Some(Snapshot {
                    step: step + 1,
                    params: StateDict::from_module(&mut model),
                    opt: opt.inner().state_snapshot(),
                });
                comm.advance(checkpoint_cost);
                dlsr_trace::record_span(
                    || format!("checkpoint step {}", step + 1),
                    dlsr_trace::cat::FAULT,
                    t0,
                    comm.now(),
                );
                if comm.rank() == 0 {
                    use dlsr_trace::report::keys;
                    dlsr_trace::counter_add(keys::FAULT_CHECKPOINTS, 1.0);
                    dlsr_trace::counter_add(keys::FAULT_CHECKPOINT_SECONDS, checkpoint_cost);
                }
            }
            step += 1;
        }
        // Without the `faults` feature nothing ever restores from the
        // replica; keep it observed so the checkpoint path (and its lint
        // profile) is identical in both builds.
        #[cfg(not(feature = "faults"))]
        let _ = &snapshot;
        // held-out evaluation (same on every rank; rank 0's is reported)
        let sr = model.predict(&lr).expect("predict");
        let model_psnr = psnr(&sr, &hr, 1.0).expect("psnr");
        let bicubic = bicubic_upsample(&lr, scale).expect("bicubic");
        let bicubic_psnr = psnr(&bicubic, &hr, 1.0).expect("psnr");
        (
            losses,
            model_psnr,
            bicubic_psnr,
            model.flatten_params(),
            psnr_curve,
            comm.now(),
            comm.regcache_stats(),
            dlsr_trace::take_thread_events(),
            opt.readiness_reconciliation().cloned(),
            comm.stats().clone(),
        )
    });
    let makespan = res.ranks.iter().map(|r| r.5).fold(0.0, f64::max);
    // rank threads drained their own spans above; the global drain picks up
    // the rank-tagged kernel spans recorded on rayon worker threads
    let mut trace: Vec<dlsr_trace::TraceEvent> = dlsr_trace::take_events();
    for r in &res.ranks {
        trace.extend(r.7.iter().cloned());
    }
    let regcache = res.ranks[0].6;
    let r0 = res.ranks.into_iter().next().expect("rank 0");
    RealTrainResult {
        losses: r0.0,
        model_psnr: r0.1,
        bicubic_psnr: r0.2,
        final_params: r0.3,
        psnr_curve: r0.4,
        makespan,
        regcache,
        comm_stats: r0.9,
        trace,
        readiness: r0.8,
    }
}

/// The `nn::schedule::Scheduler` drives `Optimizer`s; the distributed
/// optimizer wraps one, so this shim applies the schedule to the wrapped
/// rate through `DistributedOptimizer`'s inner accessors.
struct SchedulerShim<S: LrSchedule> {
    base_lr: f32,
    schedule: S,
    step: u64,
}

impl<S: LrSchedule> SchedulerShim<S> {
    fn new(base_lr: f32, schedule: S) -> Self {
        SchedulerShim {
            base_lr,
            schedule,
            step: 0,
        }
    }

    fn apply(&mut self, opt: &mut DistributedOptimizer<Adam>) {
        opt.set_inner_lr(self.base_lr * self.schedule.factor(self.step));
        self.step += 1;
    }

    /// Rewind to `step` (checkpoint rollback): the schedule is a pure
    /// function of the step counter, so resetting the counter replays the
    /// exact same rate sequence.
    #[cfg(feature = "faults")]
    fn reset_to(&mut self, step: u64) {
        self.step = step;
    }
}

fn opt_lr(opt: &DistributedOptimizer<Adam>) -> f32 {
    use dlsr_nn::optim::Optimizer;
    opt.inner().lr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_training_learns() {
        let topo = ClusterTopology {
            name: "mini".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let res = train_real(&topo, MpiConfig::mpi_opt(), &RealTrainConfig::default());
        let first: f32 = res.losses[..5].iter().sum::<f32>() / 5.0;
        let last: f32 = res.losses[res.losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(last < first, "loss did not fall: {first} -> {last}");
        assert!(res.makespan > 0.0);
        assert!(res.comm_stats.sends > 0);
    }

    #[test]
    fn all_world_sizes_produce_identical_parameters() {
        // The whole point of synchronous data parallelism: with the global
        // batch held fixed, 1-, 2- and 4-rank training follow the same
        // trajectory (up to f32 reduction-order noise).
        let cfg = RealTrainConfig::builder().steps(6).build();
        let t1 = ClusterTopology {
            name: "w1".into(),
            nodes: 1,
            gpus_per_node: 1,
        };
        let t2 = ClusterTopology {
            name: "w2".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let t4 = ClusterTopology {
            name: "w4".into(),
            nodes: 1,
            gpus_per_node: 4,
        };
        let r1 = train_real(&t1, MpiConfig::mpi_opt(), &cfg);
        let r2 = train_real(&t2, MpiConfig::mpi_opt(), &cfg);
        let r4 = train_real(&t4, MpiConfig::mpi_opt(), &cfg);
        let diff12 = max_abs_diff(&r1.final_params, &r2.final_params);
        let diff14 = max_abs_diff(&r1.final_params, &r4.final_params);
        assert!(diff12 < 2e-4, "1 vs 2 ranks diverged: {diff12}");
        assert!(diff14 < 2e-4, "1 vs 4 ranks diverged: {diff14}");
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn full_recipe_trains_with_augment_warmup_decay_and_eval() {
        let topo = ClusterTopology {
            name: "mini".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let cfg = RealTrainConfig::builder()
            .steps(12)
            .augment(true)
            .warmup_steps(4)
            .lr_decay(Some((8, 0.5)))
            .eval_every(Some(4))
            .build();
        let res = train_real(&topo, MpiConfig::mpi_opt(), &cfg);
        assert_eq!(res.losses.len(), 12);
        assert_eq!(
            res.psnr_curve.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![4, 8, 12]
        );
        assert!(res
            .psnr_curve
            .iter()
            .all(|&(_, p)| p.is_finite() && p > 0.0));
        let first: f32 = res.losses[..4].iter().sum::<f32>() / 4.0;
        let last: f32 = res.losses[8..].iter().sum::<f32>() / 4.0;
        assert!(last < first, "loss did not fall: {first} -> {last}");
    }

    #[test]
    fn warmup_changes_the_early_trajectory_only() {
        let topo = ClusterTopology {
            name: "w2".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let base = RealTrainConfig::builder().steps(3).build();
        let warm = RealTrainConfig::builder().steps(3).warmup_steps(50).build();
        let a = train_real(&topo, MpiConfig::mpi_opt(), &base);
        let b = train_real(&topo, MpiConfig::mpi_opt(), &warm);
        // with a long warmup the first steps use a much smaller rate, so
        // the trajectories must differ
        assert_ne!(a.final_params, b.final_params);
    }

    #[test]
    fn checkpointing_charges_time_but_not_math() {
        let topo = ClusterTopology {
            name: "mini".into(),
            nodes: 1,
            gpus_per_node: 2,
        };
        let base = RealTrainConfig::builder().steps(8).build();
        let ckpt = base.clone().to_builder().checkpoint_every(3).build();
        let a = train_real(&topo, MpiConfig::mpi_opt(), &base);
        let b = train_real(&topo, MpiConfig::mpi_opt(), &ckpt);
        // checkpoints are pure timeline overhead: identical math, longer job
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_params, b.final_params);
        assert!(
            b.makespan > a.makespan,
            "checkpoints must cost virtual time"
        );
    }

    #[test]
    fn builder_validates_and_round_trips() {
        let cfg = RealTrainConfig::builder()
            .steps(5)
            .checkpoint_every(2)
            .overlap(false)
            .build();
        assert_eq!(cfg.steps, 5);
        assert_eq!(cfg.checkpoint_every, 2);
        assert!(!cfg.overlap);
        assert!(RealTrainConfig::builder().steps(0).try_build().is_err());
        assert!(RealTrainConfig::builder().lr(-1.0).try_build().is_err());
        assert!(RealTrainConfig::builder()
            .cycle_time(0.0)
            .try_build()
            .is_err());
    }
}
