//! Standard workloads: model profiles converted for the GPU cost model.

use dlsr_gpu::{WorkloadKind, WorkloadProfile};
use dlsr_horovod::TensorSpec;
use dlsr_models::profile::{edsr_profile, resnet_profile, ModelProfile};
use dlsr_models::{EdsrConfig, ResNetConfig};

/// Convert a model-zoo profile into the GPU cost model's workload form.
pub fn to_workload(p: &ModelProfile, kind: WorkloadKind) -> WorkloadProfile {
    WorkloadProfile {
        name: p.name.clone(),
        params: p.params,
        fwd_flops: p.fwd_flops,
        activation_elems: p.activation_elems,
        kernels: p.kernels,
        kind,
    }
}

/// The EDSR configuration the paper *measured* (see DESIGN.md §5 and the
/// cost-model notes): B=32, F=256, ×2, trained on LR 48×48 patches.
/// 40.7 M parameters → 163 MB of gradients, matching Table I's bins and
/// the 10.3 img/s single-V100 anchor.
pub fn edsr_measured_workload() -> (WorkloadProfile, Vec<TensorSpec>) {
    let cfg = EdsrConfig::full();
    let profile = edsr_profile(&cfg, 48, 48);
    let tensors = tensor_specs(&cfg);
    (
        to_workload(&profile, WorkloadKind::SuperResolution),
        tensors,
    )
}

/// The EDSR configuration as §IV-C *describes* it (B=32, F=64): kept for
/// the ablation comparing what the text says against what the measurements
/// imply.
pub fn edsr_text_workload() -> (WorkloadProfile, Vec<TensorSpec>) {
    let cfg = EdsrConfig::paper();
    let profile = edsr_profile(&cfg, 96, 96);
    let tensors = tensor_specs(&cfg);
    (
        to_workload(&profile, WorkloadKind::SuperResolution),
        tensors,
    )
}

/// ResNet-50 at ImageNet resolution (the Fig 1 comparator).
pub fn resnet50_workload() -> WorkloadProfile {
    let profile = resnet_profile(&ResNetConfig::resnet50(), 224, 224);
    to_workload(&profile, WorkloadKind::Classification)
}

/// Gradient tensors in **readiness order** (reverse of forward traversal —
/// backward produces output-side gradients first).
fn tensor_specs(cfg: &EdsrConfig) -> Vec<TensorSpec> {
    let mut specs: Vec<TensorSpec> = cfg
        .param_shapes()
        .into_iter()
        .map(|(name, elems)| TensorSpec { name, elems })
        .collect();
    specs.reverse();
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_workload_matches_table1_scale() {
        let (w, tensors) = edsr_measured_workload();
        // 163 MB of gradients — the quantity behind Table I's 16–64 MB bins
        let mb = w.grad_bytes() >> 20;
        assert!((150..180).contains(&mb), "gradient MB {mb}");
        let total: usize = tensors.iter().map(|t| t.elems).sum();
        assert_eq!(total, w.params);
        // readiness order: the first-ready tensor is the tiny out_conv bias
        assert_eq!(tensors[0].name, "out_conv.bias");
        assert!(tensors[0].elems < 10);
    }

    #[test]
    fn text_workload_is_an_order_of_magnitude_smaller() {
        let (m, _) = edsr_measured_workload();
        let (t, _) = edsr_text_workload();
        assert!(m.params > 10 * t.params);
    }

    #[test]
    fn single_gpu_anchors_hold_for_cluster_workloads() {
        use dlsr_gpu::{GpuSpec, KernelCostModel};
        let model = KernelCostModel::new(GpuSpec::v100());
        let (edsr, _) = edsr_measured_workload();
        let t_edsr = model.throughput(&edsr, 4, 1).unwrap();
        assert!(
            (9.2..11.4).contains(&t_edsr),
            "EDSR {t_edsr} img/s (Fig 1: 10.3)"
        );
        let rn = resnet50_workload();
        let t_rn = model.throughput(&rn, 64, 1).unwrap();
        assert!(
            (320.0..400.0).contains(&t_rn),
            "ResNet {t_rn} img/s (Fig 1: 360)"
        );
    }
}
