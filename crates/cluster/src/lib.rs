//! `dlsr-cluster` — cluster assembly and the distributed-training drivers.
//!
//! Two drivers share the same Horovod/MPI stack:
//!
//! - [`sim`]: the **at-scale simulator** (up to 512 ranks): per-step GPU
//!   compute comes from the calibrated cost model, gradients synchronize
//!   through the dynamic-fusion Horovod engine with costs-only payloads,
//!   and a deterministic straggler (jitter) model reproduces the
//!   synchronous-training tail effects. All scaling figures (10–13) and
//!   the Table I / Fig 14 profiles come from here.
//! - [`realtrain`]: **real distributed training** of small EDSR configs —
//!   actual forward/backward/optimizer math on every rank, real gradient
//!   payloads through the same collectives. Used to prove numerical
//!   correctness (distributed ≡ single-rank) and produce actual PSNR
//!   improvements on synthetic DIV2K.

#![forbid(unsafe_code)]
pub mod analysis;
pub mod experiment;
pub mod realtrain;
pub mod scenario;
pub mod sim;
pub mod simscale;
pub mod workload;

pub use analysis::{
    fit_model, gate, project, sim_check, traced_real_run, validate, AnalysisReport, CostModel,
    GroupCost, ProjectionPoint, SimCheck, SimCheckPoint, TracedRun, ValidationPoint,
};
pub use experiment::{
    batch_sweep, run_training, run_training_core, run_training_tuned, run_world, scaling_sweep,
    ScalingPoint, TrainRun,
};
pub use realtrain::{train_real, RealTrainConfig, RealTrainConfigBuilder, RealTrainResult};
pub use scenario::Scenario;
pub use sim::{estimate_allreduce, SimProgram, SimTrainer};
pub use simscale::{SimScalePoint, SimScaleReport};
pub use workload::{edsr_measured_workload, edsr_text_workload, resnet50_workload, to_workload};
