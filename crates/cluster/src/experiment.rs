//! Experiment runners: throughput, scaling efficiency, batch sweeps.

use dlsr_gpu::{GpuSpec, KernelCostModel, WorkloadProfile};
use dlsr_horovod::TensorSpec;
use dlsr_hvprof::Hvprof;
use dlsr_mpi::{MpiConfig, MpiWorld, SimCore, WorldResult};
use dlsr_net::ClusterTopology;

use crate::scenario::Scenario;
use crate::sim::{RankRun, SimTrainer};

/// Run a trainer on every rank of `topo` on the core `cfg.sim_core`
/// selects: the zero-thread driven engine for [`SimCore::Event`] (the
/// default — one thread, no locks, scales to 4096 ranks), or the legacy
/// thread-per-rank world for [`SimCore::Threaded`]. Results are
/// bitwise-identical (asserted by the equivalence suites).
pub fn run_world(
    topo: &ClusterTopology,
    cfg: MpiConfig,
    trainer: &SimTrainer,
    warmup: usize,
    steps: usize,
) -> WorldResult<RankRun> {
    match cfg.sim_core {
        // Verify builds keep ranks on the event *context* core so the
        // cross-rank checker (whose rendezvous needs concurrent ranks)
        // stays attached; the equivalence suite pins the driven engine
        // bitwise to it, so what gets verified is what gets driven.
        #[cfg(feature = "verify")]
        SimCore::Event => MpiWorld::run(topo, cfg, move |c| trainer.run(c, warmup, steps)),
        #[cfg(not(feature = "verify"))]
        SimCore::Event => MpiWorld::run_driven(topo, cfg, |_| trainer.program(warmup, steps)),
        SimCore::Threaded => MpiWorld::run(topo, cfg, move |c| trainer.run(c, warmup, steps)),
    }
}

/// Result of one distributed training measurement.
#[derive(Debug, Clone)]
pub struct TrainRun {
    /// Scenario evaluated.
    pub scenario: Scenario,
    /// Total GPUs.
    pub gpus: usize,
    /// Aggregate training throughput (images/second, all GPUs).
    pub images_per_sec: f64,
    /// Scaling efficiency vs. a single GPU: `T_N / (N · T_1)`.
    pub efficiency: f64,
    /// Average step time (seconds).
    pub step_time: f64,
    /// Rank 0's allreduce profile over the measured window.
    pub profile: Hvprof,
    /// Registration-cache statistics of a node-leader rank (rank 0).
    pub regcache: dlsr_net::RegCacheStats,
    /// Registration-cache hit rate of a node-leader rank.
    pub regcache_hit_rate: f64,
    /// Merged HOROVOD_TIMELINE-style trace (all ranks, measured window).
    pub timeline: dlsr_hvprof::Timeline,
    /// Structured trace spans from every rank over the measured window
    /// (empty unless the `dlsr-trace` collector is enabled).
    pub trace: Vec<dlsr_trace::TraceEvent>,
}

/// Single-GPU reference throughput (images/second) including the jitter
/// model's mean effect — the denominator of scaling efficiency.
pub fn single_gpu_throughput(
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    batch: usize,
    seed: u64,
) -> f64 {
    let topo = ClusterTopology {
        name: "single".into(),
        nodes: 1,
        gpus_per_node: 1,
    };
    let trainer = SimTrainer::new(
        workload.clone(),
        tensors.to_vec(),
        batch,
        Scenario::MpiOpt,
        &topo,
        seed,
    )
    .expect("single-GPU batch must fit");
    let warmup = 2;
    let steps = 20;
    let res = run_world(
        &topo,
        Scenario::MpiOpt.mpi_config(),
        &trainer,
        warmup,
        steps,
    );
    let r = &res.ranks[0];
    batch as f64 * steps as f64 / (r.end - r.warm_end)
}

/// Run one distributed training measurement.
#[allow(clippy::too_many_arguments)]
pub fn run_training(
    topo: &ClusterTopology,
    scenario: Scenario,
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> TrainRun {
    run_training_core(
        topo,
        scenario,
        workload,
        tensors,
        batch,
        warmup,
        steps,
        seed,
        scenario.mpi_config().sim_core,
    )
}

/// [`run_training`] on an explicit execution core (the `--core` flag of
/// `dlsr simulate`; the equivalence suites compare the two cores through
/// this entry point).
#[allow(clippy::too_many_arguments)]
pub fn run_training_core(
    topo: &ClusterTopology,
    scenario: Scenario,
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
    core: SimCore,
) -> TrainRun {
    let trainer = SimTrainer::new(
        workload.clone(),
        tensors.to_vec(),
        batch,
        scenario,
        topo,
        seed,
    )
    .expect("per-GPU batch must fit in device memory");
    let cfg = scenario.mpi_config().to_builder().sim_core(core).build();
    run_with_trainer(
        topo, scenario, cfg, workload, tensors, trainer, batch, warmup, steps, seed,
    )
}

/// [`run_training`] with explicit Horovod tuning knobs (for the
/// fusion/cycle ablations).
#[allow(clippy::too_many_arguments)]
pub fn run_training_tuned(
    topo: &ClusterTopology,
    scenario: Scenario,
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
    hcfg: dlsr_horovod::HorovodConfig,
) -> TrainRun {
    let trainer = SimTrainer::with_horovod_config(
        workload.clone(),
        tensors.to_vec(),
        batch,
        scenario,
        topo,
        seed,
        hcfg,
    )
    .expect("per-GPU batch must fit in device memory");
    run_with_trainer(
        topo,
        scenario,
        scenario.mpi_config(),
        workload,
        tensors,
        trainer,
        batch,
        warmup,
        steps,
        seed,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_with_trainer(
    topo: &ClusterTopology,
    scenario: Scenario,
    cfg: MpiConfig,
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    trainer: SimTrainer,
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> TrainRun {
    let world = topo.total_gpus();
    let res = run_world(topo, cfg, &trainer, warmup, steps);
    // Measured window: slowest rank bounds both edges (synchronous SGD).
    let warm_end = res.ranks.iter().map(|r| r.warm_end).fold(0.0, f64::max);
    let end = res.ranks.iter().map(|r| r.end).fold(0.0, f64::max);
    let elapsed = end - warm_end;
    let images_per_sec = (world * batch * steps) as f64 / elapsed;
    let t1 = single_gpu_throughput(workload, tensors, batch, seed);
    let mut timeline = dlsr_hvprof::Timeline::new();
    let mut trace = Vec::new();
    for r in &res.ranks {
        timeline.merge(&r.timeline);
        trace.extend(r.trace.iter().cloned());
    }
    TrainRun {
        scenario,
        gpus: world,
        images_per_sec,
        efficiency: images_per_sec / (world as f64 * t1),
        step_time: elapsed / steps as f64,
        profile: res.ranks[0].prof.clone(),
        regcache: res.ranks[0].reg,
        regcache_hit_rate: res.ranks[0].reg.hit_rate(),
        timeline,
        trace,
    }
}

/// One point of a scaling study.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// GPU count.
    pub gpus: usize,
    /// Aggregate images/second.
    pub images_per_sec: f64,
    /// Scaling efficiency vs. one GPU.
    pub efficiency: f64,
}

/// Sweep node counts for one scenario (Figs 10–13).
#[allow(clippy::too_many_arguments)]
pub fn scaling_sweep(
    node_counts: &[usize],
    scenario: Scenario,
    workload: &WorkloadProfile,
    tensors: &[TensorSpec],
    batch: usize,
    warmup: usize,
    steps: usize,
    seed: u64,
) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&nodes| {
            let topo = ClusterTopology::lassen(nodes);
            let run = run_training(
                &topo, scenario, workload, tensors, batch, warmup, steps, seed,
            );
            ScalingPoint {
                gpus: run.gpus,
                images_per_sec: run.images_per_sec,
                efficiency: run.efficiency,
            }
        })
        .collect()
}

/// Single-GPU batch-size sweep (Fig 9): throughput per batch, `None` where
/// the batch OOMs on a 16 GB V100.
pub fn batch_sweep(workload: &WorkloadProfile, batches: &[usize]) -> Vec<(usize, Option<f64>)> {
    let model = KernelCostModel::new(GpuSpec::v100());
    batches
        .iter()
        .map(|&b| (b, model.throughput(workload, b, 1).ok()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::edsr_measured_workload;

    #[test]
    fn four_gpu_run_beats_one_gpu_but_not_linearly() {
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(1);
        let run = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 5, 7);
        assert_eq!(run.gpus, 4);
        let t1 = single_gpu_throughput(&w, &tensors, 4, 7);
        assert!(
            run.images_per_sec > 2.0 * t1,
            "not scaling: {} vs {t1}",
            run.images_per_sec
        );
        assert!(run.efficiency < 1.02, "superlinear: {}", run.efficiency);
        assert!(
            run.efficiency > 0.6,
            "efficiency collapsed: {}",
            run.efficiency
        );
    }

    #[test]
    fn mpi_opt_beats_default_at_multi_node_scale() {
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(4); // 16 GPUs
        let d = run_training(&topo, Scenario::MpiDefault, &w, &tensors, 4, 1, 5, 7);
        let o = run_training(&topo, Scenario::MpiOpt, &w, &tensors, 4, 1, 5, 7);
        assert!(
            o.images_per_sec > d.images_per_sec,
            "MPI-Opt {} <= default {}",
            o.images_per_sec,
            d.images_per_sec
        );
    }

    #[test]
    fn batch_sweep_rises_then_ooms() {
        let (w, _) = edsr_measured_workload();
        let sweep = batch_sweep(&w, &[1, 2, 4, 8, 16, 32, 64]);
        assert!(sweep[0].1.is_some());
        let t1 = sweep[0].1.unwrap();
        let t16 = sweep[4].1.expect("batch 16 fits");
        assert!(t16 > t1);
        assert!(sweep[6].1.is_none(), "batch 64 must OOM");
    }

    #[test]
    fn regcache_hit_rate_is_high_for_mpi_reg() {
        let (w, tensors) = edsr_measured_workload();
        let topo = ClusterTopology::lassen(2);
        let run = run_training(&topo, Scenario::MpiReg, &w, &tensors, 4, 1, 6, 7);
        assert!(
            run.regcache_hit_rate > 0.85,
            "hit rate {} (paper: 93 %)",
            run.regcache_hit_rate
        );
    }
}
