//! α–β link cost model.

use serde::{Deserialize, Serialize};

/// A point-to-point link: `time(n) = latency + n / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way latency in seconds (α).
    pub latency: f64,
    /// Sustained bandwidth in bytes/second (1/β).
    pub bandwidth: f64,
}

impl LinkModel {
    /// Construct from latency (s) and bandwidth (B/s).
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0 && bandwidth > 0.0);
        LinkModel { latency, bandwidth }
    }

    /// Transfer time for `bytes`.
    pub fn time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// The message size at which bandwidth cost equals latency cost
    /// (half-saturation point) — useful for eager/rendezvous thresholds.
    pub fn half_saturation_bytes(&self) -> u64 {
        (self.latency * self.bandwidth) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_affine_in_bytes() {
        let l = LinkModel::new(1e-6, 1e9);
        assert!((l.time(0) - 1e-6).abs() < 1e-12);
        assert!((l.time(1_000_000) - (1e-6 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn half_saturation() {
        let l = LinkModel::new(2e-6, 10e9);
        assert_eq!(l.half_saturation_bytes(), 20_000);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(1e-6, 0.0);
    }
}
