//! InfiniBand memory-registration cache (§III-D).
//!
//! RDMA requires communication buffers to be registered (page-pinned), a
//! kernel operation whose cost grows with buffer size. MVAPICH2 caches
//! registrations so a buffer reused across iterations — exactly what
//! Horovod's persistent fusion buffer does — pays the pin cost once.
//! The paper measured a **93 % hit rate** and **+5.1 % training throughput**
//! from enabling this cache for PyTorch (Fig 11).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};

/// Multiply-xor hasher for the `(buffer id, length)` keys — the cache is
/// looked up once per send (and once per RDMA receive), so the default
/// SipHash cost is pure overhead here. Unlike `RandomState` it is also
/// deterministic across processes, which keeps the map's iteration order
/// (and therefore any LRU tie-breaking) reproducible.
#[derive(Default)]
pub struct RegKeyHasher {
    hash: u64,
}

impl Hasher for RegKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

impl RegKeyHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // FxHash-style rotate-xor-multiply: two multiplies per key, no
        // per-byte loop for the u64 components.
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegCacheStats {
    /// Lookups that found a live registration.
    pub hits: u64,
    /// Lookups that had to register.
    pub misses: u64,
    /// Registrations evicted to make room.
    pub evictions: u64,
}

impl RegCacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU registration cache keyed by `(buffer identity, length)`.
#[derive(Debug)]
pub struct RegistrationCache {
    capacity_bytes: u64,
    used_bytes: u64,
    tick: u64,
    entries: HashMap<(u64, u64), Entry, BuildHasherDefault<RegKeyHasher>>,
    stats: RegCacheStats,
    enabled: bool,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: u64,
    last_use: u64,
}

impl RegistrationCache {
    /// Cache holding at most `capacity_bytes` of registered memory.
    pub fn new(capacity_bytes: u64) -> Self {
        RegistrationCache {
            capacity_bytes,
            used_bytes: 0,
            tick: 0,
            // dlsr-lint: allow(determinism-taint) -- fixed RegKeyHasher
            // (BuildHasherDefault) makes iteration order a pure function of
            // the insertion sequence, which is itself deterministic
            entries: HashMap::default(),
            stats: RegCacheStats::default(),
            enabled: true,
        }
    }

    /// A disabled cache: every lookup is a miss and nothing is retained
    /// (the pre-fix MVAPICH2 behaviour for DL frameworks).
    pub fn disabled() -> Self {
        let mut c = Self::new(0);
        c.enabled = false;
        c
    }

    /// Whether caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Look up a buffer; registers it on miss (evicting LRU entries as
    /// needed). Returns `true` on hit (no pin cost), `false` on miss (the
    /// caller charges the pin cost).
    pub fn lookup(&mut self, buffer_id: u64, bytes: u64) -> bool {
        use dlsr_trace::report::keys;
        self.tick += 1;
        if !self.enabled {
            self.stats.misses += 1;
            dlsr_trace::counter_add(keys::REGCACHE_MISSES, 1.0);
            return false;
        }
        let key = (buffer_id, bytes);
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_use = self.tick;
            self.stats.hits += 1;
            dlsr_trace::counter_add(keys::REGCACHE_HITS, 1.0);
            return true;
        }
        self.stats.misses += 1;
        dlsr_trace::counter_add(keys::REGCACHE_MISSES, 1.0);
        // evict until the new registration fits
        while self.used_bytes + bytes > self.capacity_bytes && !self.entries.is_empty() {
            let (&victim, _) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .expect("non-empty cache");
            let removed = self.entries.remove(&victim).expect("victim exists");
            self.used_bytes -= removed.bytes;
            self.stats.evictions += 1;
            dlsr_trace::counter_add(dlsr_trace::report::keys::REGCACHE_EVICTIONS, 1.0);
        }
        if bytes <= self.capacity_bytes {
            self.entries.insert(
                key,
                Entry {
                    bytes,
                    last_use: self.tick,
                },
            );
            self.used_bytes += bytes;
        }
        false
    }

    /// Invalidate a buffer's registration (e.g. the allocator returned the
    /// memory — the TensorFlow conflict that historically forced the cache
    /// off, see §III-D).
    pub fn invalidate(&mut self, buffer_id: u64, bytes: u64) {
        if let Some(e) = self.entries.remove(&(buffer_id, bytes)) {
            self.used_bytes -= e.bytes;
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RegCacheStats {
        self.stats
    }

    /// Registered bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_hits_after_first_miss() {
        let mut c = RegistrationCache::new(1 << 30);
        assert!(!c.lookup(1, 1024));
        assert!(c.lookup(1, 1024));
        assert!(c.lookup(1, 1024));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn different_length_is_a_different_registration() {
        let mut c = RegistrationCache::new(1 << 30);
        assert!(!c.lookup(1, 1024));
        assert!(!c.lookup(1, 2048));
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut c = RegistrationCache::new(3000);
        c.lookup(1, 1000);
        c.lookup(2, 1000);
        c.lookup(3, 1000);
        // touch 1 so 2 becomes LRU
        assert!(c.lookup(1, 1000));
        c.lookup(4, 1000); // evicts 2
        assert!(c.lookup(1, 1000), "1 should survive");
        assert!(!c.lookup(2, 1000), "2 was evicted");
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = RegistrationCache::disabled();
        assert!(!c.lookup(1, 8));
        assert!(!c.lookup(1, 8));
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn invalidate_forces_repin() {
        let mut c = RegistrationCache::new(1 << 20);
        c.lookup(7, 512);
        c.invalidate(7, 512);
        assert!(!c.lookup(7, 512));
    }

    #[test]
    fn oversize_registration_is_not_cached() {
        let mut c = RegistrationCache::new(100);
        assert!(!c.lookup(1, 1000));
        assert!(
            !c.lookup(1, 1000),
            "entry larger than capacity never caches"
        );
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn horovod_like_reuse_pattern_reaches_90_plus_percent() {
        // Fusion buffer reused every step + a fresh small tensor now and
        // then → the ~93 % hit rate of Fig 11.
        let mut c = RegistrationCache::new(1 << 30);
        for step in 0..100u64 {
            c.lookup(1, 64 << 20); // persistent fusion buffer
            c.lookup(2, 4 << 20); // persistent small buffer
            if step % 10 == 0 {
                c.lookup(100 + step, 1 << 20); // occasional fresh allocation
            }
        }
        let rate = c.stats().hit_rate();
        assert!((0.90..0.99).contains(&rate), "hit rate {rate}");
    }
}
