//! Typed transport-layer errors.
//!
//! The simulated wire can now fail (message loss, corruption — see
//! `dlsr-faults`), and failures must be *values* the layer above can
//! answer with a retry/timeout/backoff policy, not panics. A
//! [`TransportError`] describes one failed transmission attempt;
//! `dlsr_mpi::CommError` wraps it with communicator context and decides
//! whether to retry or abort the world.

use std::fmt;

/// One failed transmission attempt on the simulated wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The message was dropped in flight; the sender's timeout fired.
    Lost {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Which transmission attempt this was (1-based).
        attempt: u32,
    },
    /// The message arrived but failed its integrity check; the receiver
    /// discards it and the sender retransmits.
    Corrupted {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Which transmission attempt this was (1-based).
        attempt: u32,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Lost { src, dst, attempt } => {
                write!(
                    f,
                    "message {src} -> {dst} lost in flight (attempt {attempt})"
                )
            }
            TransportError::Corrupted { src, dst, attempt } => {
                write!(
                    f,
                    "message {src} -> {dst} failed integrity check (attempt {attempt})"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let lost = TransportError::Lost {
            src: 2,
            dst: 5,
            attempt: 3,
        };
        assert!(lost.to_string().contains("2 -> 5"));
        assert!(lost.to_string().contains("attempt 3"));
        let bad = TransportError::Corrupted {
            src: 0,
            dst: 1,
            attempt: 1,
        };
        assert!(bad.to_string().contains("integrity"));
    }
}
