//! Transport selection and timing — the heart of the paper's optimization.
//!
//! For every message the MPI layer asks: *which path can this buffer take?*
//!
//! - small messages (< eager threshold) ride the host-based **eager**
//!   protocol regardless of device masks — which is why Table I's small
//!   bins show no improvement from the IPC fix;
//! - intra-node large messages take **NVLink P2P** when the MPI library can
//!   open a CUDA IPC mapping (`MV2_VISIBLE_DEVICES`), and otherwise fall
//!   back to **host staging** (D2H → host buffer → H2D). On Lassen the
//!   staging path rides CPU–GPU NVLink, so the penalty is ≈2×, matching
//!   Table I's 49–53 % improvements when IPC is restored;
//! - inter-node messages take **InfiniBand EDR**, paying a page-pinning
//!   (registration) cost unless the registration cache holds the buffer.
//!
//! MVAPICH2 only engages the IPC rendezvous design above an internal
//! threshold (`ipc_large_threshold`, 16 MB here) — below it the staged
//! pipeline is used either way, reproducing the ≈0 % delta of the
//! 128 KB–16 MB bin.

use serde::{Deserialize, Serialize};

use crate::link::LinkModel;

/// Which path a message takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportPath {
    /// Same device (self-send / local reduce).
    DeviceLocal,
    /// Intra-node GPU↔GPU over NVLink via a CUDA IPC mapping.
    NvlinkP2p,
    /// Intra-node via pinned host bounce buffers (IPC unavailable or
    /// message below the IPC threshold).
    HostStaged,
    /// Inter-node over InfiniBand with GPUDirect RDMA (large messages).
    IbRdma,
    /// Inter-node small-message eager path through host memory.
    IbEager,
}

/// Calibrated link constants for a Lassen-class node (Fig 8: 4×V100 with
/// NVLink2, POWER9 host links, EDR InfiniBand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransportModel {
    /// Same-device copy (HBM-to-HBM).
    pub d2d: LinkModel,
    /// GPU↔GPU NVLink peer copy (IPC mapped).
    pub nvlink: LinkModel,
    /// Host-staged intra-node pipeline (D2H + H2D, pipelined chunks).
    pub staged: LinkModel,
    /// InfiniBand EDR rendezvous/RDMA path.
    pub ib: LinkModel,
    /// InfiniBand eager path (small messages through host).
    pub ib_eager: LinkModel,
    /// InfiniBand as driven by NCCL's transport (NCCL 2.8 on POWER9 lacked
    /// the tuned GDR pipelines of MVAPICH2-GDR — the OSU comparison the
    /// paper's Figs 12–13 rest on — so its effective inter-node bandwidth
    /// is somewhat lower and its per-message latency higher).
    pub nccl_ib: LinkModel,
    /// Eager/rendezvous switchover in bytes.
    pub eager_threshold: u64,
    /// Minimum message size for the CUDA IPC rendezvous design.
    pub ipc_large_threshold: u64,
    /// Fixed cost of registering (pinning) a buffer for RDMA.
    pub pin_base: f64,
    /// Per-byte pinning cost (page-table walk + pin).
    pub pin_per_byte: f64,
}

impl Default for TransportModel {
    fn default() -> Self {
        Self::lassen()
    }
}

impl TransportModel {
    /// Constants for Lassen (V100 SXM2 + NVLink2 + POWER9 + EDR IB).
    pub fn lassen() -> Self {
        TransportModel {
            d2d: LinkModel::new(1.0e-6, 700.0e9),
            // Effective P2P bandwidth between Lassen GPU pairs: the
            // non-adjacent pairs hop through the POWER9, so sustained
            // allreduce-pattern P2P lands near 25 GB/s rather than a single
            // link's peak.
            nvlink: LinkModel::new(2.5e-6, 25.0e9),
            // Host staging without IPC pipelines through bounce buffers in
            // main memory ("MPI must default to main memory for all GPU
            // transfers", §III-C) — ≈2× slower than the P2P path, the
            // ratio Table I's 16–64 MB rows exhibit.
            staged: LinkModel::new(15.0e-6, 11.0e9),
            ib: LinkModel::new(1.5e-6, 12.0e9),
            ib_eager: LinkModel::new(3.0e-6, 6.0e9),
            nccl_ib: LinkModel::new(5.0e-6, 9.0e9),
            eager_threshold: 16 << 10,
            ipc_large_threshold: 16 << 20,
            pin_base: 20.0e-6,
            // Effective pin rate of a modern HCA with large pages; chosen so
            // the registration cache recovers the paper's ≈5 % average
            // throughput (Fig 11), not more.
            pin_per_byte: 1.0 / 8.0e9,
        }
    }

    /// Pick the path for a message of `bytes` between two ranks.
    ///
    /// `ipc_available` is the MPI library's verdict for this device pair
    /// (see `dlsr_gpu::DeviceEnv::ipc_possible` + a successful
    /// `cuIpcOpenMemHandle`).
    pub fn path(
        &self,
        same_device: bool,
        same_node: bool,
        ipc_available: bool,
        bytes: u64,
    ) -> TransportPath {
        if same_device {
            return TransportPath::DeviceLocal;
        }
        if same_node {
            if ipc_available && bytes >= self.ipc_large_threshold {
                TransportPath::NvlinkP2p
            } else {
                TransportPath::HostStaged
            }
        } else if bytes < self.eager_threshold {
            TransportPath::IbEager
        } else {
            TransportPath::IbRdma
        }
    }

    /// Pure transfer time on a path (excluding registration costs).
    pub fn transfer_time(&self, path: TransportPath, bytes: u64) -> f64 {
        match path {
            TransportPath::DeviceLocal => self.d2d.time(bytes),
            TransportPath::NvlinkP2p => self.nvlink.time(bytes),
            TransportPath::HostStaged => self.staged.time(bytes),
            TransportPath::IbRdma => self.ib.time(bytes),
            TransportPath::IbEager => self.ib_eager.time(bytes),
        }
    }

    /// Transfer time as NCCL's transport would see it: intra-node paths are
    /// identical (same NVLink), inter-node rides NCCL's own IB transport.
    pub fn transfer_time_nccl(&self, path: TransportPath, bytes: u64) -> f64 {
        match path {
            TransportPath::IbRdma | TransportPath::IbEager => self.nccl_ib.time(bytes),
            other => self.transfer_time(other, bytes),
        }
    }

    /// Cost of pinning `bytes` for RDMA (charged on registration-cache
    /// misses for `IbRdma` messages).
    pub fn pin_time(&self, bytes: u64) -> f64 {
        self.pin_base + bytes as f64 * self.pin_per_byte
    }

    /// Does this path require memory registration?
    pub fn needs_registration(&self, path: TransportPath) -> bool {
        matches!(path, TransportPath::IbRdma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn small_messages_stage_through_host_regardless_of_ipc() {
        let t = TransportModel::lassen();
        // Table I rows 1–2: no improvement below 16 MB because the staged
        // pipeline is used with or without IPC.
        for &b in &[4 * 1024, 256 * 1024, 8 * MB] {
            assert_eq!(t.path(false, true, true, b), TransportPath::HostStaged);
            assert_eq!(t.path(false, true, false, b), TransportPath::HostStaged);
        }
    }

    #[test]
    fn large_intra_node_messages_need_ipc_for_nvlink() {
        let t = TransportModel::lassen();
        assert_eq!(t.path(false, true, true, 32 * MB), TransportPath::NvlinkP2p);
        assert_eq!(
            t.path(false, true, false, 32 * MB),
            TransportPath::HostStaged
        );
    }

    #[test]
    fn nvlink_vs_staged_ratio_matches_table1() {
        // Table I: 16–32 MB bin improves 53.1 %, 32–64 MB improves 49.7 %
        // — i.e. the staged path is ≈2× the NVLink path for large buffers.
        let t = TransportModel::lassen();
        for &b in &[24 * MB, 48 * MB] {
            let ratio = t.transfer_time(TransportPath::HostStaged, b)
                / t.transfer_time(TransportPath::NvlinkP2p, b);
            assert!((1.8..2.6).contains(&ratio), "ratio {ratio} at {b} bytes");
        }
    }

    #[test]
    fn inter_node_paths() {
        let t = TransportModel::lassen();
        assert_eq!(t.path(false, false, true, 1024), TransportPath::IbEager);
        assert_eq!(t.path(false, false, false, 32 * MB), TransportPath::IbRdma);
        assert!(t.needs_registration(TransportPath::IbRdma));
        assert!(!t.needs_registration(TransportPath::IbEager));
    }

    #[test]
    fn same_device_short_circuits() {
        let t = TransportModel::lassen();
        assert_eq!(
            t.path(true, true, false, 64 * MB),
            TransportPath::DeviceLocal
        );
    }

    #[test]
    fn pin_cost_grows_with_size_and_matters_for_large_buffers() {
        let t = TransportModel::lassen();
        let pin64 = t.pin_time(64 * MB);
        let xfer64 = t.transfer_time(TransportPath::IbRdma, 64 * MB);
        // pinning a 64 MB buffer costs a meaningful fraction of its transfer
        assert!(pin64 > 0.2 * xfer64, "pin {pin64} vs xfer {xfer64}");
        assert!(t.pin_time(0) >= t.pin_base);
    }
}
