//! `dlsr-net` — interconnect transport models for the simulated cluster.
//!
//! Models the three data paths a GPU buffer can take on a Lassen-class
//! machine (paper Fig 8), each as an α–β (latency–bandwidth) cost model:
//!
//! - **NVLink peer-to-peer** (CUDA IPC mapped): the fast intra-node path
//!   restored by `MV2_VISIBLE_DEVICES`,
//! - **host-staged** (D2H → host → H2D): the fallback MPI takes when CUDA
//!   IPC is unavailable — on Lassen this still rides CPU–GPU NVLink, so it
//!   is ≈2× slower, not catastrophic (exactly the Table I ratio),
//! - **InfiniBand EDR** between nodes, with page-pinning (memory
//!   registration) costs and the registration cache that eliminates them
//!   on buffer reuse (§III-D), plus a GPUDirect-RDMA path.

#![forbid(unsafe_code)]
pub mod error;
pub mod link;
pub mod regcache;
pub mod topology;
pub mod transport;

pub use error::TransportError;
pub use link::LinkModel;
pub use regcache::{RegCacheStats, RegistrationCache};
pub use topology::{ClusterTopology, FatTree};
pub use transport::{TransportModel, TransportPath};
