//! Cluster topology descriptions for the evaluation platforms of §IV-A.

use serde::{Deserialize, Serialize};

/// Static description of a GPU cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Human-readable system name.
    pub name: String,
    /// Number of compute nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl ClusterTopology {
    /// Lassen (LLNL): 792 nodes × 4 V100, NVLink intra-node, IB EDR
    /// inter-node (Fig 8). The paper scales to 128 of its nodes.
    pub fn lassen(nodes: usize) -> Self {
        assert!(nodes <= 792, "Lassen has 792 GPU nodes");
        ClusterTopology {
            name: "Lassen".into(),
            nodes,
            gpus_per_node: 4,
        }
    }

    /// Longhorn (TACC): 96 nodes × 4 V100.
    pub fn longhorn(nodes: usize) -> Self {
        assert!(nodes <= 96, "Longhorn has 96 nodes");
        ClusterTopology {
            name: "Longhorn".into(),
            nodes,
            gpus_per_node: 4,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node index of a global rank (one rank per GPU, dense mapping).
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Local device index of a global rank.
    pub fn local_of(&self, rank: usize) -> usize {
        rank % self.gpus_per_node
    }

    /// Are two ranks on the same node?
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// A two-level fat tree over the cluster's nodes: groups of `leaf_radix`
/// nodes share a leaf switch; traffic between groups crosses the spine.
/// Lassen's EDR fabric is a (pruned) fat tree of this shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatTree {
    /// Nodes per leaf switch.
    pub leaf_radix: usize,
    /// Per-switch-hop latency in seconds.
    pub hop_latency: f64,
}

impl FatTree {
    /// Lassen-like: 18 nodes per leaf switch (36-port EDR, half down).
    pub fn lassen() -> Self {
        FatTree {
            leaf_radix: 18,
            hop_latency: 0.4e-6,
        }
    }

    /// Switch hops between two nodes: 0 intra-node, 2 within a leaf group,
    /// 4 across the spine.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            0
        } else if a / self.leaf_radix == b / self.leaf_radix {
            2
        } else {
            4
        }
    }

    /// Latency added on top of the base (2-hop) InfiniBand figure.
    pub fn extra_latency(&self, a: usize, b: usize) -> f64 {
        self.hops(a, b).saturating_sub(2) as f64 * self.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_hop_counts() {
        let ft = FatTree::lassen();
        assert_eq!(ft.hops(3, 3), 0);
        assert_eq!(ft.hops(0, 17), 2, "same leaf group");
        assert_eq!(ft.hops(0, 18), 4, "across the spine");
        assert_eq!(ft.extra_latency(0, 17), 0.0);
        assert!((ft.extra_latency(0, 127) - 0.8e-6).abs() < 1e-12);
    }

    #[test]
    fn lassen_mapping() {
        let t = ClusterTopology::lassen(128);
        assert_eq!(t.total_gpus(), 512);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.local_of(5), 1);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    #[should_panic(expected = "792")]
    fn oversize_lassen_rejected() {
        let _ = ClusterTopology::lassen(1000);
    }
}
