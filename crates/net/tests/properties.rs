//! Property-based tests for the network substrate: registration-cache
//! invariants and transport-model sanity over arbitrary inputs.

use proptest::prelude::*;

use dlsr_net::{LinkModel, RegistrationCache, TransportModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache never holds more than its capacity, never double-counts,
    /// and a repeated lookup immediately after a successful insert hits.
    #[test]
    fn regcache_capacity_and_reuse(
        capacity in 1u64..10_000,
        ops in proptest::collection::vec((0u64..20, 1u64..4_000), 1..200),
    ) {
        let mut cache = RegistrationCache::new(capacity);
        let mut lookups = 0u64;
        for &(id, bytes) in &ops {
            let _ = cache.lookup(id, bytes);
            lookups += 1;
            prop_assert!(cache.used_bytes() <= capacity,
                "cache holds {} of {capacity}", cache.used_bytes());
            if bytes <= capacity {
                // the entry we just inserted (or refreshed) must now hit
                prop_assert!(cache.lookup(id, bytes), "immediate re-lookup missed");
                lookups += 1;
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, lookups);
    }

    /// Disabled caches never hit, regardless of access pattern.
    #[test]
    fn disabled_cache_never_hits(ops in proptest::collection::vec((0u64..5, 1u64..100), 1..50)) {
        let mut cache = RegistrationCache::disabled();
        for &(id, bytes) in &ops {
            prop_assert!(!cache.lookup(id, bytes));
        }
        prop_assert_eq!(cache.stats().hits, 0);
    }

    /// Link time is monotone in message size and at least the latency.
    #[test]
    fn link_time_monotone(lat_us in 0u32..100, bw_mbs in 1u32..100_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let link = LinkModel::new(lat_us as f64 * 1e-6, bw_mbs as f64 * 1e6);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(link.time(lo) <= link.time(hi));
        prop_assert!(link.time(lo) >= link.latency);
    }

    /// Path selection is total and consistent: intra-node messages never
    /// take IB, inter-node never take NVLink/staged, and the IPC threshold
    /// gates NVLink exactly.
    #[test]
    fn path_selection_consistency(bytes in 0u64..(256 << 20), ipc in proptest::bool::ANY) {
        use dlsr_net::TransportPath as P;
        let t = TransportModel::lassen();
        let intra = t.path(false, true, ipc, bytes);
        prop_assert!(matches!(intra, P::NvlinkP2p | P::HostStaged));
        prop_assert_eq!(
            intra == P::NvlinkP2p,
            ipc && bytes >= t.ipc_large_threshold
        );
        let inter = t.path(false, false, ipc, bytes);
        prop_assert!(matches!(inter, P::IbRdma | P::IbEager));
        prop_assert_eq!(inter == P::IbEager, bytes < t.eager_threshold);
        // registration is required exactly on the RDMA path
        prop_assert_eq!(t.needs_registration(inter), inter == P::IbRdma);
        prop_assert!(!t.needs_registration(intra));
    }

    /// Transfer + pin costs are finite and non-negative everywhere.
    #[test]
    fn costs_are_sane(bytes in 0u64..(1 << 30)) {
        use dlsr_net::TransportPath as P;
        let t = TransportModel::lassen();
        for p in [P::DeviceLocal, P::NvlinkP2p, P::HostStaged, P::IbRdma, P::IbEager] {
            let dt = t.transfer_time(p, bytes);
            prop_assert!(dt.is_finite() && dt >= 0.0);
            let nccl = t.transfer_time_nccl(p, bytes);
            prop_assert!(nccl.is_finite() && nccl >= 0.0);
        }
        let pin = t.pin_time(bytes);
        prop_assert!(pin >= t.pin_base);
    }
}
