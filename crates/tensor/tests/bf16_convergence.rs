//! Convergence-equivalence test for the bf16 storage path.
//!
//! The bf16 contract is deliberately weaker than the f32 determinism
//! contract: panels are stored in bf16 (round-to-nearest-even) but all
//! accumulation stays in f32, so results are *close*, not bitwise. The
//! promise worth testing is that training behaves the same: a small
//! teacher–student conv regression driven by SGD must converge to the
//! same loss floor with bf16 storage as with f32 storage, and the loss
//! trajectories must track each other step for step.
//!
//! Feature-gated; runs only under `--features bf16`. This file is its own
//! test binary so flipping the process-global bf16 switch cannot race
//! other tensor tests.

#![cfg(feature = "bf16")]
#![forbid(unsafe_code)]

use dlsr_tensor::conv::{conv2d_backward, conv2d_fused, Act, Conv2dParams};
use dlsr_tensor::{init, tune, Tensor};

const STEPS: usize = 120;
const LR: f32 = 0.3;

/// Train a single 3×3 conv layer to match a fixed teacher; return the
/// per-step MSE losses.
fn train_losses() -> Vec<f32> {
    let p = Conv2dParams::same(3);
    let x = init::uniform([2, 3, 8, 8], -1.0, 1.0, 11);
    let teacher_w = init::uniform([4, 3, 3, 3], -0.5, 0.5, 12);
    let teacher_b = vec![0.1f32, -0.2, 0.05, 0.3];
    let target =
        conv2d_fused(&x, &teacher_w, Some(&teacher_b), Act::Identity, p).expect("teacher forward");

    let mut w = init::uniform([4, 3, 3, 3], -0.3, 0.3, 13);
    let mut b = vec![0.0f32; 4];
    let mut losses = Vec::with_capacity(STEPS);
    for _ in 0..STEPS {
        let y = conv2d_fused(&x, &w, Some(&b), Act::Identity, p).expect("student forward");
        let len = y.data().len() as f32;
        let mut loss = 0.0f32;
        let mut grad = Tensor::zeros(y.shape().clone());
        for (g, (&yi, &ti)) in grad
            .data_mut()
            .iter_mut()
            .zip(y.data().iter().zip(target.data()))
        {
            let d = yi - ti;
            loss += d * d / len;
            *g = 2.0 * d / len;
        }
        losses.push(loss);
        let (_gx, gw, gb) = conv2d_backward(&x, &w, &grad, p).expect("backward");
        for (wi, gi) in w.data_mut().iter_mut().zip(gw.data()) {
            *wi -= LR * gi;
        }
        for (bi, gi) in b.iter_mut().zip(&gb) {
            *bi -= LR * gi;
        }
    }
    losses
}

#[test]
fn bf16_training_tracks_f32_convergence() {
    tune::set_bf16(false);
    let f32_losses = train_losses();
    tune::set_bf16(true);
    let bf16_losses = train_losses();
    tune::set_bf16(false);

    // Both runs must actually converge…
    let (f32_final, bf16_final) = (
        *f32_losses.last().expect("losses"),
        *bf16_losses.last().expect("losses"),
    );
    assert!(
        f32_final < 0.05 * f32_losses[0],
        "f32 baseline failed to converge: {f32_losses:?}"
    );
    assert!(
        bf16_final < 0.05 * bf16_losses[0],
        "bf16 run failed to converge: {bf16_losses:?}"
    );

    // …and the bf16 trajectory must track f32 step for step. bf16 keeps
    // 8 mantissa bits, so per-step relative slack is generous but bounded.
    for (step, (&lf, &lb)) in f32_losses.iter().zip(&bf16_losses).enumerate() {
        let rel = (lf - lb).abs() / lf.abs().max(1e-6);
        assert!(
            rel < 0.25,
            "bf16 loss diverged from f32 at step {step}: {lf} vs {lb} (rel {rel:.3})"
        );
    }
    // Equivalent floors, not bitwise equality — that is the contract.
    assert!(
        (f32_final - bf16_final).abs() / f32_final.max(1e-6) < 0.5,
        "final losses not equivalent: {f32_final} vs {bf16_final}"
    );
}
