//! Steady-state allocation behavior of the kernel scratch pool.
//!
//! Lives in its own integration-test binary: `cargo test` runs each test
//! binary in its own process, so no concurrently running unit test can
//! touch the global pool or the allocation counter while this asserts on
//! them.

use dlsr_tensor::conv::{conv2d_backward, conv2d_fused_into, Act, Conv2dParams};
use dlsr_tensor::{init, scratch, Tensor};

/// After warm-up, a training-shaped conv forward+backward loop must hit
/// the scratch pool every time: zero allocator events across steady-state
/// iterations. This is the acceptance gate for the "allocation-free in
/// steady state" kernel contract.
#[test]
fn conv_forward_backward_steady_state_does_not_allocate() {
    let p = Conv2dParams::same(3);
    let x = init::uniform([4, 8, 12, 12], -1.0, 1.0, 1);
    let w = init::uniform([8, 8, 3, 3], -1.0, 1.0, 2);
    let bias = vec![0.1f32; 8];
    let mut out = Tensor::zeros([4, 8, 12, 12]);
    let go = init::uniform([4, 8, 12, 12], -1.0, 1.0, 3);

    // Warm-up: the first iterations populate the pool (and may grow
    // buffers to their steady-state capacities).
    for _ in 0..3 {
        conv2d_fused_into(&x, &w, Some(&bias), Act::Relu, p, &mut out).unwrap();
        conv2d_backward(&x, &w, &go, p).unwrap();
    }

    let before = scratch::alloc_events();
    for _ in 0..5 {
        conv2d_fused_into(&x, &w, Some(&bias), Act::Relu, p, &mut out).unwrap();
        conv2d_backward(&x, &w, &go, p).unwrap();
    }
    let after = scratch::alloc_events();
    assert_eq!(
        after,
        before,
        "conv kernels allocated {} times in steady state",
        after - before
    );
}

/// Mixed-shape steady state: alternating two different layer shapes (as a
/// real model does) must also settle into full reuse.
#[test]
fn mixed_shapes_settle_into_reuse() {
    let p = Conv2dParams::same(3);
    let x1 = init::uniform([2, 4, 10, 10], -1.0, 1.0, 4);
    let w1 = init::uniform([6, 4, 3, 3], -1.0, 1.0, 5);
    let mut out1 = Tensor::zeros([2, 6, 10, 10]);
    let x2 = init::uniform([2, 6, 10, 10], -1.0, 1.0, 6);
    let w2 = init::uniform([4, 6, 3, 3], -1.0, 1.0, 7);
    let mut out2 = Tensor::zeros([2, 4, 10, 10]);

    for _ in 0..3 {
        conv2d_fused_into(&x1, &w1, None, Act::Relu, p, &mut out1).unwrap();
        conv2d_fused_into(&x2, &w2, None, Act::Identity, p, &mut out2).unwrap();
    }
    let before = scratch::alloc_events();
    for _ in 0..5 {
        conv2d_fused_into(&x1, &w1, None, Act::Relu, p, &mut out1).unwrap();
        conv2d_fused_into(&x2, &w2, None, Act::Identity, p, &mut out2).unwrap();
    }
    assert_eq!(scratch::alloc_events(), before);
}
