//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;

use dlsr_tensor::conv::{
    conv2d, conv2d_backward, conv2d_backward_reference, conv2d_reference, Conv2dParams,
};
use dlsr_tensor::kernels::KernelId;
use dlsr_tensor::matmul::{self, matmul, transpose, BSrc, Epilogue, Im2colView};
use dlsr_tensor::shuffle::{pixel_shuffle, pixel_unshuffle};
use dlsr_tensor::tune::{self, Blueprint, ParHint};
use dlsr_tensor::{elementwise, reduce, resize, scratch, Tensor};

/// Drive the blueprint GEMM engine the way the conv path does.
fn run_gemm(bp: &Blueprint, a: &Tensor, bsrc: BSrc<'_>, m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut apack = scratch::take(matmul::packed_a_len(bp, m, k));
    matmul::pack_a(bp, a.data(), m, k, &mut apack);
    let mut c = vec![0.0f32; m * n];
    matmul::gemm(bp, &apack, bsrc, &mut c, m, k, n, Epilogue::None, false);
    c
}

/// The scalar-oracle blueprint: same `kc` (the only bit-affecting field),
/// everything else deliberately different from the selected blueprint.
fn scalar_oracle(kc: usize) -> Blueprint {
    Blueprint {
        kernel: KernelId::Scalar,
        mr: 6,
        nr: 8,
        kc,
        nc: 64,
        par: ParHint::Seq,
    }
}

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// a + b == b + a, elementwise.
    #[test]
    fn add_commutes(data in tensor_strategy(24)) {
        let a = Tensor::from_vec([24], data.clone()).unwrap();
        let b = Tensor::from_vec([24], data.iter().rev().copied().collect::<Vec<_>>()).unwrap();
        let ab = elementwise::add(&a, &b).unwrap();
        let ba = elementwise::add(&b, &a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// (a - b) + b == a up to float rounding.
    #[test]
    fn sub_then_add_roundtrips(data in tensor_strategy(32)) {
        let a = Tensor::from_vec([32], data.clone()).unwrap();
        let b = Tensor::from_vec([32], data.iter().map(|x| x * 0.5 + 1.0).collect::<Vec<_>>()).unwrap();
        let back = elementwise::add(&elementwise::sub(&a, &b).unwrap(), &b).unwrap();
        prop_assert!(back.allclose(&a, 1e-4));
    }

    /// scale(a, s) sums to s * sum(a).
    #[test]
    fn scale_is_linear_in_sum(data in tensor_strategy(16), s in -4.0f32..4.0) {
        let a = Tensor::from_vec([16], data).unwrap();
        let scaled = elementwise::scale(&a, s);
        prop_assert!((reduce::sum(&scaled) - s * reduce::sum(&a)).abs() < 1e-2);
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(data in tensor_strategy(40)) {
        let a = Tensor::from_vec([40], data).unwrap();
        let r1 = elementwise::relu(&a);
        let r2 = elementwise::relu(&r1);
        prop_assert_eq!(&r1, &r2);
        prop_assert!(r1.data().iter().all(|&x| x >= 0.0));
    }

    /// (Aᵀ)ᵀ == A for arbitrary rectangular matrices.
    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let a = dlsr_tensor::init::uniform([rows, cols], -1.0, 1.0, seed);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        prop_assert_eq!(tt, a);
    }

    /// Matmul with the identity matrix is the identity map.
    #[test]
    fn matmul_identity(n in 1usize..8, seed in 0u64..1000) {
        let a = dlsr_tensor::init::uniform([n, n], -1.0, 1.0, seed);
        let mut eye = Tensor::zeros([n, n]);
        for i in 0..n {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        let prod = matmul(&a, &eye).unwrap();
        prop_assert!(prod.allclose(&a, 1e-5));
    }

    /// The batch-parallel im2col+GEMM convolution agrees with the direct
    /// reference across the full hyper-parameter grid the stack trains
    /// with: stride ∈ {1,2}, padding ∈ {0,1,2}, kernel ∈ {1,3,5},
    /// batch ∈ {1,3,4}.
    #[test]
    fn conv_matches_reference(
        n_idx in 0usize..3,
        cin in 1usize..4,
        cout in 1usize..4,
        hw in 5usize..9,
        stride in 1usize..3,
        padding in 0usize..3,
        k_idx in 0usize..3,
        with_bias in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let n = [1usize, 3, 4][n_idx];
        let k = [1usize, 3, 5][k_idx];
        let p = Conv2dParams { stride, padding };
        let x = dlsr_tensor::init::uniform([n, cin, hw, hw], -1.0, 1.0, seed);
        let w = dlsr_tensor::init::uniform([cout, cin, k, k], -1.0, 1.0, seed + 1);
        let bias: Vec<f32> = (0..cout).map(|i| 0.1 * i as f32 - 0.2).collect();
        let b = with_bias.then_some(&bias[..]);
        let fast = conv2d(&x, &w, b, p).unwrap();
        let slow = conv2d_reference(&x, &w, b, p).unwrap();
        prop_assert!(fast.allclose(&slow, 1e-3), "diff {}", fast.max_abs_diff(&slow));
    }

    /// All three backward gradients agree with the direct-loop adjoint
    /// reference over the same hyper-parameter grid as the forward test.
    #[test]
    fn conv_backward_matches_reference(
        n_idx in 0usize..3,
        cin in 1usize..3,
        cout in 1usize..3,
        hw in 5usize..8,
        stride in 1usize..3,
        padding in 0usize..3,
        k_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let n = [1usize, 3, 4][n_idx];
        let k = [1usize, 3, 5][k_idx];
        let p = Conv2dParams { stride, padding };
        let x = dlsr_tensor::init::uniform([n, cin, hw, hw], -1.0, 1.0, seed);
        let w = dlsr_tensor::init::uniform([cout, cin, k, k], -1.0, 1.0, seed + 1);
        let (ho, wo) = (p.out_extent(hw, k), p.out_extent(hw, k));
        let go = dlsr_tensor::init::uniform([n, cout, ho, wo], -1.0, 1.0, seed + 2);
        let (gi, gw, gb) = conv2d_backward(&x, &w, &go, p).unwrap();
        let (ri, rw, rb) = conv2d_backward_reference(&x, &w, &go, p).unwrap();
        prop_assert!(gi.allclose(&ri, 1e-3), "grad_input diff {}", gi.max_abs_diff(&ri));
        prop_assert!(gw.allclose(&rw, 1e-3), "grad_weight diff {}", gw.max_abs_diff(&rw));
        for (a, b) in gb.iter().zip(rb.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "grad_bias {a} vs {b}");
        }
    }

    /// The SIMD microkernel path is **bitwise** identical to the scalar
    /// oracle for arbitrary shapes — including odd m/k/n tails that
    /// exercise the zero-padded edge panels. Only `kc` is shared between
    /// the two blueprints; kernel variant, tile geometry, `nc` and the
    /// parallel hint all differ, so this also pins the invariant that
    /// those fields never change result bits.
    #[test]
    fn gemm_simd_matches_scalar_bitwise(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        let a = dlsr_tensor::init::uniform([m, k], -1.0, 1.0, seed);
        let b = dlsr_tensor::init::uniform([k, n], -1.0, 1.0, seed + 1);
        let bp = tune::heuristic(m, k, n);
        let fast = run_gemm(&bp, &a, BSrc::Rows(b.data()), m, k, n);
        let oracle = run_gemm(&scalar_oracle(bp.kc), &a, BSrc::Rows(b.data()), m, k, n);
        prop_assert_eq!(fast, oracle);
    }

    /// The virtual im2col packer (implicit-GEMM conv) is bitwise identical
    /// to a GEMM against the materialized column matrix, across the
    /// stride/padding/kernel grid — this is the property guarding the
    /// stride-1 row-run fast path's boundary arithmetic.
    #[test]
    fn implicit_im2col_matches_materialized_bitwise(
        c_in in 1usize..4,
        hw in 4usize..9,
        k_idx in 0usize..3,
        stride in 1usize..3,
        padding in 0usize..3,
        m in 1usize..6,
        seed in 0u64..1000,
    ) {
        let kk = [1usize, 3, 5][k_idx];
        let img = dlsr_tensor::init::uniform([c_in, hw, hw], -1.0, 1.0, seed);
        let view = Im2colView::new(img.data(), (c_in, hw, hw), (kk, kk), stride, padding);
        let (kdim, n) = (view.rows(), view.cols());
        prop_assume!(n > 0);
        // materialize the column matrix by the im2col definition
        let p = Conv2dParams { stride, padding };
        let w_out = p.out_extent(hw, kk);
        let mut col = vec![0.0f32; kdim * n];
        for r in 0..kdim {
            let (c, rem) = (r / (kk * kk), r % (kk * kk));
            let (ky, kx) = (rem / kk, rem % kk);
            for j in 0..n {
                let (oy, ox) = (j / w_out, j % w_out);
                let iy = (oy * stride + ky) as isize - padding as isize;
                let ix = (ox * stride + kx) as isize - padding as isize;
                if iy >= 0 && iy < hw as isize && ix >= 0 && ix < hw as isize {
                    col[r * n + j] = img.data()[(c * hw + iy as usize) * hw + ix as usize];
                }
            }
        }
        let a = dlsr_tensor::init::uniform([m, kdim], -1.0, 1.0, seed + 1);
        let bp = tune::heuristic(m, kdim, n);
        let implicit = run_gemm(&bp, &a, BSrc::Im2col(view), m, kdim, n);
        let materialized = run_gemm(&bp, &a, BSrc::Rows(&col), m, kdim, n);
        prop_assert_eq!(implicit, materialized);
    }

    /// pixel_unshuffle inverts pixel_shuffle for any compatible shape.
    #[test]
    fn shuffle_roundtrip(c in 1usize..4, hw in 1usize..5, r in 2usize..4, seed in 0u64..1000) {
        let x = dlsr_tensor::init::uniform([1, c * r * r, hw, hw], -1.0, 1.0, seed);
        let y = pixel_shuffle(&x, r).unwrap();
        prop_assert_eq!(pixel_unshuffle(&y, r).unwrap(), x);
    }

    /// Bicubic resize preserves constant images exactly (partition of unity).
    #[test]
    fn bicubic_preserves_constants(v in -2.0f32..2.0, hw in 4usize..16, out in 2usize..24) {
        let x = Tensor::full([1, 1, hw, hw], v);
        let y = resize::bicubic_resize(&x, out, out).unwrap();
        prop_assert!(y.data().iter().all(|&p| (p - v).abs() < 1e-4));
    }

    /// Reductions: mean * n == sum; min <= mean <= max.
    #[test]
    fn reduction_relations(data in tensor_strategy(20)) {
        let t = Tensor::from_vec([20], data).unwrap();
        prop_assert!((reduce::mean(&t) * 20.0 - reduce::sum(&t)).abs() < 1e-3);
        prop_assert!(reduce::min(&t) <= reduce::mean(&t) + 1e-6);
        prop_assert!(reduce::mean(&t) <= reduce::max(&t) + 1e-6);
    }

    /// Conv linearity: conv(a + b) == conv(a) + conv(b).
    #[test]
    fn conv_is_linear(seed in 0u64..1000) {
        let p = Conv2dParams::same(3);
        let w = dlsr_tensor::init::uniform([2, 2, 3, 3], -1.0, 1.0, seed);
        let a = dlsr_tensor::init::uniform([1, 2, 5, 5], -1.0, 1.0, seed + 1);
        let b = dlsr_tensor::init::uniform([1, 2, 5, 5], -1.0, 1.0, seed + 2);
        let lhs = conv2d(&elementwise::add(&a, &b).unwrap(), &w, None, p).unwrap();
        let rhs = elementwise::add(
            &conv2d(&a, &w, None, p).unwrap(),
            &conv2d(&b, &w, None, p).unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }
}
