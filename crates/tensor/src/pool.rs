//! Pooling kernels used by the ResNet-50 comparator model.

use crate::{Result, Tensor, TensorError};

/// Max-pool an NCHW tensor with square window `k` and stride `s`.
/// Also returns the argmax indices (flat, per output element) for backward.
pub fn max_pool2d(input: &Tensor, k: usize, s: usize) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    if k == 0 || s == 0 {
        return Err(TensorError::InvalidArgument(
            "pool kernel/stride must be > 0".into(),
        ));
    }
    let h_out = (h - k) / s + 1;
    let w_out = (w - k) / s + 1;
    let mut out = Tensor::zeros([n, c, h_out, w_out]);
    let mut argmax = vec![0usize; out.numel()];
    let src = input.data();
    let dst = out.data_mut();
    let mut o = 0usize;
    for i in 0..n {
        for ci in 0..c {
            let base = (i * c + ci) * h * w;
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let idx = base + (oy * s + ky) * w + (ox * s + kx);
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    dst[o] = best;
                    argmax[o] = best_idx;
                    o += 1;
                }
            }
        }
    }
    Ok((out, argmax))
}

/// Backward of [`max_pool2d`]: route each output gradient to its argmax input.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &crate::Shape,
) -> Result<Tensor> {
    if grad_out.numel() != argmax.len() {
        return Err(TensorError::InvalidArgument(
            "grad_out and argmax length mismatch".into(),
        ));
    }
    let mut grad_in = Tensor::zeros(input_shape.clone());
    for (g, &idx) in grad_out.data().iter().zip(argmax.iter()) {
        grad_in.data_mut()[idx] += g;
    }
    Ok(grad_in)
}

/// Global average pooling: NCHW → `[N, C]`.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let plane = h * w;
    let mut out = Tensor::zeros([n, c]);
    for (i, chunk) in input.data().chunks(plane).enumerate() {
        out.data_mut()[i] = chunk.iter().sum::<f32>() / plane as f32;
    }
    Ok(out)
}

/// Backward of [`global_avg_pool`]: spread each gradient uniformly.
pub fn global_avg_pool_backward(grad_out: &Tensor, h: usize, w: usize) -> Result<Tensor> {
    let (n, c) = grad_out.shape().as_2d()?;
    let plane = h * w;
    let mut grad_in = Tensor::zeros([n, c, h, w]);
    for (i, chunk) in grad_in.data_mut().chunks_mut(plane).enumerate() {
        let g = grad_out.data()[i] / plane as f32;
        chunk.fill(g);
    }
    Ok(grad_in)
}

/// Average-pool with square window `k`, stride `s` (no padding).
pub fn avg_pool2d(input: &Tensor, k: usize, s: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    let h_out = (h - k) / s + 1;
    let w_out = (w - k) / s + 1;
    let norm = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros([n, c, h_out, w_out]);
    let src = input.data();
    let dst = out.data_mut();
    let mut o = 0usize;
    for i in 0..n {
        for ci in 0..c {
            let base = (i * c + ci) * h * w;
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += src[base + (oy * s + ky) * w + (ox * s + kx)];
                        }
                    }
                    dst[o] = acc * norm;
                    o += 1;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let (y, arg) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 3.0, 2.0, 0.0]).unwrap();
        let (_, arg) = max_pool2d(&x, 2, 2).unwrap();
        let g = Tensor::from_vec([1, 1, 1, 1], vec![5.0]).unwrap();
        let gi = max_pool2d_backward(&g, &arg, x.shape()).unwrap();
        assert_eq!(gi.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_means() {
        let x = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads() {
        let g = Tensor::from_vec([1, 1], vec![4.0]).unwrap();
        let gi = global_avg_pool_backward(&g, 2, 2).unwrap();
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn zero_kernel_is_error() {
        let x = Tensor::zeros([1, 1, 2, 2]);
        assert!(max_pool2d(&x, 0, 1).is_err());
    }
}
