//! Reusable `f32` scratch buffers for the hot kernels.
//!
//! The conv/GEMM path needs several large temporaries per call (im2col
//! matrices, packed GEMM panels, per-image gradient accumulators). Allocating
//! them with `vec![0.0; len]` on every call costs a page-zeroing memset and
//! an allocator round-trip per temporary per image — measurable at training
//! step rate. This module keeps returned buffers in a global pool so that a
//! steady-state training loop performs **no heap allocation** in the kernel
//! hot path after warm-up.
//!
//! Usage: [`take`] hands out a [`ScratchBuf`] of the requested length with
//! **unspecified contents** (callers must fully overwrite it); dropping the
//! guard returns the backing storage to the pool. The pool is global rather
//! than thread-local so buffers survive across rayon worker generations and
//! across layers sharing shapes.
//!
//! [`alloc_events`] counts how many `take` calls had to touch the allocator
//! (pool miss or capacity growth); tests assert it stays flat in steady
//! state.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Buffers kept in the pool; beyond this the pool itself would become a
/// leak. Takes of any size are still served, the excess is just freed on
/// drop.
const MAX_POOLED: usize = 64;

/// A pooled scratch buffer. Dereferences to `[f32]` of exactly the length
/// passed to [`take`]; contents on acquisition are unspecified.
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl std::ops::Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut pool = POOL.lock();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Acquire a scratch buffer of length `len` with unspecified contents.
///
/// Reuses pooled storage when a buffer with sufficient capacity is
/// available; otherwise allocates (counted by [`alloc_events`]). Safe to
/// call concurrently from rayon workers — each call returns a distinct
/// buffer.
pub fn take(len: usize) -> ScratchBuf {
    dlsr_trace::counter_add(dlsr_trace::report::keys::SCRATCH_TAKES, 1.0);
    let candidate = {
        let mut pool = POOL.lock();
        // Prefer the smallest pooled buffer that already fits, so one
        // oversized buffer does not get claimed by tiny requests.
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => Some(pool.swap_remove(i)),
            None => pool.pop(),
        }
    };
    let mut buf = candidate.unwrap_or_default();
    if buf.capacity() < len {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        dlsr_trace::counter_add(dlsr_trace::report::keys::SCRATCH_ALLOCS, 1.0);
        buf.reserve_exact(len - buf.len());
    }
    // Adjust logical length without zeroing reused storage: `resize` only
    // writes the newly exposed region, and capacity is already sufficient,
    // so this never reallocates.
    if buf.len() < len {
        buf.resize(len, 0.0);
    } else {
        buf.truncate(len);
    }
    ScratchBuf { buf }
}

/// Like [`take`], but the buffer is zero-filled.
pub fn take_zeroed(len: usize) -> ScratchBuf {
    let mut b = take(len);
    b.fill(0.0);
    b
}

/// Total number of `take` calls that had to allocate or grow storage since
/// process start. Flat across calls ⇒ the kernels hit the pool every time.
pub fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// `u16` twin of the f32 pool, backing bf16 packed panels. Kept separate so
/// the two element types never trade storage (a cast-based scheme would need
/// `unsafe`). Feature-gated: without `bf16` nothing takes u16 scratch.
#[cfg(feature = "bf16")]
static POOL_U16: Mutex<Vec<Vec<u16>>> = Mutex::new(Vec::new());

/// A pooled `u16` scratch buffer; see [`ScratchBuf`].
#[cfg(feature = "bf16")]
pub struct ScratchBufU16 {
    buf: Vec<u16>,
}

#[cfg(feature = "bf16")]
impl std::ops::Deref for ScratchBufU16 {
    type Target = [u16];

    fn deref(&self) -> &[u16] {
        &self.buf
    }
}

#[cfg(feature = "bf16")]
impl std::ops::DerefMut for ScratchBufU16 {
    fn deref_mut(&mut self) -> &mut [u16] {
        &mut self.buf
    }
}

#[cfg(feature = "bf16")]
impl Drop for ScratchBufU16 {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        let mut pool = POOL_U16.lock();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Acquire a `u16` scratch buffer of length `len` with unspecified contents
/// (bf16 packed-panel storage). Same pooling discipline as [`take`].
#[cfg(feature = "bf16")]
pub fn take_u16(len: usize) -> ScratchBufU16 {
    dlsr_trace::counter_add(dlsr_trace::report::keys::SCRATCH_TAKES, 1.0);
    let candidate = {
        let mut pool = POOL_U16.lock();
        let best = pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => Some(pool.swap_remove(i)),
            None => pool.pop(),
        }
    };
    let mut buf = candidate.unwrap_or_default();
    if buf.capacity() < len {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        dlsr_trace::counter_add(dlsr_trace::report::keys::SCRATCH_ALLOCS, 1.0);
        buf.reserve_exact(len - buf.len());
    }
    if buf.len() < len {
        buf.resize(len, 0);
    } else {
        buf.truncate(len);
    }
    ScratchBufU16 { buf }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_have_requested_length() {
        let b = take(1000);
        assert_eq!(b.len(), 1000);
        let z = take_zeroed(64);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn concurrent_takes_are_distinct() {
        let mut a = take(100);
        let mut b = take(100);
        a[0] = 1.0;
        b[0] = 2.0;
        assert_eq!(a[0], 1.0);
    }

    // Steady-state reuse is asserted in `tests/scratch_pool.rs`, which runs
    // in its own process so concurrent in-binary tests cannot race the
    // global counter.
}
