//! Deterministic random initializers.
//!
//! Every initializer takes an explicit seed: the distributed-training tests
//! rely on all ranks constructing identical parameters before the Horovod
//! broadcast, and on experiments being exactly reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Shape, Tensor};

/// Uniform values in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Standard-normal values scaled by `std` (Box–Muller on a seeded RNG).
pub fn normal(shape: impl Into<Shape>, std: f32, seed: u64) -> Tensor {
    let shape = shape.into();
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Kaiming/He-uniform initialization for a conv weight `[C_out, C_in, K_h, K_w]`
/// (the initializer used by the reference EDSR implementation).
pub fn kaiming_conv(c_out: usize, c_in: usize, kh: usize, kw: usize, seed: u64) -> Tensor {
    let fan_in = (c_in * kh * kw) as f32;
    let bound = (6.0 / fan_in).sqrt();
    uniform([c_out, c_in, kh, kw], -bound, bound, seed)
}

/// Kaiming-uniform initialization for a linear weight `[out, in]`.
pub fn kaiming_linear(out_features: usize, in_features: usize, seed: u64) -> Tensor {
    let bound = (6.0 / in_features as f32).sqrt();
    uniform([out_features, in_features], -bound, bound, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_seed_deterministic() {
        let a = uniform([16], 0.0, 1.0, 9);
        let b = uniform([16], 0.0, 1.0, 9);
        let c = uniform([16], 0.0, 1.0, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform([1000], -0.5, 0.5, 1);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let t = normal([20000], 2.0, 3);
        let mean = t.data().iter().sum::<f32>() / t.numel() as f32;
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn kaiming_bound_shrinks_with_fan_in() {
        let small = kaiming_conv(1, 1, 3, 3, 5);
        let large = kaiming_conv(1, 256, 3, 3, 5);
        let max_small = small.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_large = large.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn normal_odd_length() {
        // Box–Muller generates pairs; odd lengths must still fill exactly.
        assert_eq!(normal([7], 1.0, 1).numel(), 7);
    }
}
