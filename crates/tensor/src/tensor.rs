//! The dense `f32` tensor type.

use crate::{Result, Shape, TensorError};

/// A contiguous, row-major, dense `f32` tensor.
///
/// The data buffer always holds exactly `shape.numel()` elements. Image
/// tensors use the NCHW layout throughout the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Construct from a shape and matching data buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![shape.numel()],
                got: vec![data.len()],
                context: "Tensor::from_vec (numel vs data length)",
            });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::new(Vec::new()),
            data: vec![value],
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrow the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a scalar or 1-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a 1-element tensor");
        self.data[0]
    }

    /// Reinterpret with a new shape of identical element count (zero-copy).
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![self.data.len()],
                got: vec![shape.numel()],
                context: "reshape (element count must be preserved)",
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Bytes occupied by the payload (4 bytes per element). Used by the GPU
    /// memory model and the communication layer for message sizing.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Maximum absolute difference to another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec([2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros([3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones([3]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full([3], 2.5).data().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn size_bytes_counts_f32() {
        assert_eq!(Tensor::zeros([4, 4]).size_bytes(), 64);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2], vec![1.0, 2.5]).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.allclose(&b, 0.5));
        assert!(!a.allclose(&b, 0.4));
    }
}
