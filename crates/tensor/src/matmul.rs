//! Dense GEMM used by the im2col convolution path and fully-connected layers.
//!
//! The kernel is a straightforward cache-blocked, rayon-parallel triple loop.
//! It parallelizes over output rows, so results are deterministic regardless
//! of thread count.

use rayon::prelude::*;

use crate::{Result, Tensor, TensorError};

/// `C = A(m×k) · B(k×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (k2, n) = b.shape().as_2d()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: vec![k2],
            context: "matmul (inner dimensions)",
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// GEMM on raw slices: `c[m×n] = a[m×k] · b[k×n]`. `c` is overwritten.
///
/// Exposed so the convolution kernels can reuse scratch buffers without
/// constructing intermediate `Tensor`s.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        let arow = &a[i * k..(i + 1) * k];
        // ikj ordering: the inner loop streams both B's row and C's row,
        // which vectorizes well and avoids strided access into B.
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    });
}

/// `C = Aᵀ(k×m)ᵀ · B(k×n)` i.e. `C(m×n) = Σ_p a[p,i]·b[p,j]`, without
/// materializing the transpose. Used by conv weight gradients.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        crow.fill(0.0);
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += av * bv;
            }
        }
    });
}

/// `C = A(m×k) · Bᵀ(n×k)ᵀ` i.e. `C(m×n) = Σ_p a[i,p]·b[j,p]`, without
/// materializing the transpose. Used by conv input gradients.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);
    c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            *cv = arow.iter().zip(brow.iter()).map(|(&x, &y)| x * y).sum();
        }
    });
}

/// Transpose a 2-D tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_2d()?;
    let mut out = Tensor::zeros([n, m]);
    let src = a.data();
    out.data_mut().par_chunks_mut(m).enumerate().for_each(|(j, orow)| {
        for (i, o) in orow.iter_mut().enumerate() {
            *o = src[i * n + j];
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_naive_rectangular() {
        let (m, k, n) = (7, 5, 9);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.21).cos()).collect();
        let at = Tensor::from_vec([m, k], a.clone()).unwrap();
        let bt = Tensor::from_vec([k, n], b.clone()).unwrap();
        let c = matmul(&at, &bt).unwrap();
        let reference = naive(&a, &b, m, k, n);
        for (x, y) in c.data().iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let (k, m, n) = (6, 4, 5);
        let a: Vec<f32> = (0..k * m).map(|i| (i as f32 * 0.11).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.07).cos()).collect();
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a, &b, &mut c, k, m, n);
        // reference: transpose a then multiply
        let at = transpose(&Tensor::from_vec([k, m], a).unwrap()).unwrap();
        let reference =
            matmul(&at, &Tensor::from_vec([k, n], b).unwrap()).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.13).sin()).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.05).cos()).collect();
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b, &mut c, m, k, n);
        let bt = transpose(&Tensor::from_vec([n, k], b).unwrap()).unwrap();
        let reference =
            matmul(&Tensor::from_vec([m, k], a).unwrap(), &bt).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose(&t).unwrap(), a);
    }
}
