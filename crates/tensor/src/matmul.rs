//! Dense GEMM used by the im2col convolution path and fully-connected layers.
//!
//! # Kernel structure
//!
//! The engine is a packed, register-blocked GEMM in the BLIS style:
//! operands are first repacked into panel layouts ([`pack_a`]/[`pack_b`] and
//! their transposed variants), then [`gemm_prepacked`] drives an
//! `MR×NR = 4×16` microkernel that keeps a full accumulator tile in SIMD
//! registers. Loops are cache-blocked: `KC`-deep slices of the packed panels
//! keep the working set of one microkernel pass inside L1, and `NC`-wide
//! column blocks keep the B panels of one middle-loop pass inside L2.
//! Packing also zero-pads edge panels, so the microkernel runs without
//! bounds checks or remainder branches.
//!
//! The split between packing and driving is public because callers with an
//! operand that is constant across many multiplies (the convolution weight
//! matrix across a batch) pack it once and amortize the cost.
//!
//! # Determinism contract
//!
//! Every kernel in this module computes each output element by accumulating
//! products in a **fixed ascending k order** (`kb` blocks ascending, `p`
//! ascending within a block), and parallel execution partitions only the
//! output space (disjoint row panels of `C`). Consequently results are
//! **bitwise identical** for any thread count, including
//! `RAYON_NUM_THREADS=1`; see `row_partition_is_bitwise_deterministic` in
//! the tests for the invariant exercised directly.

use dlsr_attr as dlsr;
use rayon::prelude::*;

use crate::scratch;
use crate::{Result, Tensor, TensorError};

/// Microkernel rows: C register-tile height.
pub const MR: usize = 4;
/// Microkernel columns: C register-tile width (two AVX2 lanes of f32).
pub const NR: usize = 16;
/// K-blocking depth: one `MR×KC` A panel (4 KiB) plus one `KC×NR` B panel
/// (16 KiB) fit in a 32 KiB L1d.
const KC: usize = 256;
/// N-blocking width: one `KC×NC` packed B block (256 KiB) stays L2-resident
/// across the row panels of the middle loop. Must be a multiple of `NR`.
const NC: usize = 256;

/// Minimum `2·m·k·n` FLOP count before a GEMM fans out to rayon; below
/// this, thread dispatch costs more than the multiply.
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// What [`gemm_prepacked`] does to each output element after the dot
/// product is complete. Fusing this into the GEMM store phase saves a full
/// second pass over `C` (the convolution bias/activation pass).
///
/// `bias` is indexed by **output row** — for the convolution forward GEMM,
/// rows are output channels.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw GEMM result.
    None,
    /// `c[i,j] += bias[i]`.
    Bias(&'a [f32]),
    /// `c[i,j] = max(c[i,j], 0)`.
    Relu,
    /// `c[i,j] = max(c[i,j] + bias[i], 0)`.
    BiasRelu(&'a [f32]),
}

/// `C = A(m×k) · B(k×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (k2, n) = b.shape().as_2d()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: vec![k2],
            context: "matmul (inner dimensions)",
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// GEMM on raw slices: `c[m×n] = a[m×k] · b[k×n]`. `c` is overwritten.
///
/// Exposed so the convolution kernels can reuse scratch buffers without
/// constructing intermediate `Tensor`s. Packs both operands into pooled
/// scratch, then runs the blocked microkernel driver.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let _span = dlsr_trace::span_with(|| format!("gemm {m}x{k}x{n}"), dlsr_trace::cat::GEMM);
    let mut apack = scratch::take(packed_a_len(m, k));
    let mut bpack = scratch::take(packed_b_len(k, n));
    pack_a(a, m, k, &mut apack);
    pack_b(b, k, n, &mut bpack);
    gemm_prepacked(&apack, &bpack, c, m, k, n, Epilogue::None);
}

/// `C = Aᵀ(k×m)ᵀ · B(k×n)` i.e. `C(m×n) = Σ_p a[p,i]·b[p,j]`, without
/// materializing the transpose. Used by conv weight gradients.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let mut apack = scratch::take(packed_a_len(m, k));
    let mut bpack = scratch::take(packed_b_len(k, n));
    pack_a_transposed(a, m, k, &mut apack);
    pack_b(b, k, n, &mut bpack);
    gemm_prepacked(&apack, &bpack, c, m, k, n, Epilogue::None);
}

/// `C = A(m×k) · Bᵀ(n×k)ᵀ` i.e. `C(m×n) = Σ_p a[i,p]·b[j,p]`, without
/// materializing the transpose. Used by conv input gradients.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);
    let mut apack = scratch::take(packed_a_len(m, k));
    let mut bpack = scratch::take(packed_b_len(k, n));
    pack_a(a, m, k, &mut apack);
    pack_b_transposed(b, k, n, &mut bpack);
    gemm_prepacked(&apack, &bpack, c, m, k, n, Epilogue::None);
}

/// Length of the packed-A buffer for an `m×k` left operand.
pub fn packed_a_len(m: usize, k: usize) -> usize {
    k * m.div_ceil(MR) * MR
}

/// Length of the packed-B buffer for a `k×n` right operand.
pub fn packed_b_len(k: usize, n: usize) -> usize {
    k * n.div_ceil(NR) * NR
}

/// Pack row-major `a[m×k]` into MR-row panels (see module docs). Rows past
/// `m` in the final panel are zero-filled.
pub fn pack_a(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl(a, m, k, false, out);
}

/// Pack `a` holding `Aᵀ` row-major (`a[k×m]`, so `A[i,p] = a[p*m + i]`)
/// into the same panel layout as [`pack_a`].
pub fn pack_a_transposed(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl(a, m, k, true, out);
}

#[dlsr::hot]
fn pack_a_impl(a: &[f32], m: usize, k: usize, trans: bool, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), packed_a_len(m, k));
    let mr_pad = m.div_ceil(MR) * MR;
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        for ip in 0..mr_pad / MR {
            let base = kb * mr_pad + ip * (MR * kc);
            let dst = &mut out[base..base + MR * kc];
            for (p, drow) in dst.chunks_exact_mut(MR).enumerate() {
                for (i, d) in drow.iter_mut().enumerate() {
                    let row = ip * MR + i;
                    *d = if row < m {
                        let col = kb + p;
                        if trans {
                            a[col * m + row]
                        } else {
                            a[row * k + col]
                        }
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Pack row-major `b[k×n]` into NR-column panels (see module docs). Columns
/// past `n` in the final panel are zero-filled.
pub fn pack_b(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    pack_b_impl(b, k, n, false, out);
}

/// Pack `b` holding `Bᵀ` row-major (`b[n×k]`, so `B[p,j] = b[j*k + p]`)
/// into the same panel layout as [`pack_b`].
pub fn pack_b_transposed(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    pack_b_impl(b, k, n, true, out);
}

#[dlsr::hot]
fn pack_b_impl(b: &[f32], k: usize, n: usize, trans: bool, out: &mut [f32]) {
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), packed_b_len(k, n));
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc).div_ceil(NR) * NR;
        let block = k * jc;
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            for jp in 0..ncb / NR {
                let base = block + kb * ncb + jp * (NR * kc);
                let dst = &mut out[base..base + NR * kc];
                for (p, drow) in dst.chunks_exact_mut(NR).enumerate() {
                    for (j, d) in drow.iter_mut().enumerate() {
                        let col = jc + jp * NR + j;
                        *d = if col < n {
                            let row = kb + p;
                            if trans {
                                b[col * k + row]
                            } else {
                                b[row * n + col]
                            }
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
    }
}

/// The register microkernel: `acc += Apanel(kc×MR) · Bpanel(kc×NR)`.
///
/// `acc` is a full `MR×NR` f32 tile — 8 AVX2 registers — and both panels
/// stream sequentially, so the loop compiles to broadcast + FMA with no
/// bounds checks (the `chunks_exact` zip erases them).
#[inline]
#[dlsr::hot]
fn microkernel(apan: &[f32], bpan: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (arow, brow) in apan.chunks_exact(MR).zip(bpan.chunks_exact(NR)) {
        let ar: &[f32; MR] = arow.try_into().expect("chunks_exact yields MR");
        let br: &[f32; NR] = brow.try_into().expect("chunks_exact yields NR");
        for i in 0..MR {
            let av = ar[i];
            let acc_i = &mut acc[i];
            for j in 0..NR {
                acc_i[j] += av * br[j];
            }
        }
    }
}

/// Write (or accumulate) a microkernel tile into `C`, applying the
/// epilogue once the final k block has been summed.
#[inline]
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn store_tile(
    acc: &[[f32; NR]; MR],
    crows: &mut [f32],
    n: usize,
    rows: usize,
    j0: usize,
    cols: usize,
    accumulate: bool,
    finalize: Option<(Epilogue<'_>, usize)>,
) {
    for (i, acc_i) in acc.iter().enumerate().take(rows) {
        let dst = &mut crows[i * n + j0..i * n + j0 + cols];
        let src = &acc_i[..cols];
        if accumulate {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        } else {
            dst.copy_from_slice(src);
        }
        if let Some((epi, row0)) = finalize {
            match epi {
                Epilogue::None => {}
                Epilogue::Bias(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d += bv);
                }
                Epilogue::Relu => {
                    dst.iter_mut().for_each(|d| *d = d.max(0.0));
                }
                Epilogue::BiasRelu(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d = (*d + bv).max(0.0));
                }
            }
        }
    }
}

/// Blocked driver for one row-panel chunk of `C` (`chunk_idx`-th group of
/// `MR` rows). Sequential; parallel callers hand disjoint chunks to it.
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn gemm_rows(
    apack: &[f32],
    bpack: &[f32],
    crows: &mut [f32],
    chunk_idx: usize,
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let rows = crows.len() / n;
    let row0 = chunk_idx * MR;
    if k == 0 {
        // Empty dot products: C is the epilogue applied to zero.
        for (i, row) in crows.chunks_exact_mut(n).enumerate() {
            match epi {
                Epilogue::None | Epilogue::Relu => row.fill(0.0),
                Epilogue::Bias(bias) => row.fill(bias[row0 + i]),
                Epilogue::BiasRelu(bias) => row.fill(bias[row0 + i].max(0.0)),
            }
        }
        return;
    }
    let mr_pad = m.div_ceil(MR) * MR;
    let kb_last = (k - 1) / KC * KC;
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc).div_ceil(NR) * NR;
        let block = k * jc;
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let a_off = kb * mr_pad + chunk_idx * (MR * kc);
            let apan = &apack[a_off..a_off + MR * kc];
            let finalize = (kb == kb_last).then_some((epi, row0));
            for jp in 0..ncb / NR {
                let j0 = jc + jp * NR;
                let cols = NR.min(n - j0);
                let b_off = block + kb * ncb + jp * (NR * kc);
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(apan, &bpack[b_off..b_off + NR * kc], &mut acc);
                store_tile(&acc, crows, n, rows, j0, cols, kb != 0, finalize);
            }
        }
    }
}

/// Multiply pre-packed operands: `c[m×n] = unpack(apack) · unpack(bpack)`,
/// then apply `epi`. `c` is overwritten.
///
/// Parallelizes over disjoint `MR`-row panels of `C` when the problem is
/// large enough; see the module-level determinism contract.
pub fn gemm_prepacked(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    assert_eq!(apack.len(), packed_a_len(m, k));
    assert_eq!(bpack.len(), packed_b_len(k, n));
    assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    if 2 * m * k * n >= PAR_FLOP_THRESHOLD && rayon::current_num_threads() > 1 {
        c.par_chunks_mut(MR * n).enumerate().for_each(|(ip, rows)| {
            gemm_rows(apack, bpack, rows, ip, m, k, n, epi);
        });
    } else {
        gemm_prepacked_seq(apack, bpack, c, m, k, n, epi);
    }
}

/// Single-threaded [`gemm_prepacked`]. For callers that already hold a
/// rayon worker — the batch loop in `conv` parallelizes over images and
/// must not fan out again per image.
#[dlsr::hot]
pub fn gemm_prepacked_seq(
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    assert_eq!(apack.len(), packed_a_len(m, k));
    assert_eq!(bpack.len(), packed_b_len(k, n));
    assert_eq!(c.len(), m * n);
    if n == 0 {
        return;
    }
    for (ip, rows) in c.chunks_mut(MR * n).enumerate() {
        gemm_rows(apack, bpack, rows, ip, m, k, n, epi);
    }
}

/// Transpose a 2-D tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_2d()?;
    let mut out = Tensor::zeros([n, m]);
    let src = a.data();
    out.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, orow)| {
            for (i, o) in orow.iter_mut().enumerate() {
                *o = src[i * n + j];
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn seq(len: usize, step: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * step).sin()).collect()
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_naive_rectangular() {
        let (m, k, n) = (7, 5, 9);
        let a = seq(m * k, 0.37);
        let b = seq(k * n, 0.21);
        let at = Tensor::from_vec([m, k], a.clone()).unwrap();
        let bt = Tensor::from_vec([k, n], b.clone()).unwrap();
        let c = matmul(&at, &bt).unwrap();
        let reference = naive(&a, &b, m, k, n);
        for (x, y) in c.data().iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// Shapes that cross every blocking boundary: edge panels in M and N,
    /// multiple KC blocks, multiple NC blocks, and the 1×1×1 degenerate.
    #[test]
    fn matches_naive_across_block_boundaries() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 2),
            (MR, KC, NR),
            (MR + 1, KC + 3, NR + 1),
            (5, 2 * KC + 11, 33),
            (9, 40, NC + NR + 5),
            (2 * MR + 3, 19, 2 * NC + 1),
        ] {
            let a = seq(m * k, 0.013);
            let b = seq(k * n, 0.007);
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let reference = naive(&a, &b, m, k, n);
            for (i, (x, y)) in c.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3,
                    "({m},{k},{n}) element {i}: {x} vs {y}"
                );
            }
        }
    }

    /// The parallel decomposition is a row partition; computing any row
    /// subset independently must reproduce the full result bit for bit.
    /// This is the determinism contract: thread count only changes which
    /// worker owns a partition, never the arithmetic inside it.
    #[test]
    fn row_partition_is_bitwise_deterministic() {
        let (m, k, n) = (11, KC + 9, NC + 21);
        let a = seq(m * k, 0.023);
        let b = seq(k * n, 0.011);
        let mut full = vec![0.0; m * n];
        matmul_into(&a, &b, &mut full, m, k, n);
        // Split A after the second MR panel and compute the halves as
        // independent GEMMs.
        let m_top = 2 * MR;
        let mut top = vec![0.0; m_top * n];
        let mut bottom = vec![0.0; (m - m_top) * n];
        matmul_into(&a[..m_top * k], &b, &mut top, m_top, k, n);
        matmul_into(&a[m_top * k..], &b, &mut bottom, m - m_top, k, n);
        assert_eq!(&full[..m_top * n], &top[..]);
        assert_eq!(&full[m_top * n..], &bottom[..]);
    }

    #[test]
    fn epilogues_apply_after_full_sum() {
        let (m, k, n) = (6, KC + 5, 10);
        let a = seq(m * k, 0.017);
        let b = seq(k * n, 0.029);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 - 2.5).collect();
        let plain = naive(&a, &b, m, k, n);

        let mut apack = vec![0.0; packed_a_len(m, k)];
        let mut bpack = vec![0.0; packed_b_len(k, n)];
        pack_a(&a, m, k, &mut apack);
        pack_b(&b, k, n, &mut bpack);

        let mut c = vec![0.0; m * n];
        gemm_prepacked(&apack, &bpack, &mut c, m, k, n, Epilogue::Bias(&bias));
        for i in 0..m {
            for j in 0..n {
                let want = plain[i * n + j] + bias[i];
                assert!((c[i * n + j] - want).abs() < 1e-3);
            }
        }

        gemm_prepacked(&apack, &bpack, &mut c, m, k, n, Epilogue::BiasRelu(&bias));
        for i in 0..m {
            for j in 0..n {
                let want = (plain[i * n + j] + bias[i]).max(0.0);
                assert!((c[i * n + j] - want).abs() < 1e-3);
                assert!(c[i * n + j] >= 0.0);
            }
        }

        gemm_prepacked(&apack, &bpack, &mut c, m, k, n, Epilogue::Relu);
        assert!(c.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn prepacked_weight_reuse_matches_fresh_pack() {
        // The conv pattern: one packed A against several different Bs.
        let (m, k, n) = (8, 30, 25);
        let a = seq(m * k, 0.019);
        let mut apack = vec![0.0; packed_a_len(m, k)];
        pack_a(&a, m, k, &mut apack);
        for round in 0..3 {
            let b = seq(k * n, 0.003 * (round + 1) as f32);
            let mut via_pack = vec![0.0; m * n];
            let mut bpack = vec![0.0; packed_b_len(k, n)];
            pack_b(&b, k, n, &mut bpack);
            gemm_prepacked(&apack, &bpack, &mut via_pack, m, k, n, Epilogue::None);
            let mut direct = vec![0.0; m * n];
            matmul_into(&a, &b, &mut direct, m, k, n);
            assert_eq!(via_pack, direct);
        }
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let (k, m, n) = (KC + 6, 4, 5);
        let a = seq(k * m, 0.11);
        let b = seq(k * n, 0.07);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a, &b, &mut c, k, m, n);
        // reference: transpose a then multiply
        let at = transpose(&Tensor::from_vec([k, m], a).unwrap()).unwrap();
        let reference = matmul(&at, &Tensor::from_vec([k, n], b).unwrap()).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let (m, k, n) = (4, KC + 6, 5);
        let a = seq(m * k, 0.13);
        let b = seq(n * k, 0.05);
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b, &mut c, m, k, n);
        let bt = transpose(&Tensor::from_vec([n, k], b).unwrap()).unwrap();
        let reference = matmul(&Tensor::from_vec([m, k], a).unwrap(), &bt).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose(&t).unwrap(), a);
    }
}
