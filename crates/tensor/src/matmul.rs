//! Dense GEMM: blueprint-driven drivers over the SIMD microkernels.
//!
//! # Pipeline
//!
//! The engine is a packed, register-blocked GEMM in the BLIS style, split
//! across three modules:
//! - [`crate::kernels`] — the `MR×NR` register-tile microkernels (AVX2/FMA,
//!   AVX-512F, scalar fallback) behind one-time runtime dispatch;
//! - [`crate::tune`] — the shape-keyed selector that resolves every
//!   `(m, k, n)` to a [`Blueprint`] (kernel variant, `MR/NR/KC/NC`
//!   blocking, rayon split), seeded for the EDSR shapes and persistable to
//!   a tune-cache file;
//! - this module — operand packing and the blocked drivers.
//!
//! A is packed whole ([`pack_a`]): `KC`-deep blocks of `MR`-row panels,
//! edge panels zero-padded so the microkernel never branches. B is packed
//! **on the fly in `KC×NC` staged blocks** with ordered double buffering:
//! while the microkernels consume the current staged block, the next `KC`
//! panel is packed into the other half of the staging buffer
//! (`rayon::join`). B is described by a [`BSrc`], which the packing
//! routines read through directly — including the *virtual im2col views*
//! ([`BSrc::Im2col`]/[`BSrc::Im2colT`]) that let convolution run as
//! implicit GEMM without ever materializing a column matrix.
//!
//! # Determinism contract
//!
//! Each output element is an ascending-`k` chain of fused multiply-adds
//! (one FMA per product, inside the microkernel), with one plain partial-sum
//! add into `C` per `KC` block boundary. Therefore:
//! - **`kc` is the only blueprint field that can change result bits.** The
//!   selector derives it from the shape alone.
//! - Kernel variant (scalar/AVX2/AVX-512), tile geometry, `nc`, and the
//!   parallel split only partition the output space — results are bitwise
//!   identical across all of them, and across any thread count.
//!
//! `all_variants_bitwise_equal` and `row_partition_is_bitwise_deterministic`
//! in the tests pin both halves of the contract; `docs/KERNELS.md` states it
//! end to end (tune cache included).

use dlsr_attr as dlsr;
use rayon::prelude::*;

use crate::kernels::{self, KernelId, MAX_NR};
use crate::scratch;
use crate::tune::{self, Blueprint, ParHint};
use crate::{Result, Tensor, TensorError};

/// What the GEMM does to each output element after the dot product is
/// complete. Fusing this into the store phase saves a full second pass over
/// `C` (the convolution bias/activation pass).
///
/// `bias` is indexed by **output row** — for the convolution forward GEMM,
/// rows are output channels.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Store the raw GEMM result.
    None,
    /// `c[i,j] += bias[i]`.
    Bias(&'a [f32]),
    /// `c[i,j] = max(c[i,j], 0)`.
    Relu,
    /// `c[i,j] = max(c[i,j] + bias[i], 0)`.
    BiasRelu(&'a [f32]),
}

/// Packed-panel element type: `f32`, or bf16 bits behind the `bf16`
/// feature. Accumulation is always `f32`; only panel storage changes.
pub(crate) trait Elem: Copy + Send + Sync + 'static {
    /// Pooled scratch buffer type for this element.
    type Buf: std::ops::Deref<Target = [Self]> + std::ops::DerefMut<Target = [Self]> + Send;

    fn take_scratch(len: usize) -> Self::Buf;
    fn pack(x: f32) -> Self;
    /// One microkernel tile: `acc = Apanel · Bpanel` (see [`kernels`]).
    fn tile(
        kernel: KernelId,
        apan: &[Self],
        bpan: &[Self],
        kc: usize,
        mr: usize,
        nr: usize,
        acc: &mut [f32],
    );
}

impl Elem for f32 {
    type Buf = scratch::ScratchBuf;

    fn take_scratch(len: usize) -> scratch::ScratchBuf {
        scratch::take(len)
    }

    fn pack(x: f32) -> f32 {
        x
    }

    #[inline]
    fn tile(
        kernel: KernelId,
        apan: &[f32],
        bpan: &[f32],
        kc: usize,
        mr: usize,
        nr: usize,
        acc: &mut [f32],
    ) {
        kernels::run_tile(kernel, apan, bpan, kc, mr, nr, acc);
    }
}

#[cfg(feature = "bf16")]
impl Elem for u16 {
    type Buf = scratch::ScratchBufU16;

    fn take_scratch(len: usize) -> scratch::ScratchBufU16 {
        scratch::take_u16(len)
    }

    fn pack(x: f32) -> u16 {
        kernels::f32_to_bf16(x)
    }

    #[inline]
    fn tile(
        kernel: KernelId,
        apan: &[u16],
        bpan: &[u16],
        kc: usize,
        mr: usize,
        nr: usize,
        acc: &mut [f32],
    ) {
        kernels::run_tile_bf16(kernel, apan, bpan, kc, mr, nr, acc);
    }
}

/// A virtual im2col matrix over one NCHW image: element `(row, col)` of the
/// `[C_in·K_h·K_w, H_out·W_out]` column matrix, computed on the fly by the
/// packing routines. This is what makes the conv path *implicit* GEMM — no
/// column buffer is ever materialized.
#[derive(Debug, Clone, Copy)]
pub struct Im2colView<'a> {
    img: &'a [f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: usize,
    h_out: usize,
    w_out: usize,
}

impl<'a> Im2colView<'a> {
    /// View over one image plane-major `[C_in, H, W]` slice.
    pub fn new(
        img: &'a [f32],
        (c_in, h, w): (usize, usize, usize),
        (kh, kw): (usize, usize),
        stride: usize,
        padding: usize,
    ) -> Im2colView<'a> {
        debug_assert_eq!(img.len(), c_in * h * w);
        let h_out = (h + 2 * padding).saturating_sub(kh) / stride + 1;
        let w_out = (w + 2 * padding).saturating_sub(kw) / stride + 1;
        Im2colView {
            img,
            c_in,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            h_out,
            w_out,
        }
    }

    /// Rows of the column matrix: `C_in·K_h·K_w`.
    pub fn rows(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Columns of the column matrix: `H_out·W_out`.
    pub fn cols(&self) -> usize {
        self.h_out * self.w_out
    }
}

/// Where the right-hand operand's panels come from. The packing routines
/// read each source directly, so transposes and im2col layouts are
/// *virtualized* — nothing is materialized before packing.
#[derive(Debug, Clone, Copy)]
pub enum BSrc<'a> {
    /// `B` row-major `[k, n]`.
    Rows(&'a [f32]),
    /// `Bᵀ` row-major `[n, k]` (i.e. `B[p, j] = b[j·k + p]`).
    Cols(&'a [f32]),
    /// The im2col matrix of an image: `B[p, j] = col[p, j]`.
    Im2col(Im2colView<'a>),
    /// The transposed im2col matrix: `B[p, j] = col[j, p]`.
    Im2colT(Im2colView<'a>),
}

/// Length of the packed-A buffer for an `m×k` left operand under `bp`.
pub fn packed_a_len(bp: &Blueprint, m: usize, k: usize) -> usize {
    k * m.div_ceil(bp.mr) * bp.mr
}

/// Pack row-major `a[m×k]` into `bp.mr`-row panels in `bp.kc`-deep blocks
/// (layout `[kb][panel][p][i]`). Rows past `m` in the final panel are
/// zero-filled so the microkernel runs without remainder branches.
#[dlsr::hot]
pub fn pack_a(bp: &Blueprint, a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl::<f32>(bp, a, m, k, false, out);
}

/// Pack `a` holding `Aᵀ` row-major (`a[k×m]`, so `A[i,p] = a[p·m + i]`)
/// into the same panel layout as [`pack_a`].
#[dlsr::hot]
pub fn pack_a_transposed(bp: &Blueprint, a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    pack_a_impl::<f32>(bp, a, m, k, true, out);
}

/// bf16 twin of [`pack_a`] / [`pack_a_transposed`].
#[cfg(feature = "bf16")]
#[dlsr::hot]
pub fn pack_a_bf16(bp: &Blueprint, a: &[f32], m: usize, k: usize, trans: bool, out: &mut [u16]) {
    pack_a_impl::<u16>(bp, a, m, k, trans, out);
}

#[dlsr::hot]
fn pack_a_impl<E: Elem>(bp: &Blueprint, a: &[f32], m: usize, k: usize, trans: bool, out: &mut [E]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), packed_a_len(bp, m, k));
    let mr = bp.mr;
    let mr_pad = m.div_ceil(mr) * mr;
    for kb in (0..k).step_by(bp.kc) {
        let kc = bp.kc.min(k - kb);
        for ip in 0..mr_pad / mr {
            let base = kb * mr_pad + ip * (mr * kc);
            let dst = &mut out[base..base + mr * kc];
            for (p, drow) in dst.chunks_exact_mut(mr).enumerate() {
                for (i, d) in drow.iter_mut().enumerate() {
                    let row = ip * mr + i;
                    let v = if row < m {
                        let col = kb + p;
                        if trans {
                            a[col * m + row]
                        } else {
                            a[row * k + col]
                        }
                    } else {
                        0.0
                    };
                    *d = E::pack(v);
                }
            }
        }
    }
}

/// Pack one `kc × ncb` staged block of B (`kc` rows starting at `kb`,
/// `ncb` columns starting at `jc`) into `nr`-column panels
/// (`dst[jp][p][j]`, length `ncb·kc`). Columns past `n` are zero-filled.
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn pack_b_block<E: Elem>(
    bp: &Blueprint,
    src: BSrc<'_>,
    k: usize,
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    dst: &mut [E],
) {
    debug_assert!(kb + kc <= k);
    debug_assert!(dst.len() >= ncb * kc);
    match src {
        BSrc::Rows(b) => pack_block_rows::<E>(bp.nr, b, n, jc, ncb, kb, kc, dst),
        BSrc::Cols(b) => pack_block_cols::<E>(bp.nr, b, k, n, jc, ncb, kb, kc, dst),
        BSrc::Im2col(v) => pack_block_im2col::<E>(bp.nr, &v, n, jc, ncb, kb, kc, dst),
        BSrc::Im2colT(v) => pack_block_im2col_t::<E>(bp.nr, &v, n, jc, ncb, kb, kc, dst),
    }
}

#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn pack_block_rows<E: Elem>(
    nr: usize,
    b: &[f32],
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    dst: &mut [E],
) {
    for jp in 0..ncb / nr {
        let j0 = jc + jp * nr;
        let cols = nr.min(n.saturating_sub(j0));
        let panel = &mut dst[jp * (nr * kc)..(jp + 1) * (nr * kc)];
        for (p, drow) in panel.chunks_exact_mut(nr).enumerate() {
            let src = &b[(kb + p) * n + j0..(kb + p) * n + j0 + cols];
            // Branch-free split: a straight converting copy for the live
            // columns, one fill for the zero-padded tail — both vectorize.
            let (live, pad) = drow.split_at_mut(cols);
            for (d, &s) in live.iter_mut().zip(src) {
                *d = E::pack(s);
            }
            pad.fill(E::pack(0.0));
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn pack_block_cols<E: Elem>(
    nr: usize,
    b: &[f32],
    k: usize,
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    dst: &mut [E],
) {
    for jp in 0..ncb / nr {
        let j0 = jc + jp * nr;
        let cols = nr.min(n.saturating_sub(j0));
        let panel = &mut dst[jp * (nr * kc)..(jp + 1) * (nr * kc)];
        for (p, drow) in panel.chunks_exact_mut(nr).enumerate() {
            let row = kb + p;
            let (live, pad) = drow.split_at_mut(cols);
            for (j, d) in live.iter_mut().enumerate() {
                *d = E::pack(b[(j0 + j) * k + row]);
            }
            pad.fill(E::pack(0.0));
        }
    }
}

/// Pack a staged block straight out of the image: `B[p, j] = col[p, j]`
/// where `p` decodes to a (channel, ky, kx) patch row and `j` to an output
/// pixel. The per-panel spatial bases are hoisted to stack arrays, so the
/// inner loop is an add, two bounds tests, and one image load — the im2col
/// gather fused into packing.
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn pack_block_im2col<E: Elem>(
    nr: usize,
    v: &Im2colView<'_>,
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    dst: &mut [E],
) {
    let khw = v.kh * v.kw;
    let (hs, ws) = (v.h as isize, v.w as isize);
    for jp in 0..ncb / nr {
        let j0 = jc + jp * nr;
        let fast = v.stride == 1;
        let mut iy0 = [0isize; MAX_NR];
        let mut ix0 = [0isize; MAX_NR];
        let mut live = [false; MAX_NR];
        if !fast {
            for j in 0..nr {
                let col = j0 + j;
                if col < n {
                    let (oy, ox) = (col / v.w_out, col % v.w_out);
                    iy0[j] = (oy * v.stride) as isize - v.padding as isize;
                    ix0[j] = (ox * v.stride) as isize - v.padding as isize;
                    live[j] = true;
                }
            }
        }
        let panel = &mut dst[jp * (nr * kc)..(jp + 1) * (nr * kc)];
        let cols = nr.min(n.saturating_sub(j0));
        for (p, drow) in panel.chunks_exact_mut(nr).enumerate() {
            let row = kb + p;
            let (c, rem) = (row / khw, row % khw);
            let (ky, kx) = ((rem / v.kw) as isize, (rem % v.kw) as isize);
            let plane = &v.img[c * v.h * v.w..(c + 1) * v.h * v.w];
            if fast && cols > 0 {
                // Stride-1 fast path: consecutive columns of this panel are
                // consecutive output pixels, so for a fixed patch row the
                // sources form contiguous image runs — one per output row
                // the panel crosses. Each run is a converting copy with
                // zero-filled out-of-image edges instead of a per-element
                // bounds test.
                let (fill, pad) = drow.split_at_mut(cols);
                pad.fill(E::pack(0.0));
                let mut j = 0usize;
                while j < cols {
                    let col = j0 + j;
                    let (oy, ox) = (col / v.w_out, col % v.w_out);
                    let seg = (cols - j).min(v.w_out - ox);
                    let drun = &mut fill[j..j + seg];
                    let iy = oy as isize + ky - v.padding as isize;
                    if iy < 0 || iy >= hs {
                        drun.fill(E::pack(0.0));
                    } else {
                        // source x for element t of the run: ox+t+kx-pad
                        let x0 = ox as isize + kx - v.padding as isize;
                        let lead = (-x0).clamp(0, seg as isize) as usize;
                        let trail = (x0 + seg as isize - ws).clamp(0, seg as isize) as usize;
                        if lead + trail >= seg {
                            // run entirely off-image on the x axis
                            drun.fill(E::pack(0.0));
                        } else {
                            drun[..lead].fill(E::pack(0.0));
                            drun[seg - trail..].fill(E::pack(0.0));
                            let src0 = iy as usize * v.w + (x0 + lead as isize) as usize;
                            let srun = &plane[src0..src0 + seg - lead - trail];
                            for (d, &s) in drun[lead..seg - trail].iter_mut().zip(srun) {
                                *d = E::pack(s);
                            }
                        }
                    }
                    j += seg;
                }
                continue;
            }
            for (j, d) in drow.iter_mut().enumerate() {
                let val = if live[j] {
                    let (iy, ix) = (iy0[j] + ky, ix0[j] + kx);
                    if iy >= 0 && iy < hs && ix >= 0 && ix < ws {
                        plane[iy as usize * v.w + ix as usize]
                    } else {
                        0.0
                    }
                } else {
                    0.0
                };
                *d = E::pack(val);
            }
        }
    }
}

/// Transposed twin of [`pack_block_im2col`]: `B[p, j] = col[j, p]` — rows
/// are output pixels, columns are patch rows (the weight-gradient GEMM).
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn pack_block_im2col_t<E: Elem>(
    nr: usize,
    v: &Im2colView<'_>,
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    dst: &mut [E],
) {
    let khw = v.kh * v.kw;
    let (hs, ws) = (v.h as isize, v.w as isize);
    for jp in 0..ncb / nr {
        let j0 = jc + jp * nr;
        let cols = nr.min(n.saturating_sub(j0));
        // Per-column constants for this panel: linearized patch-row offset
        // into the image (`soff = c·h·w + ky·w + kx`) plus the (ky, kx)
        // displacements for the boundary test.
        let mut soff = [0isize; MAX_NR];
        let mut kya = [0isize; MAX_NR];
        let mut kxa = [0isize; MAX_NR];
        for j in 0..cols {
            let (c, rem) = ((j0 + j) / khw, (j0 + j) % khw);
            let (ky, kx) = (rem / v.kw, rem % v.kw);
            soff[j] = (c * v.h * v.w + ky * v.w + kx) as isize;
            kya[j] = ky as isize;
            kxa[j] = kx as isize;
        }
        let panel = &mut dst[jp * (nr * kc)..(jp + 1) * (nr * kc)];
        for (p, drow) in panel.chunks_exact_mut(nr).enumerate() {
            let pix = kb + p;
            let (oy, ox) = (pix / v.w_out, pix % v.w_out);
            let iy0 = (oy * v.stride) as isize - v.padding as isize;
            let ix0 = (ox * v.stride) as isize - v.padding as isize;
            let base = iy0 * ws + ix0;
            let (fill, pad) = drow.split_at_mut(cols);
            pad.fill(E::pack(0.0));
            // Interior fast path: when the whole receptive field sits
            // inside the image, every column is a plain gather at
            // `soff[j] + base` — no per-element bounds tests.
            let interior = iy0 >= 0
                && iy0 + (v.kh as isize - 1) < hs
                && ix0 >= 0
                && ix0 + (v.kw as isize - 1) < ws;
            if interior {
                for (j, d) in fill.iter_mut().enumerate() {
                    *d = E::pack(v.img[(soff[j] + base) as usize]);
                }
            } else {
                for (j, d) in fill.iter_mut().enumerate() {
                    let (iy, ix) = (iy0 + kya[j], ix0 + kxa[j]);
                    let val = if iy >= 0 && iy < hs && ix >= 0 && ix < ws {
                        v.img[(soff[j] + base) as usize]
                    } else {
                        0.0
                    };
                    *d = E::pack(val);
                }
            }
        }
    }
}

/// Write (or accumulate) a microkernel tile into `C`, applying the
/// epilogue once the final k block has been summed. `acc` is row-major
/// with stride `nr`.
#[inline]
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn store_tile(
    acc: &[f32],
    nr: usize,
    crows: &mut [f32],
    n: usize,
    rows: usize,
    j0: usize,
    cols: usize,
    accumulate: bool,
    finalize: Option<(Epilogue<'_>, usize)>,
) {
    for i in 0..rows {
        let dst = &mut crows[i * n + j0..i * n + j0 + cols];
        let src = &acc[i * nr..i * nr + cols];
        if accumulate {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        } else {
            dst.copy_from_slice(src);
        }
        if let Some((epi, row0)) = finalize {
            match epi {
                Epilogue::None => {}
                Epilogue::Bias(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d += bv);
                }
                Epilogue::Relu => {
                    dst.iter_mut().for_each(|d| *d = d.max(0.0));
                }
                Epilogue::BiasRelu(bias) => {
                    let bv = bias[row0 + i];
                    dst.iter_mut().for_each(|d| *d = (*d + bv).max(0.0));
                }
            }
        }
    }
}

/// Consume one staged `kc × ncb` B block: run the microkernel over every
/// (row panel × column panel) tile it covers and store the partial sums.
/// `c` holds the row range starting at global panel `row_panel0`.
#[allow(clippy::too_many_arguments)]
#[dlsr::hot]
fn compute_block<E: Elem>(
    kernel: KernelId,
    bp: &Blueprint,
    apack: &[E],
    bblock: &[E],
    c: &mut [f32],
    row_panel0: usize,
    m: usize,
    n: usize,
    jc: usize,
    ncb: usize,
    kb: usize,
    kc: usize,
    epi: Epilogue<'_>,
    last_kb: bool,
) {
    let (mr, nr) = (bp.mr, bp.nr);
    let mr_pad = m.div_ceil(mr) * mr;
    let rows_total = c.len() / n;
    let mut acc = [0.0f32; kernels::MAX_MR * MAX_NR];
    for ipl in 0..rows_total.div_ceil(mr) {
        let ip = row_panel0 + ipl;
        let a_off = kb * mr_pad + ip * (mr * kc);
        let apan = &apack[a_off..a_off + mr * kc];
        let rows = mr.min(rows_total - ipl * mr);
        let row0 = ip * mr;
        let finalize = last_kb.then_some((epi, row0));
        let crows = &mut c[ipl * mr * n..];
        for jp in 0..ncb / nr {
            let j0 = jc + jp * nr;
            if j0 >= n {
                break;
            }
            let cols = nr.min(n - j0);
            let b_off = jp * (nr * kc);
            E::tile(
                kernel,
                apan,
                &bblock[b_off..b_off + nr * kc],
                kc,
                mr,
                nr,
                &mut acc,
            );
            store_tile(&acc, nr, crows, n, rows, j0, cols, kb != 0, finalize);
        }
    }
}

/// Sequential driver with ordered double-buffered packing: per `NC` column
/// block, the staging buffer is split in two and ping-ponged — while the
/// microkernels consume the current `KC` panel, `rayon::join` packs the
/// next one into the other half. Packing is pure data movement, so the
/// overlap cannot change bits.
#[allow(clippy::too_many_arguments)]
fn gemm_seq<E: Elem>(
    bp: &Blueprint,
    kernel: KernelId,
    apack: &[E],
    bsrc: BSrc<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let (nr, kc_full, nc) = (bp.nr, bp.kc, bp.nc);
    let mut stage = E::take_scratch(2 * nc * kc_full);
    let (mut cur, mut nxt) = stage.split_at_mut(nc * kc_full);
    let kb_last = (k - 1) / kc_full * kc_full;
    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc).div_ceil(nr) * nr;
        pack_b_block::<E>(bp, bsrc, k, n, jc, ncb, 0, kc_full.min(k), cur);
        let mut kb = 0;
        while kb < k {
            let kc = kc_full.min(k - kb);
            let next_kb = kb + kc;
            if next_kb < k {
                let next_kc = kc_full.min(k - next_kb);
                let curv: &[E] = cur;
                let cref = &mut *c;
                let nref = &mut *nxt;
                rayon::join(
                    || {
                        compute_block::<E>(
                            kernel,
                            bp,
                            apack,
                            curv,
                            cref,
                            0,
                            m,
                            n,
                            jc,
                            ncb,
                            kb,
                            kc,
                            epi,
                            kb == kb_last,
                        );
                    },
                    || {
                        pack_b_block::<E>(bp, bsrc, k, n, jc, ncb, next_kb, next_kc, nref);
                    },
                );
            } else {
                compute_block::<E>(
                    kernel,
                    bp,
                    apack,
                    cur,
                    c,
                    0,
                    m,
                    n,
                    jc,
                    ncb,
                    kb,
                    kc,
                    epi,
                    kb == kb_last,
                );
            }
            std::mem::swap(&mut cur, &mut nxt);
            kb = next_kb;
        }
    }
}

/// Packed length of a full B prepack under `bp` (the row-parallel path).
fn packed_b_len_for(bp: &Blueprint, k: usize, n: usize) -> usize {
    let full = n / bp.nc * bp.nc;
    let cols = full + (n - full).div_ceil(bp.nr) * bp.nr;
    k * cols
}

/// Row-parallel driver: prepack all of B once (parallel over column
/// blocks), then fan the row panels of `C` out across rayon. Per output
/// element the k-order is identical to [`gemm_seq`], so the two drivers
/// are bitwise interchangeable.
#[allow(clippy::too_many_arguments)]
fn gemm_rows_par<E: Elem>(
    bp: &Blueprint,
    kernel: KernelId,
    apack: &[E],
    bsrc: BSrc<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let (mr, nr, kc_full, nc) = (bp.mr, bp.nr, bp.kc, bp.nc);
    let mut bfull = E::take_scratch(packed_b_len_for(bp, k, n));
    // Carve one disjoint slice per column block so packing can fan out.
    let mut blocks: Vec<(usize, usize, &mut [E])> = Vec::new();
    let mut rest: &mut [E] = &mut bfull;
    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc).div_ceil(nr) * nr;
        let (head, tail) = rest.split_at_mut(k * ncb);
        blocks.push((jc, ncb, head));
        rest = tail;
    }
    blocks.par_iter_mut().for_each(|(jc, ncb, dst)| {
        let mut off = 0;
        for kb in (0..k).step_by(kc_full) {
            let kc = kc_full.min(k - kb);
            pack_b_block::<E>(bp, bsrc, k, n, *jc, *ncb, kb, kc, &mut dst[off..]);
            off += *ncb * kc;
        }
    });
    let kb_last = (k - 1) / kc_full * kc_full;
    let blocks = &blocks;
    c.par_chunks_mut(mr * n).enumerate().for_each(|(ip, rows)| {
        for (jc, ncb, bblk) in blocks.iter() {
            let mut off = 0;
            for kb in (0..k).step_by(kc_full) {
                let kc = kc_full.min(k - kb);
                compute_block::<E>(
                    kernel,
                    bp,
                    apack,
                    &bblk[off..off + ncb * kc],
                    rows,
                    ip,
                    m,
                    n,
                    *jc,
                    *ncb,
                    kb,
                    kc,
                    epi,
                    kb == kb_last,
                );
                off += ncb * kc;
            }
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn gemm_generic<E: Elem>(
    bp: &Blueprint,
    apack: &[E],
    bsrc: BSrc<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    force_seq: bool,
) {
    assert_eq!(c.len(), m * n);
    assert_eq!(apack.len(), packed_a_len(bp, m, k));
    match bsrc {
        BSrc::Rows(b) => assert_eq!(b.len(), k * n),
        BSrc::Cols(b) => assert_eq!(b.len(), n * k),
        BSrc::Im2col(v) => debug_assert_eq!((v.rows(), v.cols()), (k, n)),
        BSrc::Im2colT(v) => debug_assert_eq!((v.cols(), v.rows()), (k, n)),
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Empty dot products: C is the epilogue applied to zero.
        for (i, row) in c.chunks_exact_mut(n).enumerate() {
            match epi {
                Epilogue::None | Epilogue::Relu => row.fill(0.0),
                Epilogue::Bias(bias) => row.fill(bias[i]),
                Epilogue::BiasRelu(bias) => row.fill(bias[i].max(0.0)),
            }
        }
        return;
    }
    let kernel = bp.kernel.executes_as();
    let tiles = m.div_ceil(bp.mr) * n.div_ceil(bp.nr) * k.div_ceil(bp.kc);
    dlsr_trace::counter_add(kernel.counter_key(), tiles as f64);
    if !force_seq && bp.par == ParHint::Rows && rayon::current_num_threads() > 1 {
        gemm_rows_par::<E>(bp, kernel, apack, bsrc, c, m, k, n, epi);
    } else {
        gemm_seq::<E>(bp, kernel, apack, bsrc, c, m, k, n, epi);
    }
}

/// Multiply a prepacked A against any B source: `c[m×n] = A·B`, then apply
/// `epi`. `c` is overwritten.
///
/// `force_seq` pins the sequential driver — callers already inside a
/// batch-parallel region must not fan out again. Either way the result is
/// bitwise identical (see module docs).
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    bp: &Blueprint,
    apack: &[f32],
    bsrc: BSrc<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    force_seq: bool,
) {
    gemm_generic::<f32>(bp, apack, bsrc, c, m, k, n, epi, force_seq);
}

/// bf16-storage twin of [`gemm`]: packed panels hold bf16, accumulation is
/// f32. Not bitwise-comparable to the f32 path — the convergence test is
/// the contract.
#[cfg(feature = "bf16")]
#[allow(clippy::too_many_arguments)]
pub fn gemm_bf16(
    bp: &Blueprint,
    apack: &[u16],
    bsrc: BSrc<'_>,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    force_seq: bool,
) {
    gemm_generic::<u16>(bp, apack, bsrc, c, m, k, n, epi, force_seq);
}

/// `C = A(m×k) · B(k×n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = a.shape().as_2d()?;
    let (k2, n) = b.shape().as_2d()?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![k],
            got: vec![k2],
            context: "matmul (inner dimensions)",
        });
    }
    let mut out = Tensor::zeros([m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    Ok(out)
}

/// GEMM on raw slices: `c[m×n] = a[m×k] · b[k×n]`. `c` is overwritten.
///
/// Exposed so layers can reuse scratch buffers without constructing
/// intermediate `Tensor`s. Resolves the blueprint for the shape, packs A
/// into pooled scratch, and drives the staged-B engine.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let bp = tune::select(m, k, n);
    let _span = dlsr_trace::span_with(
        || format!("gemm {m}x{k}x{n} {}", bp.kernel.executes_as().as_str()),
        dlsr_trace::cat::GEMM,
    );
    let mut apack = scratch::take(packed_a_len(&bp, m, k));
    pack_a(&bp, a, m, k, &mut apack);
    gemm(
        &bp,
        &apack,
        BSrc::Rows(b),
        c,
        m,
        k,
        n,
        Epilogue::None,
        false,
    );
}

/// `C = Aᵀ(k×m)ᵀ · B(k×n)` i.e. `C(m×n) = Σ_p a[p,i]·b[p,j]`, without
/// materializing the transpose. Used by linear-layer weight gradients.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    let bp = tune::select(m, k, n);
    let mut apack = scratch::take(packed_a_len(&bp, m, k));
    pack_a_transposed(&bp, a, m, k, &mut apack);
    gemm(
        &bp,
        &apack,
        BSrc::Rows(b),
        c,
        m,
        k,
        n,
        Epilogue::None,
        false,
    );
}

/// `C = A(m×k) · Bᵀ(n×k)ᵀ` i.e. `C(m×n) = Σ_p a[i,p]·b[j,p]`, without
/// materializing the transpose. Used by linear-layer input gradients.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    assert_eq!(c.len(), m * n);
    let bp = tune::select(m, k, n);
    let mut apack = scratch::take(packed_a_len(&bp, m, k));
    pack_a(&bp, a, m, k, &mut apack);
    gemm(
        &bp,
        &apack,
        BSrc::Cols(b),
        c,
        m,
        k,
        n,
        Epilogue::None,
        false,
    );
}

/// Transpose a 2-D tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_2d()?;
    let mut out = Tensor::zeros([n, m]);
    let src = a.data();
    out.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, orow)| {
            for (i, o) in orow.iter_mut().enumerate() {
                *o = src[i * n + j];
            }
        });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ALL_KERNELS;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn seq(len: usize, step: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32 * step).sin()).collect()
    }

    /// Run a GEMM under an explicit blueprint (bypassing the tune table).
    fn run_with(bp: &Blueprint, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut apack = vec![0.0; packed_a_len(bp, m, k)];
        pack_a(bp, a, m, k, &mut apack);
        let mut c = vec![0.0; m * n];
        gemm(
            bp,
            &apack,
            BSrc::Rows(b),
            &mut c,
            m,
            k,
            n,
            Epilogue::None,
            false,
        );
        c
    }

    fn scalar_bp(mr: usize, nr: usize, kc: usize, nc: usize) -> Blueprint {
        Blueprint {
            kernel: KernelId::Scalar,
            mr,
            nr,
            kc,
            nc,
            par: ParHint::Seq,
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matches_naive_rectangular() {
        let (m, k, n) = (7, 5, 9);
        let a = seq(m * k, 0.37);
        let b = seq(k * n, 0.21);
        let at = Tensor::from_vec([m, k], a.clone()).unwrap();
        let bt = Tensor::from_vec([k, n], b.clone()).unwrap();
        let c = matmul(&at, &bt).unwrap();
        let reference = naive(&a, &b, m, k, n);
        for (x, y) in c.data().iter().zip(reference.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    /// Shapes that cross every blocking boundary: edge panels in M and N,
    /// multiple KC blocks, multiple NC blocks, and the 1×1×1 degenerate.
    #[test]
    fn matches_naive_across_block_boundaries() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 2),
            (4, 256, 16),
            (5, 259, 17),
            (5, 523, 33),
            (9, 40, 277),
            (11, 19, 513),
        ] {
            let a = seq(m * k, 0.013);
            let b = seq(k * n, 0.007);
            let mut c = vec![0.0; m * n];
            matmul_into(&a, &b, &mut c, m, k, n);
            let reference = naive(&a, &b, m, k, n);
            for (i, (x, y)) in c.iter().zip(reference.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3,
                    "({m},{k},{n}) element {i}: {x} vs {y}"
                );
            }
        }
    }

    /// The core contract: every executable kernel variant, at its own
    /// geometry, produces bitwise identical results to the geometry-free
    /// scalar oracle — given the same `kc`.
    #[test]
    fn all_variants_bitwise_equal() {
        for &(m, k, n) in &[(13usize, 300usize, 47usize), (64, 27, 130), (3, 576, 65)] {
            let a = seq(m * k, 0.019);
            let b = seq(k * n, 0.027);
            let kc = k.min(256);
            let oracle = run_with(&scalar_bp(4, 16, kc, 256), &a, &b, m, k, n);
            let oracle_bits: Vec<u32> = oracle.iter().map(|x| x.to_bits()).collect();
            for kid in ALL_KERNELS {
                if kid.executes_as() != kid {
                    continue;
                }
                let (mr, nr) = kid.geometry().unwrap_or((7, 16));
                let bp = Blueprint {
                    kernel: kid,
                    mr,
                    nr,
                    kc,
                    nc: (256 / nr).max(1) * nr,
                    par: ParHint::Seq,
                };
                let got = run_with(&bp, &a, &b, m, k, n);
                let bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                assert_eq!(bits, oracle_bits, "{kid:?} diverged on ({m},{k},{n})");
            }
        }
    }

    /// The row-parallel driver and the sequential double-buffered driver
    /// must agree bitwise — thread-count determinism.
    #[test]
    fn rows_driver_matches_seq_bitwise() {
        let (m, k, n) = (23, 300, 290);
        let a = seq(m * k, 0.023);
        let b = seq(k * n, 0.011);
        let bp = scalar_bp(4, 16, 256, 256);
        let mut apack = vec![0.0; packed_a_len(&bp, m, k)];
        pack_a(&bp, &a, m, k, &mut apack);
        let mut c_seq = vec![0.0; m * n];
        gemm_seq::<f32>(
            &bp,
            KernelId::Scalar,
            &apack,
            BSrc::Rows(&b),
            &mut c_seq,
            m,
            k,
            n,
            Epilogue::None,
        );
        let mut c_par = vec![0.0; m * n];
        gemm_rows_par::<f32>(
            &bp,
            KernelId::Scalar,
            &apack,
            BSrc::Rows(&b),
            &mut c_par,
            m,
            k,
            n,
            Epilogue::None,
        );
        assert_eq!(c_seq, c_par);
    }

    /// The parallel decomposition is a row partition; computing any row
    /// subset independently must reproduce the full result bit for bit.
    /// Sub-shapes select different blueprints (different m), so this also
    /// pins geometry-invariance end to end through the tune table.
    #[test]
    fn row_partition_is_bitwise_deterministic() {
        let (m, k, n) = (11, 265, 277);
        let a = seq(m * k, 0.023);
        let b = seq(k * n, 0.011);
        let mut full = vec![0.0; m * n];
        matmul_into(&a, &b, &mut full, m, k, n);
        let m_top = 8;
        let mut top = vec![0.0; m_top * n];
        let mut bottom = vec![0.0; (m - m_top) * n];
        matmul_into(&a[..m_top * k], &b, &mut top, m_top, k, n);
        matmul_into(&a[m_top * k..], &b, &mut bottom, m - m_top, k, n);
        assert_eq!(&full[..m_top * n], &top[..]);
        assert_eq!(&full[m_top * n..], &bottom[..]);
    }

    #[test]
    fn epilogues_apply_after_full_sum() {
        let (m, k, n) = (6, 261, 10);
        let a = seq(m * k, 0.017);
        let b = seq(k * n, 0.029);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 - 2.5).collect();
        let plain = naive(&a, &b, m, k, n);
        let bp = tune::select(m, k, n);
        let mut apack = vec![0.0; packed_a_len(&bp, m, k)];
        pack_a(&bp, &a, m, k, &mut apack);

        let mut c = vec![0.0; m * n];
        gemm(
            &bp,
            &apack,
            BSrc::Rows(&b),
            &mut c,
            m,
            k,
            n,
            Epilogue::Bias(&bias),
            false,
        );
        for i in 0..m {
            for j in 0..n {
                let want = plain[i * n + j] + bias[i];
                assert!((c[i * n + j] - want).abs() < 1e-3);
            }
        }

        gemm(
            &bp,
            &apack,
            BSrc::Rows(&b),
            &mut c,
            m,
            k,
            n,
            Epilogue::BiasRelu(&bias),
            false,
        );
        for i in 0..m {
            for j in 0..n {
                let want = (plain[i * n + j] + bias[i]).max(0.0);
                assert!((c[i * n + j] - want).abs() < 1e-3);
                assert!(c[i * n + j] >= 0.0);
            }
        }

        gemm(
            &bp,
            &apack,
            BSrc::Rows(&b),
            &mut c,
            m,
            k,
            n,
            Epilogue::Relu,
            false,
        );
        assert!(c.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zero_k_applies_epilogue_to_zero() {
        let bp = scalar_bp(4, 16, 1, 256);
        let bias = [1.5f32, -2.0];
        let mut c = vec![9.0; 2 * 3];
        gemm(
            &bp,
            &[],
            BSrc::Rows(&[]),
            &mut c,
            2,
            0,
            3,
            Epilogue::BiasRelu(&bias),
            false,
        );
        assert_eq!(c, vec![1.5, 1.5, 1.5, 0.0, 0.0, 0.0]);
    }

    /// Materialize an im2col matrix the naive way (test oracle for the
    /// virtual views).
    fn naive_im2col(v: &Im2colView<'_>) -> Vec<f32> {
        let (k, n) = (v.rows(), v.cols());
        let mut col = vec![0.0; k * n];
        let khw = v.kh * v.kw;
        for row in 0..k {
            let (c, rem) = (row / khw, row % khw);
            let (ky, kx) = (rem / v.kw, rem % v.kw);
            for j in 0..n {
                let (oy, ox) = (j / v.w_out, j % v.w_out);
                let iy = (oy * v.stride + ky) as isize - v.padding as isize;
                let ix = (ox * v.stride + kx) as isize - v.padding as isize;
                if iy >= 0 && iy < v.h as isize && ix >= 0 && ix < v.w as isize {
                    col[row * n + j] = v.img[(c * v.h + iy as usize) * v.w + ix as usize];
                }
            }
        }
        col
    }

    /// The virtual im2col source must pack to exactly what packing the
    /// materialized column matrix would produce — bitwise.
    #[test]
    fn virtual_im2col_matches_materialized() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1), (3, 2)] {
            let (c_in, h, w, kh, kw) = (3, 9, 8, 3, 3);
            let img = seq(c_in * h * w, 0.05);
            let v = Im2colView::new(&img, (c_in, h, w), (kh, kw), stride, padding);
            let (k, n) = (v.rows(), v.cols());
            let col = naive_im2col(&v);
            let (m_a, a) = (5usize, seq(5 * k, 0.031));
            let bp = scalar_bp(4, 16, k.min(256), 64);
            let mut apack = vec![0.0; packed_a_len(&bp, m_a, k)];
            pack_a(&bp, &a, m_a, k, &mut apack);
            let mut c_virtual = vec![0.0; m_a * n];
            gemm(
                &bp,
                &apack,
                BSrc::Im2col(v),
                &mut c_virtual,
                m_a,
                k,
                n,
                Epilogue::None,
                false,
            );
            let mut c_mat = vec![0.0; m_a * n];
            gemm(
                &bp,
                &apack,
                BSrc::Rows(&col),
                &mut c_mat,
                m_a,
                k,
                n,
                Epilogue::None,
                false,
            );
            assert_eq!(c_virtual, c_mat, "stride={stride} padding={padding}");

            // Transposed view vs Cols over the same materialized matrix:
            // B = colᵀ (hw_out × k patch rows).
            let bp_t = scalar_bp(4, 16, n.min(256), 64);
            let (m_t, at) = (4usize, seq(4 * n, 0.043));
            let mut apack_t = vec![0.0; packed_a_len(&bp_t, m_t, n)];
            pack_a(&bp_t, &at, m_t, n, &mut apack_t);
            let mut c_tv = vec![0.0; m_t * k];
            gemm(
                &bp_t,
                &apack_t,
                BSrc::Im2colT(v),
                &mut c_tv,
                m_t,
                n,
                k,
                Epilogue::None,
                false,
            );
            let mut c_tc = vec![0.0; m_t * k];
            gemm(
                &bp_t,
                &apack_t,
                BSrc::Cols(&col),
                &mut c_tc,
                m_t,
                n,
                k,
                Epilogue::None,
                false,
            );
            assert_eq!(c_tv, c_tc, "transposed stride={stride} padding={padding}");
        }
    }

    #[test]
    fn inner_dim_mismatch_is_error() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let (k, m, n) = (262, 4, 5);
        let a = seq(k * m, 0.11);
        let b = seq(k * n, 0.07);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a, &b, &mut c, k, m, n);
        let at = transpose(&Tensor::from_vec([k, m], a).unwrap()).unwrap();
        let reference = matmul(&at, &Tensor::from_vec([k, n], b).unwrap()).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let (m, k, n) = (4, 262, 5);
        let a = seq(m * k, 0.13);
        let b = seq(n * k, 0.05);
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b, &mut c, m, k, n);
        let bt = transpose(&Tensor::from_vec([n, k], b).unwrap()).unwrap();
        let reference = matmul(&Tensor::from_vec([m, k], a).unwrap(), &bt).unwrap();
        for (x, y) in c.iter().zip(reference.data().iter()) {
            assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(transpose(&t).unwrap(), a);
    }

    /// bf16 storage loses precision but must stay close on tame inputs,
    /// and be identical between B-source kinds.
    #[cfg(feature = "bf16")]
    #[test]
    fn bf16_gemm_tracks_f32() {
        let (m, k, n) = (6, 70, 40);
        let a = seq(m * k, 0.021);
        let b = seq(k * n, 0.033);
        let bp = scalar_bp(6, 16, 70, 256);
        let mut apack = vec![0u16; packed_a_len(&bp, m, k)];
        pack_a_bf16(&bp, &a, m, k, false, &mut apack);
        let mut c = vec![0.0; m * n];
        gemm_bf16(
            &bp,
            &apack,
            BSrc::Rows(&b),
            &mut c,
            m,
            k,
            n,
            Epilogue::None,
            false,
        );
        let reference = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(reference.iter()) {
            // ~2^-8 relative per product, accumulated over k=70 terms.
            assert!((x - y).abs() < 0.15, "{x} vs {y}");
        }
    }
}
