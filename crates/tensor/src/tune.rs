//! Shape-keyed GEMM autotuning: blueprints, the selector, and the
//! persistent tune cache.
//!
//! Every GEMM call resolves its `(m, k, n)` problem shape to a
//! [`Blueprint`] — which microkernel variant to run, the `MR/NR/KC/NC`
//! blocking, and whether to fan out across rayon row panels. Resolution is
//! a **pure function of the shape** (a seeded table, a deterministic
//! heuristic for unseen shapes, and an optional cache file): the runtime
//! never times candidates, so the selected blueprint — and therefore the
//! training digest — cannot depend on machine load, thread count, or
//! whether the cache is warm. Measured tuning lives in the
//! `tune_gemm` bench binary (`crates/bench/src/bin/`), the one place the
//! workspace wall-clock lint allows timing; it writes the cache file this
//! module loads.
//!
//! # Determinism
//!
//! Of all blueprint fields, only `kc` can change result bits (partial-sum
//! adds into `C` happen at `KC` block boundaries; see `docs/KERNELS.md`).
//! The heuristic therefore derives `kc` from the shape alone —
//! independent of ISA, thread count, and cache state — and
//! the cache loader accepts whatever `kc` a cache file carries, making the
//! file part of the digest contract: *same binary + same tune cache + same
//! seed ⇒ same digest on any machine and any thread count.* Kernel
//! variant, `mr/nr/nc`, and the parallel hint only partition work and are
//! free to differ.
//!
//! # Cache file
//!
//! `DLSR_TUNE_CACHE=<path>` points at a plain-text file; lines are
//! `m k n kernel mr nr kc nc par` (whitespace-separated, `#` comments).
//! Entries are loaded at first use; every *new* shape the selector decides
//! is appended back to the file, so a cold run leaves behind the warm
//! cache that reproduces it.

use std::collections::BTreeMap;
use std::io::Write as _;

use parking_lot::Mutex;

use crate::kernels::{isa, KernelId, ALL_KERNELS, MAX_MR, MAX_NR};

/// How a GEMM fans out across rayon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParHint {
    /// Single-threaded drive (also used inside batch-level parallelism).
    Seq,
    /// Prepack B once, then parallelize over disjoint row panels of C.
    Rows,
}

impl ParHint {
    fn as_str(self) -> &'static str {
        match self {
            ParHint::Seq => "seq",
            ParHint::Rows => "rows",
        }
    }

    fn from_str_opt(s: &str) -> Option<ParHint> {
        match s {
            "seq" => Some(ParHint::Seq),
            "rows" => Some(ParHint::Rows),
            _ => None,
        }
    }
}

/// A fully resolved execution plan for one GEMM shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blueprint {
    /// Microkernel variant (clamped to the running ISA at execution).
    pub kernel: KernelId,
    /// Register-tile rows. Equals the kernel's fixed geometry for SIMD
    /// variants; free for the scalar kernel.
    pub mr: usize,
    /// Register-tile columns.
    pub nr: usize,
    /// K-blocking depth — the only bit-affecting field (see module docs).
    pub kc: usize,
    /// N-blocking width (multiple of `nr`).
    pub nc: usize,
    /// Rayon fan-out hint.
    pub par: ParHint,
}

impl Blueprint {
    /// Render as one tune-cache line body (without the shape key).
    fn render(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.kernel.as_str(),
            self.mr,
            self.nr,
            self.kc,
            self.nc,
            self.par.as_str()
        )
    }

    /// Sanity-clamp a parsed blueprint so a corrupt cache file cannot
    /// drive the engine out of bounds. `kc` is preserved exactly (it is
    /// digest-relevant); geometry is forced consistent with the kernel.
    fn sanitized(mut self, k: usize) -> Blueprint {
        if let Some((mr, nr)) = self.kernel.geometry() {
            self.mr = mr;
            self.nr = nr;
        }
        self.mr = self.mr.clamp(1, MAX_MR);
        self.nr = self.nr.clamp(1, MAX_NR);
        self.kc = self.kc.clamp(1, k.max(1));
        let nc = self.nc.max(self.nr);
        self.nc = nc - nc % self.nr;
        self
    }
}

/// Minimum `2·m·k·n` FLOP count before a GEMM fans out to rayon; below
/// this, thread dispatch costs more than the multiply.
const PAR_FLOP_THRESHOLD: usize = 1 << 21;

/// The EDSR training shapes (batch-4 48×48 patches, F=64 body) the cache
/// is seeded with: forward head/body/tail, the upsampler, and the
/// backward weight/input-gradient GEMMs. Keeping them here means the
/// first training step never pays a selector miss.
pub const EDSR_SHAPES: [(usize, usize, usize); 10] = [
    (64, 27, 2304),   // fwd head: 3->64, 3x3, 48x48 out
    (64, 576, 2304),  // fwd body: 64->64
    (3, 576, 2304),   // fwd tail: 64->3
    (256, 576, 2304), // fwd upsampler: 64->256
    (64, 2304, 576),  // wgrad body
    (64, 2304, 27),   // wgrad head
    (3, 2304, 576),   // wgrad tail
    (576, 64, 2304),  // igrad body
    (27, 64, 2304),   // igrad head
    (576, 3, 2304),   // igrad tail
];

/// Deterministic heuristic for shapes without a cache entry.
///
/// - `kc`: `min(256, k)` — shape-only, so bits never depend on ISA.
/// - kernel: the executable variant minimizing padded-row waste
///   `ceil(m/mr)·mr`, ties broken toward wider tiles (more arithmetic per
///   packed byte).
/// - `nc`: 256 rounded to a multiple of `nr` (keeps one packed B block
///   L2-resident).
/// - `par`: row fan-out once the FLOP count covers thread dispatch and
///   there are at least two row panels to split.
pub fn heuristic(m: usize, k: usize, n: usize) -> Blueprint {
    let kc = k.clamp(1, 256);
    let mut best: Option<(usize, usize, KernelId, usize, usize)> = None;
    for kid in ALL_KERNELS {
        if kid.requires() > isa() {
            continue;
        }
        let (mr, nr) = kid.geometry().unwrap_or((4, 16));
        let padded = m.div_ceil(mr) * mr;
        let width = mr * nr;
        let better = match best {
            None => true,
            // Minimize padded rows; among equals prefer the widest tile.
            Some((bp, bw, ..)) => padded < bp || (padded == bp && width > bw),
        };
        if better {
            best = Some((padded, width, kid, mr, nr));
        }
    }
    let (_, _, kernel, mr, nr) = best.unwrap_or((m, 64, KernelId::Scalar, 4, 16));
    let nc = (256 / nr).max(1) * nr;
    let par = if 2 * m * k * n >= PAR_FLOP_THRESHOLD && m > mr {
        ParHint::Rows
    } else {
        ParHint::Seq
    };
    Blueprint {
        kernel,
        mr,
        nr,
        kc,
        nc,
        par,
    }
}

struct TuneState {
    table: BTreeMap<(usize, usize, usize), Blueprint>,
    /// Cache-file path from `DLSR_TUNE_CACHE`, if set.
    persist_to: Option<std::path::PathBuf>,
}

fn parse_line(line: &str) -> Option<((usize, usize, usize), Blueprint)> {
    let mut it = line.split_whitespace();
    let m: usize = it.next()?.parse().ok()?;
    let k: usize = it.next()?.parse().ok()?;
    let n: usize = it.next()?.parse().ok()?;
    let kernel = KernelId::from_str_opt(it.next()?)?;
    let mr: usize = it.next()?.parse().ok()?;
    let nr: usize = it.next()?.parse().ok()?;
    let kc: usize = it.next()?.parse().ok()?;
    let nc: usize = it.next()?.parse().ok()?;
    let par = ParHint::from_str_opt(it.next()?)?;
    let bp = Blueprint {
        kernel,
        mr,
        nr,
        kc,
        nc,
        par,
    }
    .sanitized(k);
    Some(((m, k, n), bp))
}

fn init_state() -> TuneState {
    let mut table = BTreeMap::new();
    for (m, k, n) in EDSR_SHAPES {
        table.insert((m, k, n), heuristic(m, k, n));
    }
    let persist_to = std::env::var_os("DLSR_TUNE_CACHE").map(std::path::PathBuf::from);
    if let Some(path) = &persist_to {
        if let Ok(text) = std::fs::read_to_string(path) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((key, bp)) = parse_line(line) {
                    table.insert(key, bp);
                }
            }
        }
    }
    TuneState { table, persist_to }
}

fn state() -> &'static Mutex<TuneState> {
    static STATE: std::sync::OnceLock<Mutex<TuneState>> = std::sync::OnceLock::new();
    STATE.get_or_init(|| Mutex::new(init_state()))
}

/// Resolve the blueprint for one GEMM shape. Cache hit is a lock + map
/// lookup; a miss runs the heuristic, installs the decision, and (when
/// `DLSR_TUNE_CACHE` is set) appends it to the cache file so the next cold
/// run reproduces this one.
pub fn select(m: usize, k: usize, n: usize) -> Blueprint {
    let mut st = state().lock();
    if let Some(bp) = st.table.get(&(m, k, n)) {
        return *bp;
    }
    let bp = heuristic(m, k, n);
    st.table.insert((m, k, n), bp);
    if let Some(path) = st.persist_to.clone() {
        append_entry(&path, (m, k, n), &bp);
    }
    bp
}

fn append_entry(path: &std::path::Path, key: (usize, usize, usize), bp: &Blueprint) {
    let mut opts = std::fs::OpenOptions::new();
    opts.create(true).append(true);
    if let Ok(mut f) = opts.open(path) {
        // Ignore I/O failures: the cache is an optimization, never a
        // correctness dependency.
        let _ = writeln!(f, "{} {} {} {}", key.0, key.1, key.2, bp.render());
    }
}

/// Install a blueprint for a shape, overriding seed/heuristic/file. Used
/// by the offline tuner and by tests.
pub fn install(m: usize, k: usize, n: usize, bp: Blueprint) {
    let bp = bp.sanitized(k);
    state().lock().table.insert((m, k, n), bp);
}

/// Snapshot the current table (offline tuner output, debugging).
pub fn entries() -> Vec<((usize, usize, usize), Blueprint)> {
    state().lock().table.iter().map(|(k, v)| (*k, *v)).collect()
}

/// Write the full table as a tune-cache file (offline tuner output).
pub fn write_cache(path: &std::path::Path) -> std::io::Result<()> {
    let mut out = String::from("# dlsr tune cache v1: m k n kernel mr nr kc nc par\n");
    for ((m, k, n), bp) in entries() {
        out.push_str(&format!("{m} {k} {n} {}\n", bp.render()));
    }
    std::fs::write(path, out)
}

/// Candidate blueprints the offline tuner measures for one shape: every
/// executable kernel × a small `nc` sweep. `kc` is pinned by the
/// heuristic so tuning can never change result bits.
pub fn candidates(m: usize, k: usize, n: usize) -> Vec<Blueprint> {
    let base = heuristic(m, k, n);
    let mut out = Vec::new();
    for kid in ALL_KERNELS {
        if kid.requires() > isa() {
            continue;
        }
        let (mr, nr) = kid.geometry().unwrap_or((4, 16));
        for ncf in [1usize, 2, 4] {
            let nc = (256 * ncf / nr).max(1) * nr;
            for par in [ParHint::Seq, ParHint::Rows] {
                out.push(Blueprint {
                    kernel: kid,
                    mr,
                    nr,
                    kc: base.kc,
                    nc,
                    par,
                });
            }
        }
    }
    out
}

/// Whether the bf16-storage path is active. Off by default; enabled by
/// `DLSR_BF16=1` (checked once) or [`set_bf16`]. Only meaningful with the
/// `bf16` crate feature.
#[cfg(feature = "bf16")]
pub fn bf16_enabled() -> bool {
    use std::sync::atomic::Ordering;
    match BF16.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var_os("DLSR_BF16").is_some_and(|v| v == "1");
            BF16.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Force the bf16-storage path on or off (tests, experiments).
#[cfg(feature = "bf16")]
pub fn set_bf16(on: bool) {
    BF16.store(if on { 2 } else { 1 }, std::sync::atomic::Ordering::Relaxed);
}

/// 0 = unread (consult `DLSR_BF16`), 1 = off, 2 = on.
#[cfg(feature = "bf16")]
static BF16: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_kc_is_shape_only() {
        // kc must not depend on the detected ISA — it is digest-relevant.
        for (m, k, n) in EDSR_SHAPES {
            assert_eq!(heuristic(m, k, n).kc, k.min(256));
        }
        assert_eq!(heuristic(5, 1000, 7).kc, 256);
        assert_eq!(heuristic(5, 3, 7).kc, 3);
    }

    #[test]
    fn heuristic_geometry_matches_kernel() {
        for (m, k, n) in [(64usize, 576, 2304), (3, 27, 5), (1, 1, 1), (17, 9, 33)] {
            let bp = heuristic(m, k, n);
            if let Some((mr, nr)) = bp.kernel.geometry() {
                assert_eq!((bp.mr, bp.nr), (mr, nr));
            }
            assert_eq!(bp.nc % bp.nr, 0, "nc must be a multiple of nr");
            assert!(bp.kernel.requires() <= isa());
        }
    }

    #[test]
    fn seeded_shapes_resolve_without_miss() {
        for (m, k, n) in EDSR_SHAPES {
            let bp = select(m, k, n);
            assert!(bp.kc >= 1 && bp.kc <= k);
        }
    }

    #[test]
    fn install_overrides_and_select_is_stable() {
        let shape = (11usize, 13usize, 17usize);
        let first = select(shape.0, shape.1, shape.2);
        assert_eq!(select(shape.0, shape.1, shape.2), first);
        let forced = Blueprint {
            kernel: KernelId::Scalar,
            mr: 2,
            nr: 8,
            kc: 13,
            nc: 64,
            par: ParHint::Seq,
        };
        install(shape.0, shape.1, shape.2, forced);
        assert_eq!(select(shape.0, shape.1, shape.2), forced);
    }

    #[test]
    fn cache_line_round_trips() {
        let bp = heuristic(64, 576, 2304);
        let line = format!("64 576 2304 {}", bp.render());
        let (key, parsed) = parse_line(&line).expect("parse");
        assert_eq!(key, (64, 576, 2304));
        assert_eq!(parsed, bp);
        assert!(parse_line("garbage line").is_none());
        assert!(parse_line("1 2 3 not_a_kernel 4 16 2 256 seq").is_none());
    }

    #[test]
    fn sanitize_clamps_corrupt_entries() {
        let (_, bp) = parse_line("4 8 4 scalar 999 999 999 7 seq").expect("parse");
        assert!(bp.mr <= MAX_MR && bp.nr <= MAX_NR);
        assert!(bp.kc <= 8, "kc clamped to k");
        assert_eq!(bp.nc % bp.nr, 0);
    }

    #[test]
    fn isa_ordering_for_clamp() {
        assert!(
            crate::kernels::Isa::Scalar < crate::kernels::Isa::Avx2
                && crate::kernels::Isa::Avx2 < crate::kernels::Isa::Avx512
        );
    }
}
