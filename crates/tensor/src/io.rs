//! Minimal image I/O: binary PPM (P6) export/import for 1- or 3-channel
//! NCHW tensors, so super-resolution outputs can actually be looked at.
//! PPM is self-describing, dependency-free and opened by every viewer.

use std::io::{Read, Write};
use std::path::Path;

use crate::{Result, Tensor, TensorError};

fn to_byte(v: f32) -> u8 {
    (v.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Save the first image of an `[N, C, H, W]` tensor (`C` ∈ {1, 3}, values
/// in `[0,1]`) as a binary PPM file.
pub fn save_ppm(t: &Tensor, path: impl AsRef<Path>) -> Result<()> {
    let bytes = encode_ppm(t)?;
    std::fs::write(path, bytes)
        .map_err(|e| TensorError::InvalidArgument(format!("ppm write failed: {e}")))
}

/// Encode the first image of an NCHW tensor as binary PPM bytes.
pub fn encode_ppm(t: &Tensor) -> Result<Vec<u8>> {
    let (_, c, h, w) = t.shape().as_nchw()?;
    if c != 1 && c != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "PPM export needs 1 or 3 channels, got {c}"
        )));
    }
    let mut out = Vec::with_capacity(32 + 3 * h * w);
    write!(out, "P6\n{w} {h}\n255\n").map_err(|e| TensorError::InvalidArgument(e.to_string()))?;
    let d = t.data();
    let plane = h * w;
    for i in 0..plane {
        if c == 3 {
            out.push(to_byte(d[i]));
            out.push(to_byte(d[plane + i]));
            out.push(to_byte(d[2 * plane + i]));
        } else {
            let v = to_byte(d[i]);
            out.extend_from_slice(&[v, v, v]);
        }
    }
    Ok(out)
}

/// Decode a binary PPM into a `[1, 3, H, W]` tensor with values in `[0,1]`.
pub fn decode_ppm(bytes: &[u8]) -> Result<Tensor> {
    let mut r = bytes;
    let mut header = Vec::new();
    // read 3 whitespace-separated tokens after the magic
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut one = [0u8; 1];
    while tokens.len() < 4 {
        r.read_exact(&mut one)
            .map_err(|_| TensorError::InvalidArgument("truncated PPM header".into()))?;
        header.push(one[0]);
        let ch = one[0] as char;
        if ch.is_whitespace() {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
        } else {
            cur.push(ch);
        }
    }
    if tokens[0] != "P6" {
        return Err(TensorError::InvalidArgument("not a binary PPM (P6)".into()));
    }
    let w: usize = tokens[1]
        .parse()
        .map_err(|_| TensorError::InvalidArgument("bad width".into()))?;
    let h: usize = tokens[2]
        .parse()
        .map_err(|_| TensorError::InvalidArgument("bad height".into()))?;
    let maxval: f32 = tokens[3]
        .parse()
        .map_err(|_| TensorError::InvalidArgument("bad maxval".into()))?;
    let mut pixels = vec![0u8; 3 * w * h];
    r.read_exact(&mut pixels)
        .map_err(|_| TensorError::InvalidArgument("truncated PPM payload".into()))?;
    let mut t = Tensor::zeros([1, 3, h, w]);
    let plane = h * w;
    for i in 0..plane {
        for ch in 0..3 {
            t.data_mut()[ch * plane + i] = pixels[3 * i + ch] as f32 / maxval;
        }
    }
    Ok(t)
}

/// Load a binary PPM file into a `[1, 3, H, W]` tensor.
pub fn load_ppm(path: impl AsRef<Path>) -> Result<Tensor> {
    let bytes = std::fs::read(path)
        .map_err(|e| TensorError::InvalidArgument(format!("ppm read failed: {e}")))?;
    decode_ppm(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn rgb_round_trip_within_quantization() {
        let img = init::uniform([1, 3, 6, 5], 0.0, 1.0, 3);
        let bytes = encode_ppm(&img).unwrap();
        let back = decode_ppm(&bytes).unwrap();
        assert_eq!(back.shape().dims(), &[1, 3, 6, 5]);
        assert!(img.max_abs_diff(&back) <= 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn grayscale_replicates_channels() {
        let img = Tensor::from_vec([1, 1, 1, 2], vec![0.0, 1.0]).unwrap();
        let back = decode_ppm(&encode_ppm(&img).unwrap()).unwrap();
        for c in 0..3 {
            assert_eq!(back.at(&[0, c, 0, 0]), 0.0);
            assert_eq!(back.at(&[0, c, 0, 1]), 1.0);
        }
    }

    #[test]
    fn values_are_clamped() {
        let img = Tensor::from_vec([1, 1, 1, 2], vec![-0.5, 1.5]).unwrap();
        let back = decode_ppm(&encode_ppm(&img).unwrap()).unwrap();
        assert_eq!(back.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(back.at(&[0, 0, 0, 1]), 1.0);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(encode_ppm(&Tensor::zeros([1, 2, 2, 2])).is_err());
        assert!(decode_ppm(b"P5\n1 1\n255\n\0").is_err());
        assert!(
            decode_ppm(b"P6\n4 4\n255\nxx").is_err(),
            "truncated payload"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dlsr_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        let img = init::uniform([1, 3, 4, 4], 0.0, 1.0, 9);
        save_ppm(&img, &path).unwrap();
        let back = load_ppm(&path).unwrap();
        assert!(img.max_abs_diff(&back) <= 0.5 / 255.0 + 1e-6);
        std::fs::remove_file(&path).ok();
    }
}
