//! `dlsr-tensor` — a small, rayon-parallel NCHW `f32` tensor library.
//!
//! This crate is the numerical substrate of the `dlsr` workspace: it provides
//! the dense-tensor kernels (convolution, GEMM, pooling, pixel-shuffle,
//! bicubic resampling, reductions, elementwise algebra) on which the autograd
//! layer (`dlsr-nn`) and the model zoo (`dlsr-models`) are built.
//!
//! Design notes:
//! - Tensors are **contiguous, row-major** (`NCHW` for 4-D image tensors).
//!   Contiguity keeps every kernel a flat-slice loop that the compiler can
//!   vectorize and that rayon can split without stride bookkeeping.
//! - All kernels are deterministic: parallel work is partitioned over
//!   disjoint output regions so results do not depend on thread count.
//!   This matters for the distributed-equivalence tests in the workspace
//!   (single-rank training must match data-parallel training).
//! - `unsafe` is confined to the SIMD microkernels in [`kernels`]
//!   (`#![deny(unsafe_code)]` below, with a module-level
//!   `#[allow(unsafe_code)]` escape there; every block carries a
//!   `// SAFETY:` comment, enforced by dlsr-lint's `undocumented-unsafe`
//!   rule plus `clippy::undocumented_unsafe_blocks`).

// `deny` rather than `forbid`: the one sanctioned escape hatch is the
// SIMD microkernel module `kernels`, which carries a module-level
// `#[allow(unsafe_code)]` plus per-block `// SAFETY:` comments
// (enforced by dlsr-lint and clippy::undocumented_unsafe_blocks).
// Every other module in the crate contains zero unsafe blocks.
#![deny(unsafe_code)]

pub mod conv;
pub mod elementwise;
pub mod init;
pub mod io;
pub mod kernels;
pub mod matmul;
pub mod pool;
pub mod reduce;
pub mod resize;
pub mod scratch;
pub mod shape;
pub mod shuffle;
pub mod tensor;
pub mod tune;

pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide error type for shape/argument mismatches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        expected: Vec<usize>,
        got: Vec<usize>,
        context: &'static str,
    },
    /// An argument was structurally invalid (e.g. zero-size kernel).
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                got,
                context,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected:?}, got {got:?}"
                )
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
