//! SIMD GEMM microkernels and the runtime-dispatch layer.
//!
//! Every kernel here computes one `MR×NR` register tile of
//! `C += Apanel(kc×MR) · Bpanel(kc×NR)` from zero-initialized accumulators,
//! walking the packed panels in ascending `p` order and performing one
//! **fused multiply-add per product** — the scalar fallback uses
//! [`f32::mul_add`], the x86 kernels use FMA intrinsics. Because an FMA is
//! a single correctly-rounded operation, every variant produces **bitwise
//! identical** accumulator tiles for the same panels: the dispatch decision
//! (scalar vs AVX2 vs AVX-512, and the tile geometry) is a pure performance
//! knob, never a numerics knob. The property tests in
//! `tests/properties.rs` assert this exactly (`assert_eq!` on the bits, no
//! tolerance), and the training digest inherits it (see `docs/KERNELS.md`).
//!
//! # Dispatch
//!
//! [`isa`] detects the instruction set once per process:
//! - `DLSR_FORCE_SCALAR=1` pins the scalar fallback (the CI oracle job),
//! - under Miri everything runs scalar (the interpreter does not model
//!   AVX-512, and the scalar path covers the safe packing code),
//! - on x86-64, AVX2+FMA is the workspace baseline (see
//!   `.cargo/config.toml`) and AVX-512F is probed at runtime,
//! - on every other architecture (aarch64 included — a NEON kernel is a
//!   documented follow-up) the scalar fallback runs.
//!
//! A blueprint naming a kernel the running machine cannot execute (say, a
//! tune cache written on an AVX-512 host loaded under `DLSR_FORCE_SCALAR`)
//! is *downgraded in place*: the scalar kernel runs the same `MR×NR`
//! geometry, so the arithmetic — and the digest — is unchanged.
//!
//! # Safety
//!
//! This is the only module in the workspace that contains `unsafe` code.
//! It is confined to the x86 intrinsic kernels: raw-pointer loads/stores
//! into panels whose lengths the safe callers assert, and `target_feature`
//! calls guarded by the one-time CPU probe. Each block carries a
//! `// SAFETY:` comment; `dlsr-lint` and `clippy::undocumented_unsafe_blocks`
//! both enforce that.

// SAFETY justification for the module-level opt-out: `lib.rs` denies
// unsafe code crate-wide; the SIMD kernels below are the sanctioned
// exception, audited by the Miri CI job and the bitwise oracle tests.
#![allow(unsafe_code)]

use dlsr_attr as dlsr;

/// Widest tile height any kernel uses; sizes stack accumulators.
pub const MAX_MR: usize = 16;
/// Widest tile width any kernel uses; sizes stack accumulators.
pub const MAX_NR: usize = 32;

/// Instruction sets the dispatcher distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Portable fallback: scalar `f32::mul_add` loops.
    Scalar,
    /// AVX2 + FMA (the x86-64 workspace baseline).
    Avx2,
    /// AVX-512F, runtime-probed.
    Avx512,
}

impl Isa {
    fn detect() -> Isa {
        if std::env::var_os("DLSR_FORCE_SCALAR").is_some_and(|v| v == "1") {
            return Isa::Scalar;
        }
        if cfg!(miri) {
            // Miri does not model the AVX-512 intrinsics; the scalar path
            // exercises all safe packing/driver code under the interpreter.
            return Isa::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            // AVX2+FMA is compiled in unconditionally for x86-64 (see
            // .cargo/config.toml), but honor a machine that lacks it.
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Avx2;
            }
        }
        Isa::Scalar
    }
}

/// The detected instruction set, probed once per process (reads
/// `DLSR_FORCE_SCALAR` at the same time, so the answer never changes
/// mid-run).
pub fn isa() -> Isa {
    static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
    *ISA.get_or_init(Isa::detect)
}

/// A microkernel variant. The name encodes ISA and tile geometry;
/// [`KernelId::Scalar`] is geometry-free (the blueprint's `mr`/`nr` drive
/// the generic loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelId {
    /// Generic scalar loops, any `mr×nr` up to [`MAX_MR`]×[`MAX_NR`].
    Scalar,
    /// AVX2+FMA, 4 rows × 16 columns (8 ymm accumulators).
    Avx2F4x16,
    /// AVX2+FMA, 6 rows × 16 columns (12 ymm accumulators).
    Avx2F6x16,
    /// AVX-512F, 8 rows × 32 columns (16 zmm accumulators).
    Avx512F8x32,
    /// AVX-512F, 14 rows × 32 columns (28 zmm accumulators).
    Avx512F14x32,
}

/// Every variant, in descending preference order for the selector.
pub const ALL_KERNELS: [KernelId; 5] = [
    KernelId::Avx512F14x32,
    KernelId::Avx512F8x32,
    KernelId::Avx2F6x16,
    KernelId::Avx2F4x16,
    KernelId::Scalar,
];

impl KernelId {
    /// `(mr, nr)` tile geometry; `None` for the geometry-free scalar kernel.
    pub fn geometry(self) -> Option<(usize, usize)> {
        match self {
            KernelId::Scalar => None,
            KernelId::Avx2F4x16 => Some((4, 16)),
            KernelId::Avx2F6x16 => Some((6, 16)),
            KernelId::Avx512F8x32 => Some((8, 32)),
            KernelId::Avx512F14x32 => Some((14, 32)),
        }
    }

    /// Minimum ISA this kernel needs.
    pub fn requires(self) -> Isa {
        match self {
            KernelId::Scalar => Isa::Scalar,
            KernelId::Avx2F4x16 | KernelId::Avx2F6x16 => Isa::Avx2,
            KernelId::Avx512F8x32 | KernelId::Avx512F14x32 => Isa::Avx512,
        }
    }

    /// Stable name used in the tune-cache file and trace span labels.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelId::Scalar => "scalar",
            KernelId::Avx2F4x16 => "avx2_4x16",
            KernelId::Avx2F6x16 => "avx2_6x16",
            KernelId::Avx512F8x32 => "avx512_8x32",
            KernelId::Avx512F14x32 => "avx512_14x32",
        }
    }

    /// Inverse of [`KernelId::as_str`] (tune-cache parsing).
    pub fn from_str_opt(s: &str) -> Option<KernelId> {
        ALL_KERNELS.iter().copied().find(|k| k.as_str() == s)
    }

    /// `dlsr-trace` counter key counting tiles served by this variant.
    pub fn counter_key(self) -> &'static str {
        match self {
            KernelId::Scalar => "gemm.variant.scalar",
            KernelId::Avx2F4x16 => "gemm.variant.avx2_4x16",
            KernelId::Avx2F6x16 => "gemm.variant.avx2_6x16",
            KernelId::Avx512F8x32 => "gemm.variant.avx512_8x32",
            KernelId::Avx512F14x32 => "gemm.variant.avx512_14x32",
        }
    }

    /// The variant that will actually execute on this machine: `self` when
    /// the ISA allows it, otherwise the scalar kernel run at the *same*
    /// geometry (bitwise-identical results, see module docs).
    pub fn executes_as(self) -> KernelId {
        if self.requires() <= isa() {
            self
        } else {
            KernelId::Scalar
        }
    }
}

/// Run one microkernel tile: `acc[0..mr*nr] = Apanel · Bpanel` with
/// accumulators starting at zero. `apan` is `kc×mr` p-major, `bpan` is
/// `kc×nr` p-major, `acc` is row-major `mr×nr`.
///
/// `kernel` must already be executable ([`KernelId::executes_as`]); for
/// [`KernelId::Scalar`] the geometry comes from `mr`/`nr`, for SIMD
/// kernels `mr`/`nr` must equal the kernel's fixed geometry.
#[inline]
#[dlsr::hot]
pub(crate) fn run_tile(
    kernel: KernelId,
    apan: &[f32],
    bpan: &[f32],
    kc: usize,
    mr: usize,
    nr: usize,
    acc: &mut [f32],
) {
    debug_assert!(apan.len() >= kc * mr);
    debug_assert!(bpan.len() >= kc * nr);
    debug_assert!(acc.len() >= mr * nr);
    debug_assert_eq!(kernel.geometry().unwrap_or((mr, nr)), (mr, nr));
    match kernel {
        KernelId::Scalar => microkernel_scalar(apan, bpan, kc, mr, nr, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: callers pass kernels through `executes_as`, so reaching a
        // SIMD arm implies `isa()` probed the required CPU features; panel
        // and accumulator lengths are asserted above.
        KernelId::Avx2F4x16 => unsafe { microkernel_avx2_4x16(apan, bpan, kc, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2+FMA verified by the dispatch probe.
        KernelId::Avx2F6x16 => unsafe { microkernel_avx2_6x16(apan, bpan, kc, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX-512F verified by the dispatch probe.
        KernelId::Avx512F8x32 => unsafe { microkernel_avx512_8x32(apan, bpan, kc, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX-512F verified by the dispatch probe.
        KernelId::Avx512F14x32 => unsafe { microkernel_avx512_14x32(apan, bpan, kc, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => microkernel_scalar(apan, bpan, kc, mr, nr, acc),
    }
}

/// Portable oracle kernel: the exact per-element FMA chain every SIMD
/// kernel reproduces. Geometry-free — `mr`/`nr` are runtime values.
#[dlsr::hot]
fn microkernel_scalar(
    apan: &[f32],
    bpan: &[f32],
    kc: usize,
    mr: usize,
    nr: usize,
    acc: &mut [f32],
) {
    acc[..mr * nr].fill(0.0);
    for p in 0..kc {
        let arow = &apan[p * mr..(p + 1) * mr];
        let brow = &bpan[p * nr..(p + 1) * nr];
        for (i, &av) in arow.iter().enumerate() {
            let accrow = &mut acc[i * nr..(i + 1) * nr];
            for (d, &bv) in accrow.iter_mut().zip(brow) {
                // One fused multiply-add per product — bitwise identical
                // to the hardware FMA the SIMD kernels issue.
                *d = av.mul_add(bv, *d);
            }
        }
    }
}

/// Generates an AVX2+FMA microkernel with `$mr` rows × 16 columns:
/// `$mr × 2` ymm accumulators, B streamed as two 8-lane loads per `p`,
/// A broadcast per row.
#[cfg(target_arch = "x86_64")]
macro_rules! avx2_kernel {
    ($name:ident, $mr:expr) => {
        #[target_feature(enable = "avx2,fma")]
        #[dlsr::hot]
        // SAFETY: callers must ensure the CPU supports AVX2+FMA (checked
        // by `run_tile` via `executes_as()`); panel/acc length
        // preconditions are debug-asserted below.
        unsafe fn $name(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut [f32]) {
            use std::arch::x86_64::*;
            const MR: usize = $mr;
            debug_assert!(apan.len() >= kc * MR);
            debug_assert!(bpan.len() >= kc * 16);
            debug_assert!(acc.len() >= MR * 16);
            let mut c = [_mm256_setzero_ps(); MR * 2];
            let a = apan.as_ptr();
            let b = bpan.as_ptr();
            for p in 0..kc {
                // SAFETY: `p < kc` and the panels hold `kc` rows of MR
                // (A) and 16 (B) floats, so every offset below is in
                // bounds; loadu tolerates any alignment.
                unsafe {
                    let b0 = _mm256_loadu_ps(b.add(p * 16));
                    let b1 = _mm256_loadu_ps(b.add(p * 16 + 8));
                    let ap = a.add(p * MR);
                    for i in 0..MR {
                        let av = _mm256_set1_ps(*ap.add(i));
                        c[2 * i] = _mm256_fmadd_ps(av, b0, c[2 * i]);
                        c[2 * i + 1] = _mm256_fmadd_ps(av, b1, c[2 * i + 1]);
                    }
                }
            }
            let out = acc.as_mut_ptr();
            for i in 0..MR {
                // SAFETY: `acc` holds at least MR*16 floats (asserted
                // above), so rows 0..MR of 16 are in bounds.
                unsafe {
                    _mm256_storeu_ps(out.add(i * 16), c[2 * i]);
                    _mm256_storeu_ps(out.add(i * 16 + 8), c[2 * i + 1]);
                }
            }
        }
    };
}

/// Generates an AVX-512F microkernel with `$mr` rows × 32 columns:
/// `$mr × 2` zmm accumulators, B streamed as two 16-lane loads per `p`.
#[cfg(target_arch = "x86_64")]
macro_rules! avx512_kernel {
    ($name:ident, $mr:expr) => {
        #[target_feature(enable = "avx512f")]
        #[dlsr::hot]
        // SAFETY: callers must ensure the CPU supports AVX-512F (checked
        // by `run_tile` via `executes_as()`); panel/acc length
        // preconditions are debug-asserted below.
        unsafe fn $name(apan: &[f32], bpan: &[f32], kc: usize, acc: &mut [f32]) {
            use std::arch::x86_64::*;
            const MR: usize = $mr;
            debug_assert!(apan.len() >= kc * MR);
            debug_assert!(bpan.len() >= kc * 32);
            debug_assert!(acc.len() >= MR * 32);
            let mut c = [_mm512_setzero_ps(); MR * 2];
            let a = apan.as_ptr();
            let b = bpan.as_ptr();
            for p in 0..kc {
                // SAFETY: `p < kc` and the panels hold `kc` rows of MR
                // (A) and 32 (B) floats, so every offset below is in
                // bounds; loadu tolerates any alignment.
                unsafe {
                    let b0 = _mm512_loadu_ps(b.add(p * 32));
                    let b1 = _mm512_loadu_ps(b.add(p * 32 + 16));
                    let ap = a.add(p * MR);
                    for i in 0..MR {
                        let av = _mm512_set1_ps(*ap.add(i));
                        c[2 * i] = _mm512_fmadd_ps(av, b0, c[2 * i]);
                        c[2 * i + 1] = _mm512_fmadd_ps(av, b1, c[2 * i + 1]);
                    }
                }
            }
            let out = acc.as_mut_ptr();
            for i in 0..MR {
                // SAFETY: `acc` holds at least MR*32 floats (asserted
                // above), so rows 0..MR of 32 are in bounds.
                unsafe {
                    _mm512_storeu_ps(out.add(i * 32), c[2 * i]);
                    _mm512_storeu_ps(out.add(i * 32 + 16), c[2 * i + 1]);
                }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
avx2_kernel!(microkernel_avx2_4x16, 4);
#[cfg(target_arch = "x86_64")]
avx2_kernel!(microkernel_avx2_6x16, 6);
#[cfg(target_arch = "x86_64")]
avx512_kernel!(microkernel_avx512_8x32, 8);
#[cfg(target_arch = "x86_64")]
avx512_kernel!(microkernel_avx512_14x32, 14);

// ---------------------------------------------------------------------------
// bf16 storage (feature `bf16`): packed panels hold bf16, accumulation
// stays f32. Not part of any bitwise contract — convergence equivalence is
// the test bar (see tests/bf16_convergence.rs).
// ---------------------------------------------------------------------------

/// Round-to-nearest-even truncation of an `f32` to bf16 bits.
#[cfg(feature = "bf16")]
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let b = x.to_bits();
    let round = ((b >> 16) & 1).wrapping_add(0x7fff);
    (b.wrapping_add(round) >> 16) as u16
}

/// Widen bf16 bits back to `f32` (exact).
#[cfg(feature = "bf16")]
#[inline]
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// bf16 tile kernel: panels hold bf16, accumulators are f32. Dispatches
/// to an AVX2 widening kernel for the 6×16 geometry, scalar otherwise.
#[cfg(feature = "bf16")]
#[inline]
#[dlsr::hot]
pub(crate) fn run_tile_bf16(
    kernel: KernelId,
    apan: &[u16],
    bpan: &[u16],
    kc: usize,
    mr: usize,
    nr: usize,
    acc: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if kernel.executes_as().requires() >= Isa::Avx2 && (mr, nr) == (6, 16) {
        // SAFETY: the dispatch probe verified AVX2+FMA; panel lengths are
        // checked by the kernel's own debug asserts and the callers'
        // packing invariants (kc rows of mr/nr elements).
        unsafe { microkernel_bf16_avx2_6x16(apan, bpan, kc, acc) };
        return;
    }
    let _ = kernel;
    microkernel_bf16_scalar(apan, bpan, kc, mr, nr, acc);
}

#[cfg(feature = "bf16")]
#[dlsr::hot]
fn microkernel_bf16_scalar(
    apan: &[u16],
    bpan: &[u16],
    kc: usize,
    mr: usize,
    nr: usize,
    acc: &mut [f32],
) {
    acc[..mr * nr].fill(0.0);
    for p in 0..kc {
        let arow = &apan[p * mr..(p + 1) * mr];
        let brow = &bpan[p * nr..(p + 1) * nr];
        for (i, &ah) in arow.iter().enumerate() {
            let av = bf16_to_f32(ah);
            let accrow = &mut acc[i * nr..(i + 1) * nr];
            for (d, &bh) in accrow.iter_mut().zip(brow) {
                *d = av.mul_add(bf16_to_f32(bh), *d);
            }
        }
    }
}

#[cfg(all(feature = "bf16", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
#[dlsr::hot]
// SAFETY: callers must ensure the CPU supports AVX2+FMA (checked by
// `run_tile_bf16` via `executes_as()`); panel/acc length preconditions
// are debug-asserted below.
unsafe fn microkernel_bf16_avx2_6x16(apan: &[u16], bpan: &[u16], kc: usize, acc: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert!(apan.len() >= kc * 6);
    debug_assert!(bpan.len() >= kc * 16);
    debug_assert!(acc.len() >= 96);
    let mut c = [_mm256_setzero_ps(); 12];
    let a = apan.as_ptr();
    let b = bpan.as_ptr();
    for p in 0..kc {
        // SAFETY: `p < kc`; the B panel holds `kc` rows of 16 bf16 values
        // and the A panel `kc` rows of 6, so the 128-bit loads and scalar
        // reads below are in bounds; loadu tolerates any alignment.
        unsafe {
            // Widen 8+8 bf16 lanes to f32 by a 16-bit left shift.
            let raw0 = _mm_loadu_si128(b.add(p * 16) as *const __m128i);
            let raw1 = _mm_loadu_si128(b.add(p * 16 + 8) as *const __m128i);
            let b0 = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw0)));
            let b1 = _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw1)));
            let ap = a.add(p * 6);
            for i in 0..6 {
                let av = _mm256_set1_ps(f32::from_bits((*ap.add(i) as u32) << 16));
                c[2 * i] = _mm256_fmadd_ps(av, b0, c[2 * i]);
                c[2 * i + 1] = _mm256_fmadd_ps(av, b1, c[2 * i + 1]);
            }
        }
    }
    let out = acc.as_mut_ptr();
    for i in 0..6 {
        // SAFETY: `acc` holds at least 96 floats (asserted above).
        unsafe {
            _mm256_storeu_ps(out.add(i * 16), c[2 * i]);
            _mm256_storeu_ps(out.add(i * 16 + 8), c[2 * i + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panels(kc: usize, mr: usize, nr: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..kc * mr).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..kc * nr).map(|i| (i as f32 * 0.21).cos()).collect();
        (a, b)
    }

    /// Every executable SIMD kernel must reproduce the scalar FMA chain
    /// bit for bit — this is the foundation of the variant-invariant
    /// digest contract.
    #[test]
    fn simd_kernels_match_scalar_bitwise() {
        for kernel in ALL_KERNELS {
            if kernel == KernelId::Scalar || kernel.executes_as() != kernel {
                continue; // not executable on this machine
            }
            let (mr, nr) = kernel.geometry().unwrap();
            for kc in [1usize, 2, 7, 64, 255] {
                let (a, b) = panels(kc, mr, nr);
                let mut simd = vec![0.0f32; mr * nr];
                let mut scalar = vec![0.0f32; mr * nr];
                run_tile(kernel, &a, &b, kc, mr, nr, &mut simd);
                run_tile(KernelId::Scalar, &a, &b, kc, mr, nr, &mut scalar);
                let sb: Vec<u32> = simd.iter().map(|x| x.to_bits()).collect();
                let cb: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
                assert_eq!(sb, cb, "{kernel:?} kc={kc} diverged from scalar oracle");
            }
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for k in ALL_KERNELS {
            assert_eq!(KernelId::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(KernelId::from_str_opt("no_such_kernel"), None);
    }

    #[test]
    fn downgrade_preserves_geometry_freedom() {
        // Whatever the machine, the scalar kernel executes everywhere.
        assert_eq!(KernelId::Scalar.executes_as(), KernelId::Scalar);
        // And a downgraded kernel always lands on something executable.
        for k in ALL_KERNELS {
            assert!(k.executes_as().requires() <= isa());
        }
    }

    #[cfg(feature = "bf16")]
    #[test]
    fn bf16_round_trip_and_rounding() {
        assert_eq!(bf16_to_f32(f32_to_bf16(1.0)), 1.0);
        assert_eq!(bf16_to_f32(f32_to_bf16(-2.5)), -2.5);
        // Round-to-nearest-even: 1.0 + 2^-9 rounds back down to 1.0.
        let x = f32::from_bits(0x3f80_0040);
        assert_eq!(bf16_to_f32(f32_to_bf16(x)), 1.0);
        // Relative error bounded by the 8-bit mantissa.
        for i in 0..1000 {
            let v = (i as f32 * 0.173).sin() * 100.0;
            let r = bf16_to_f32(f32_to_bf16(v));
            assert!((r - v).abs() <= v.abs() * (1.0 / 256.0) + 1e-30);
        }
    }

    #[cfg(feature = "bf16")]
    #[test]
    fn bf16_kernels_agree_scalar_vs_simd() {
        let kc = 33;
        let (mr, nr) = (6, 16);
        let (af, bf) = panels(kc, mr, nr);
        let a: Vec<u16> = af.iter().map(|&x| f32_to_bf16(x)).collect();
        let b: Vec<u16> = bf.iter().map(|&x| f32_to_bf16(x)).collect();
        let mut scalar = vec![0.0f32; mr * nr];
        microkernel_bf16_scalar(&a, &b, kc, mr, nr, &mut scalar);
        let mut via_dispatch = vec![0.0f32; mr * nr];
        run_tile_bf16(KernelId::Avx2F6x16, &a, &b, kc, mr, nr, &mut via_dispatch);
        // Same FMA chain → bitwise equal even between scalar and AVX2.
        let sb: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
        let db: Vec<u32> = via_dispatch.iter().map(|x| x.to_bits()).collect();
        assert_eq!(sb, db);
    }
}
