//! Reductions.

use crate::{Result, Tensor, TensorError};

/// Sum of all elements.
pub fn sum(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Mean of all elements.
pub fn mean(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        return 0.0;
    }
    sum(t) / t.numel() as f32
}

/// Maximum element (NEG_INFINITY for empty tensors).
pub fn max(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element (INFINITY for empty tensors).
pub fn min(t: &Tensor) -> f32 {
    t.data().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Mean of squared elements (second raw moment).
pub fn mean_sq(t: &Tensor) -> f32 {
    if t.numel() == 0 {
        return 0.0;
    }
    t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32
}

/// Row-wise argmax of a 2-D tensor (per-sample predicted class).
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    let (rows, cols) = t.shape().as_2d()?;
    if cols == 0 {
        return Err(TensorError::InvalidArgument(
            "argmax over zero columns".into(),
        ));
    }
    Ok((0..rows)
        .map(|r| {
            let row = &t.data()[r * cols..(r + 1) * cols];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in logits"))
                .map(|(i, _)| i)
                .expect("non-empty row")
        })
        .collect())
}

/// Numerically-stable log-softmax over the last axis of a 2-D tensor.
pub fn log_softmax_rows(t: &Tensor) -> Result<Tensor> {
    let (rows, cols) = t.shape().as_2d()?;
    let mut out = t.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|x| (x - m).exp()).sum::<f32>().ln();
        row.iter_mut().for_each(|x| *x -= lse);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec([v.len()], v.to_vec()).unwrap()
    }

    #[test]
    fn scalar_reductions() {
        let x = t(&[1.0, 2.0, 3.0, -4.0]);
        assert_eq!(sum(&x), 2.0);
        assert_eq!(mean(&x), 0.5);
        assert_eq!(max(&x), 3.0);
        assert_eq!(min(&x), -4.0);
        assert_eq!(mean_sq(&x), (1.0 + 4.0 + 9.0 + 16.0) / 4.0);
    }

    #[test]
    fn argmax_per_row() {
        let x = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.2, 5.0, 1.0, 2.0]).unwrap();
        assert_eq!(argmax_rows(&x).unwrap(), vec![1, 0]);
    }

    #[test]
    fn log_softmax_rows_sum_to_one() {
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let ls = log_softmax_rows(&x).unwrap();
        let total: f32 = ls.data().iter().map(|x| x.exp()).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([1, 3], vec![1001.0, 1002.0, 1003.0]).unwrap();
        let la = log_softmax_rows(&a).unwrap();
        let lb = log_softmax_rows(&b).unwrap();
        assert!(la.allclose(&lb, 1e-3));
    }
}
