//! Shape arithmetic for contiguous row-major tensors.

use crate::{Result, TensorError};

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are cheap to clone (small `Vec<usize>`) and carry row-major stride
/// computation. A scalar is represented by an empty dimension list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Build a shape from raw extents.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Extent of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Interpret as a 4-D NCHW shape.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        match self.0.as_slice() {
            &[n, c, h, w] => Ok((n, c, h, w)),
            other => Err(TensorError::ShapeMismatch {
                expected: vec![4],
                got: other.to_vec(),
                context: "as_nchw (rank-4 required)",
            }),
        }
    }

    /// Interpret as a 2-D (rows, cols) shape.
    pub fn as_2d(&self) -> Result<(usize, usize)> {
        match self.0.as_slice() {
            &[r, c] => Ok((r, c)),
            other => Err(TensorError::ShapeMismatch {
                expected: vec![2],
                got: other.to_vec(),
                context: "as_2d (rank-2 required)",
            }),
        }
    }

    /// Flat row-major offset of a multi-index. Debug-checked against extents.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len());
        let strides = self.strides();
        index
            .iter()
            .zip(strides.iter())
            .zip(self.0.iter())
            .map(|((&i, &s), &d)| {
                debug_assert!(i < d, "index {i} out of bounds for extent {d}");
                i * s
            })
            .sum()
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::new(Vec::new()).numel(), 1);
    }

    #[test]
    fn row_major_strides() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::from([1, 3, 8, 8]);
        assert_eq!(s.as_nchw().unwrap(), (1, 3, 8, 8));
        assert!(Shape::from([2, 2]).as_nchw().is_err());
    }

    #[test]
    fn two_d_accessor() {
        assert_eq!(Shape::from([4, 5]).as_2d().unwrap(), (4, 5));
        assert!(Shape::from([4, 5, 6]).as_2d().is_err());
    }
}
