//! Elementwise algebra. Binary ops require identical shapes; broadcasting is
//! limited to the per-channel case used by bias/batch-norm (see
//! [`add_channel`]) to keep kernels flat and fast.

use rayon::prelude::*;

use crate::{Result, Tensor, TensorError};

/// Minimum element count before an elementwise kernel fans out to rayon.
/// Below this, the thread-pool dispatch costs more than the loop.
const PAR_THRESHOLD: usize = 1 << 14;

fn check_same_shape(a: &Tensor, b: &Tensor, context: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().dims().to_vec(),
            got: b.shape().dims().to_vec(),
            context,
        });
    }
    Ok(())
}

fn zip_map(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    let mut out = a.clone();
    if a.numel() >= PAR_THRESHOLD {
        out.data_mut()
            .par_iter_mut()
            .zip(b.data().par_iter())
            .for_each(|(x, &y)| *x = f(*x, y));
    } else {
        out.data_mut()
            .iter_mut()
            .zip(b.data().iter())
            .for_each(|(x, &y)| *x = f(*x, y));
    }
    out
}

/// `a + b` elementwise.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b, "add")?;
    Ok(zip_map(a, b, |x, y| x + y))
}

/// `a - b` elementwise.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b, "sub")?;
    Ok(zip_map(a, b, |x, y| x - y))
}

/// `a * b` elementwise (Hadamard product).
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b, "mul")?;
    Ok(zip_map(a, b, |x, y| x * y))
}

/// `a / b` elementwise.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    check_same_shape(a, b, "div")?;
    Ok(zip_map(a, b, |x, y| x / y))
}

/// In-place `a += b` (used by gradient accumulation, the hottest elementwise
/// path in training).
pub fn add_assign(a: &mut Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            expected: a.shape().dims().to_vec(),
            got: b.shape().dims().to_vec(),
            context: "add_assign",
        });
    }
    if a.numel() >= PAR_THRESHOLD {
        a.data_mut()
            .par_iter_mut()
            .zip(b.data().par_iter())
            .for_each(|(x, &y)| *x += y);
    } else {
        a.data_mut()
            .iter_mut()
            .zip(b.data().iter())
            .for_each(|(x, &y)| *x += y);
    }
    Ok(())
}

/// `a * s` for scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    let mut out = a.clone();
    out.data_mut().iter_mut().for_each(|x| *x *= s);
    out
}

/// `a + s` for scalar `s`.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    let mut out = a.clone();
    out.data_mut().iter_mut().for_each(|x| *x += s);
    out
}

/// Apply an arbitrary unary function.
pub fn map(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = a.clone();
    if a.numel() >= PAR_THRESHOLD {
        out.data_mut().par_iter_mut().for_each(|x| *x = f(*x));
    } else {
        out.data_mut().iter_mut().for_each(|x| *x = f(*x));
    }
    out
}

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    map(a, |x| x.max(0.0))
}

/// Gradient mask for ReLU: `grad * (input > 0)`.
pub fn relu_backward(grad: &Tensor, input: &Tensor) -> Result<Tensor> {
    check_same_shape(grad, input, "relu_backward")?;
    Ok(zip_map(grad, input, |g, x| if x > 0.0 { g } else { 0.0 }))
}

/// Add a per-channel value to an NCHW tensor: `out[n,c,h,w] = a[n,c,h,w] + bias[c]`.
pub fn add_channel(a: &Tensor, bias: &[f32]) -> Result<Tensor> {
    let (n, c, h, w) = a.shape().as_nchw()?;
    if bias.len() != c {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c],
            got: vec![bias.len()],
            context: "add_channel (bias length vs channels)",
        });
    }
    let plane = h * w;
    let mut out = a.clone();
    out.data_mut()
        .par_chunks_mut(plane)
        .enumerate()
        .for_each(|(i, chunk)| {
            let ch = i % c.max(1);
            let b = bias[ch];
            chunk.iter_mut().for_each(|x| *x += b);
        });
    let _ = n;
    Ok(out)
}

/// Per-channel sums of an NCHW tensor (the bias gradient): `out[c] = Σ_{n,h,w} a[n,c,h,w]`.
pub fn sum_channels(a: &Tensor) -> Result<Vec<f32>> {
    let (_n, c, h, w) = a.shape().as_nchw()?;
    let plane = h * w;
    let mut sums = vec![0.0f32; c];
    for (i, chunk) in a.data().chunks(plane).enumerate() {
        let ch = i % c.max(1);
        sums[ch] += chunk.iter().sum::<f32>();
    }
    Ok(sums)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec([v.len()], v.to_vec()).unwrap()
    }

    #[test]
    fn binary_ops() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(div(&b, &a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = t(&[1.0, 1.0]);
        add_assign(&mut a, &t(&[2.0, 3.0])).unwrap();
        assert_eq!(a.data(), &[3.0, 4.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, -4.0]);
        assert_eq!(add_scalar(&a, 1.0).data(), &[2.0, -1.0]);
    }

    #[test]
    fn relu_and_backward() {
        let x = t(&[-1.0, 0.0, 2.0]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
        let g = t(&[1.0, 1.0, 1.0]);
        assert_eq!(relu_backward(&g, &x).unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn channel_bias_and_sum() {
        // N=1, C=2, H=1, W=2
        let a = Tensor::from_vec([1, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = add_channel(&a, &[10.0, 20.0]).unwrap();
        assert_eq!(out.data(), &[11.0, 12.0, 23.0, 24.0]);
        assert_eq!(sum_channels(&a).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn channel_bias_wraps_over_batch() {
        // N=2, C=2, H=1, W=1: planes are [n0c0, n0c1, n1c0, n1c1]
        let a = Tensor::from_vec([2, 2, 1, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = add_channel(&a, &[0.5, 0.25]).unwrap();
        assert_eq!(out.data(), &[1.5, 2.25, 3.5, 4.25]);
        assert_eq!(sum_channels(&a).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let n = super::PAR_THRESHOLD + 17;
        let a = Tensor::from_vec([n], (0..n).map(|i| i as f32).collect()).unwrap();
        let b = Tensor::ones([n]);
        let big = add(&a, &b).unwrap();
        for i in [0usize, 1, n / 2, n - 1] {
            assert_eq!(big.data()[i], i as f32 + 1.0);
        }
    }
}
