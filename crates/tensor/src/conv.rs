//! 2-D convolution (im2col + GEMM) with full forward/backward kernels.
//!
//! Weight layout is `[C_out, C_in, K_h, K_w]`; activations are NCHW. Padding
//! is symmetric zero-padding. A naive direct implementation is kept as the
//! test oracle ([`conv2d_reference`]).

use crate::matmul::{matmul_a_bt, matmul_at_b, matmul_into};
use crate::{Result, Tensor, TensorError};

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, padding: 0 }
    }
}

impl Conv2dParams {
    /// "Same" convolution for odd kernel size `k` at stride 1.
    pub fn same(k: usize) -> Self {
        Conv2dParams { stride: 1, padding: k / 2 }
    }

    /// Output spatial extent for an input extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        (input + 2 * self.padding).saturating_sub(kernel) / self.stride + 1
    }
}

fn weight_dims(weight: &Tensor) -> Result<(usize, usize, usize, usize)> {
    weight.shape().as_nchw()
}

/// Scatter one image into its im2col matrix of shape `[C_in*K_h*K_w, H_out*W_out]`.
fn im2col(
    img: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    col: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    debug_assert_eq!(col.len(), c_in * kh * kw * hw_out);
    for c in 0..c_in {
        let plane = &img[c * h * w..(c + 1) * h * w];
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    let dst = &mut col[row + oy * w_out..row + (oy + 1) * w_out];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let iy = iy as usize;
                    for (ox, d) in dst.iter_mut().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        *d = if ix < 0 || ix >= w as isize {
                            0.0
                        } else {
                            plane[iy * w + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Accumulate an im2col matrix back into an image (the adjoint of [`im2col`]).
fn col2im(
    col: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    img: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    for c in 0..c_in {
        let plane_base = c * h * w;
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    let src = &col[row + oy * w_out..row + (oy + 1) * w_out];
                    for (ox, &s) in src.iter().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix >= 0 && ix < w as isize {
                            img[plane_base + iy * w + ix as usize] += s;
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution: `out[n, co, :, :] = Σ_ci weight[co, ci] ⋆ input[n, ci] + bias[co]`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, c_in_w, kh, kw) = weight_dims(weight)?;
    if c_in != c_in_w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            got: vec![c_in_w],
            context: "conv2d (input channels vs weight channels)",
        });
    }
    if let Some(b) = bias {
        if b.len() != c_out {
            return Err(TensorError::InvalidArgument(format!(
                "bias length {} does not match output channels {}",
                b.len(),
                c_out
            )));
        }
    }
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    let mut col = vec![0.0f32; k * hw_out];
    for i in 0..n {
        let img = &input.data()[i * c_in * h * w..(i + 1) * c_in * h * w];
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        let dst = &mut out.data_mut()[i * c_out * hw_out..(i + 1) * c_out * hw_out];
        matmul_into(weight.data(), &col, dst, c_out, k, hw_out);
        if let Some(b) = bias {
            for (co, chunk) in dst.chunks_mut(hw_out).enumerate() {
                let bv = b[co];
                chunk.iter_mut().for_each(|x| *x += bv);
            }
        }
    }
    Ok(out)
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
///
/// Returns `(grad_input, grad_weight, grad_bias)`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: Conv2dParams,
) -> Result<(Tensor, Tensor, Vec<f32>)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    if (gn, gc, gh, gw) != (n, c_out, h_out, w_out) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, h_out, w_out],
            got: vec![gn, gc, gh, gw],
            context: "conv2d_backward (grad_out shape)",
        });
    }
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;

    let mut grad_input = Tensor::zeros([n, c_in, h, w]);
    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    let mut grad_bias = vec![0.0f32; c_out];

    let mut col = vec![0.0f32; k * hw_out];
    let mut col_grad = vec![0.0f32; k * hw_out];
    let mut gw_acc = vec![0.0f32; c_out * k];

    for i in 0..n {
        let img = &input.data()[i * c_in * h * w..(i + 1) * c_in * h * w];
        let go = &grad_out.data()[i * c_out * hw_out..(i + 1) * c_out * hw_out];

        // bias gradient: per-channel sums of grad_out
        for (co, chunk) in go.chunks(hw_out).enumerate() {
            grad_bias[co] += chunk.iter().sum::<f32>();
        }

        // weight gradient: grad_out (C_out×HW) · colᵀ (HW×K)
        im2col(img, (c_in, h, w), (kh, kw), p, &mut col);
        matmul_a_bt(go, &col, &mut gw_acc, c_out, hw_out, k);
        for (a, &b) in grad_weight.data_mut().iter_mut().zip(gw_acc.iter()) {
            *a += b;
        }

        // input gradient: Wᵀ (K×C_out) · grad_out (C_out×HW), then col2im
        matmul_at_b(weight.data(), go, &mut col_grad, c_out, k, hw_out);
        let gi = &mut grad_input.data_mut()[i * c_in * h * w..(i + 1) * c_in * h * w];
        col2im(&col_grad, (c_in, h, w), (kh, kw), p, gi);
    }
    Ok((grad_input, grad_weight, grad_bias))
}

/// Direct (quadruple-loop) convolution used as the test oracle.
pub fn conv2d_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    for i in 0..n {
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = bias.map(|b| b[co]).unwrap_or(0.0);
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                                let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(&[i, ci, iy as usize, ix as usize])
                                    * weight.at(&[co, ci, ky, kx]);
                            }
                        }
                    }
                    *out.at_mut(&[i, co, oy, ox]) = acc;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        init::uniform(shape, -1.0, 1.0, seed)
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1.0 is the identity map.
        let x = rand_tensor(&[1, 1, 4, 4], 1);
        let w = Tensor::ones([1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        assert!(y.allclose(&x, 1e-6));
    }

    #[test]
    fn matches_reference_with_padding_and_stride() {
        for &(stride, padding) in &[(1, 0), (1, 1), (2, 1), (2, 0)] {
            let p = Conv2dParams { stride, padding };
            let x = rand_tensor(&[2, 3, 7, 6], 42);
            let w = rand_tensor(&[4, 3, 3, 3], 43);
            let b = vec![0.1, -0.2, 0.3, 0.0];
            let fast = conv2d(&x, &w, Some(&b), p).unwrap();
            let slow = conv2d_reference(&x, &w, Some(&b), p).unwrap();
            assert!(
                fast.allclose(&slow, 1e-4),
                "mismatch at stride={stride} padding={padding}: {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn same_padding_preserves_extent() {
        let x = rand_tensor(&[1, 2, 9, 9], 7);
        let w = rand_tensor(&[2, 2, 3, 3], 8);
        let y = conv2d(&x, &w, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 9, 9]);
    }

    #[test]
    fn channel_mismatch_is_error() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dParams::default()).is_err());
    }

    /// Finite-difference check of all three gradients on a tiny problem.
    #[test]
    fn backward_matches_finite_differences() {
        let p = Conv2dParams { stride: 1, padding: 1 };
        let x = rand_tensor(&[1, 2, 4, 4], 10);
        let w = rand_tensor(&[2, 2, 3, 3], 11);
        let b = vec![0.05f32, -0.07];
        // loss = sum(conv(x)) so dL/dout = ones
        let out = conv2d(&x, &w, Some(&b), p).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let (gi, gw, gb) = conv2d_backward(&x, &w, &grad_out, p).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f32 {
            conv2d(x, w, Some(b), p).unwrap().data().iter().sum()
        };
        // input gradient, spot-check a handful of positions
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!((gi.data()[idx] - fd).abs() < 1e-2, "input grad idx {idx}: {} vs {fd}", gi.data()[idx]);
        }
        // weight gradient
        for &idx in &[0usize, 9, 20] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!((gw.data()[idx] - fd).abs() < 1e-1, "weight grad idx {idx}: {} vs {fd}", gw.data()[idx]);
        }
        // bias gradient: dL/db[c] = number of output positions
        let hw = out.shape().dim(2) * out.shape().dim(3);
        for v in &gb {
            assert!((v - hw as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn batch_entries_are_independent() {
        let p = Conv2dParams::same(3);
        let w = rand_tensor(&[2, 1, 3, 3], 3);
        let a = rand_tensor(&[1, 1, 5, 5], 4);
        let b = rand_tensor(&[1, 1, 5, 5], 5);
        // Convolve separately then as a batch; results must match per-image.
        let ya = conv2d(&a, &w, None, p).unwrap();
        let yb = conv2d(&b, &w, None, p).unwrap();
        let mut batch = Tensor::zeros([2, 1, 5, 5]);
        batch.data_mut()[..25].copy_from_slice(a.data());
        batch.data_mut()[25..].copy_from_slice(b.data());
        let y = conv2d(&batch, &w, None, p).unwrap();
        assert_eq!(&y.data()[..50], ya.data());
        assert_eq!(&y.data()[50..], yb.data());
    }
}
