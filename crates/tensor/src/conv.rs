//! 2-D convolution as **implicit GEMM** with full forward/backward kernels.
//!
//! Weight layout is `[C_out, C_in, K_h, K_w]`; activations are NCHW. Padding
//! is symmetric zero-padding. Naive direct implementations are kept as the
//! test oracles ([`conv2d_reference`], [`conv2d_backward_reference`]).
//!
//! # Execution model
//!
//! Both directions resolve their GEMM shapes through the
//! [`crate::tune`] selector and run the blueprint engine in
//! [`crate::matmul`]:
//! 1. The operand that is constant across the batch (the weight matrix) is
//!    packed into GEMM panel layout **once per call**.
//! 2. The batch dimension is the parallel axis: each image's GEMMs run on
//!    one rayon worker, writing to that image's disjoint slice of the
//!    output. All per-image temporaries come from the [`crate::scratch`]
//!    pool, so the steady-state loop does not allocate.
//! 3. The forward and weight-gradient GEMMs read the image through a
//!    *virtual im2col view* ([`matmul::BSrc::Im2col`] /
//!    [`matmul::BSrc::Im2colT`]): the column matrix is never materialized —
//!    the packing routines gather patch elements straight from the image,
//!    which removes a `C_in·K²·H_out·W_out` scratch buffer and a full
//!    write+read pass per image per direction. Only the input gradient
//!    still materializes a column matrix, because there it is the GEMM
//!    *output* that `col2im` scatters back onto the image.
//! 4. Reductions that cross the parallel axis (weight/bias gradients) are
//!    accumulated per image into disjoint scratch, then summed sequentially
//!    in ascending image order — results are bitwise independent of the
//!    thread count (see the module docs of [`crate::matmul`] for the GEMM
//!    half of that contract).
//!
//! The forward GEMM applies bias and activation in its epilogue
//! ([`conv2d_fused`]), so a conv + ReLU layer makes a single pass over the
//! output instead of three.
//!
//! With the `bf16` feature enabled and the runtime flag on
//! (`crate::tune::set_bf16` / `DLSR_BF16=1`), packed panels store bf16 and
//! accumulation stays f32 — see `docs/KERNELS.md` for the (non-bitwise)
//! accuracy contract.

use dlsr_attr as dlsr;
use rayon::prelude::*;

use crate::matmul::{self, BSrc, Epilogue, Im2colView};
use crate::scratch;
use crate::tune::{self, Blueprint};
use crate::{Result, Tensor, TensorError};

/// Activation fused into the forward GEMM epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Act {
    /// No activation.
    #[default]
    Identity,
    /// `max(x, 0)`.
    Relu,
}

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dParams {
    /// "Same" convolution for odd kernel size `k` at stride 1.
    pub fn same(k: usize) -> Self {
        Conv2dParams {
            stride: 1,
            padding: k / 2,
        }
    }

    /// Output spatial extent for an input extent.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        (input + 2 * self.padding).saturating_sub(kernel) / self.stride + 1
    }
}

fn weight_dims(weight: &Tensor) -> Result<(usize, usize, usize, usize)> {
    weight.shape().as_nchw()
}

/// A left operand packed once and reused across the batch — f32 panels, or
/// bf16 panels when the reduced-precision storage path is active. One enum
/// so every GEMM call site stays precision-agnostic.
enum PackedA {
    F32(scratch::ScratchBuf),
    #[cfg(feature = "bf16")]
    Bf16(scratch::ScratchBufU16),
}

impl PackedA {
    /// Pack `a[m×k]` (or `Aᵀ` stored `[k×m]` when `trans`) under `bp`,
    /// choosing the element type from the runtime bf16 flag.
    fn pack(bp: &Blueprint, a: &[f32], m: usize, k: usize, trans: bool) -> PackedA {
        #[cfg(feature = "bf16")]
        if tune::bf16_enabled() {
            let mut buf = scratch::take_u16(matmul::packed_a_len(bp, m, k));
            matmul::pack_a_bf16(bp, a, m, k, trans, &mut buf);
            return PackedA::Bf16(buf);
        }
        let mut buf = scratch::take(matmul::packed_a_len(bp, m, k));
        if trans {
            matmul::pack_a_transposed(bp, a, m, k, &mut buf);
        } else {
            matmul::pack_a(bp, a, m, k, &mut buf);
        }
        PackedA::F32(buf)
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        bp: &Blueprint,
        bsrc: BSrc<'_>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        epi: Epilogue<'_>,
        force_seq: bool,
    ) {
        match self {
            PackedA::F32(buf) => matmul::gemm(bp, buf, bsrc, c, m, k, n, epi, force_seq),
            #[cfg(feature = "bf16")]
            PackedA::Bf16(buf) => matmul::gemm_bf16(bp, buf, bsrc, c, m, k, n, epi, force_seq),
        }
    }
}

/// Accumulate a column matrix back into an image (the adjoint of im2col).
#[dlsr::hot]
fn col2im(
    col: &[f32],
    (c_in, h, w): (usize, usize, usize),
    (kh, kw): (usize, usize),
    p: Conv2dParams,
    img: &mut [f32],
) {
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    for c in 0..c_in {
        let plane_base = c * h * w;
        for ky in 0..kh {
            for kx in 0..kw {
                let row = ((c * kh + ky) * kw + kx) * hw_out;
                for oy in 0..h_out {
                    let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    let src = &col[row + oy * w_out..row + (oy + 1) * w_out];
                    for (ox, &s) in src.iter().enumerate() {
                        let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                        if ix >= 0 && ix < w as isize {
                            img[plane_base + iy * w + ix as usize] += s;
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution: `out[n, co, :, :] = Σ_ci weight[co, ci] ⋆ input[n, ci] + bias[co]`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: Conv2dParams,
) -> Result<Tensor> {
    conv2d_fused(input, weight, bias, Act::Identity, p)
}

/// [`conv2d`] with the activation fused into the GEMM epilogue.
pub fn conv2d_fused(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: Act,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (n, _, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let mut out = Tensor::zeros([n, c_out, p.out_extent(h, kh), p.out_extent(w, kw)]);
    conv2d_fused_into(input, weight, bias, act, p, &mut out)?;
    Ok(out)
}

/// [`conv2d_fused`] writing into a caller-owned output tensor, so the
/// training loop's steady state performs no heap allocation at all (the
/// kernel temporaries already come from the scratch pool).
pub fn conv2d_fused_into(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    act: Act,
    p: Conv2dParams,
    out: &mut Tensor,
) -> Result<()> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, c_in_w, kh, kw) = weight_dims(weight)?;
    if c_in != c_in_w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![c_in],
            got: vec![c_in_w],
            context: "conv2d (input channels vs weight channels)",
        });
    }
    if let Some(b) = bias {
        if b.len() != c_out {
            return Err(TensorError::InvalidArgument(format!(
                "bias length {} does not match output channels {}",
                b.len(),
                c_out
            )));
        }
    }
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    if out.shape().dims() != [n, c_out, h_out, w_out] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, h_out, w_out],
            got: out.shape().dims().to_vec(),
            context: "conv2d_fused_into (output shape)",
        });
    }

    // Resolve the blueprint once per layer call; every image shares it.
    let bp = tune::select(c_out, k, hw_out);
    let variant = bp.kernel.executes_as().as_str();
    // Pack the weight matrix once; every image multiplies against it.
    let wpack = PackedA::pack(&bp, weight.data(), c_out, k, false);
    let epi = match (bias, act) {
        (None, Act::Identity) => Epilogue::None,
        (None, Act::Relu) => Epilogue::Relu,
        (Some(b), Act::Identity) => Epilogue::Bias(b),
        (Some(b), Act::Relu) => Epilogue::BiasRelu(b),
    };

    let chw_in = c_in * h * w;
    let batch_par = n > 1 && rayon::current_num_threads() > 1;
    // Spans from rayon workers are tagged with the dispatching rank so the
    // trace attributes kernel time to the rank that owns this layer call.
    let rank = dlsr_trace::thread_rank();
    let image = |i: usize, dst: &mut [f32]| {
        let img = &input.data()[i * chw_in..(i + 1) * chw_in];
        // Implicit GEMM: the im2col matrix is a view the packer reads
        // through, never a buffer.
        let view = Im2colView::new(img, (c_in, h, w), (kh, kw), p.stride, p.padding);
        let t0 = dlsr_trace::now_wall_s();
        wpack.gemm(
            &bp,
            BSrc::Im2col(view),
            dst,
            c_out,
            k,
            hw_out,
            epi,
            batch_par,
        );
        dlsr_trace::record_wall_span(
            || format!("conv gemm {c_out}x{k}x{hw_out} {variant} kc{}", bp.kc),
            dlsr_trace::cat::GEMM,
            rank,
            t0,
            dlsr_trace::now_wall_s(),
        );
    };
    let out_chunk = c_out * hw_out;
    if batch_par {
        out.data_mut()
            .par_chunks_mut(out_chunk)
            .enumerate()
            .for_each(|(i, dst)| image(i, dst));
    } else {
        for (i, dst) in out.data_mut().chunks_mut(out_chunk).enumerate() {
            image(i, dst);
        }
    }
    Ok(())
}

/// Gradients of [`conv2d`] with respect to input, weight and bias.
///
/// Returns `(grad_input, grad_weight, grad_bias)`. Per-image gradient
/// contributions are computed in parallel into disjoint scratch and reduced
/// sequentially in ascending image order, so results are bitwise identical
/// at any thread count.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: Conv2dParams,
) -> Result<(Tensor, Tensor, Vec<f32>)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let (gn, gc, gh, gw) = grad_out.shape().as_nchw()?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    if (gn, gc, gh, gw) != (n, c_out, h_out, w_out) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c_out, h_out, w_out],
            got: vec![gn, gc, gh, gw],
            context: "conv2d_backward (grad_out shape)",
        });
    }
    let hw_out = h_out * w_out;
    let k = c_in * kh * kw;
    let chw_in = c_in * h * w;

    let mut grad_input = Tensor::zeros([n, c_in, h, w]);

    // Weight gradient per image: grad_out (C_out×HW) · colᵀ (HW×K),
    // with colᵀ read through the transposed virtual im2col view.
    let bp_w = tune::select(c_out, hw_out, k);
    // Input gradient per image: Wᵀ (K×C_out) · grad_out (C_out×HW) — the
    // output of this GEMM is the column matrix col2im scatters back.
    let bp_i = tune::select(k, c_out, hw_out);
    let variant = bp_w.kernel.executes_as().as_str();

    // Pack Wᵀ (K×C_out) once for the input-gradient GEMMs.
    let wt_pack = PackedA::pack(&bp_i, weight.data(), k, c_out, true);

    // Disjoint per-image accumulators for the cross-batch reductions.
    let mut gw_all = scratch::take(n * c_out * k);
    let mut gb_all = scratch::take(n * c_out);

    let batch_par = n > 1 && rayon::current_num_threads() > 1;
    let rank = dlsr_trace::thread_rank();
    let image = |i: usize, gi: &mut [f32], gw_i: &mut [f32], gb_i: &mut [f32]| {
        let t0 = dlsr_trace::now_wall_s();
        let img = &input.data()[i * chw_in..(i + 1) * chw_in];
        let go = &grad_out.data()[i * c_out * hw_out..(i + 1) * c_out * hw_out];
        let view = Im2colView::new(img, (c_in, h, w), (kh, kw), p.stride, p.padding);

        // bias gradient: per-channel sums of grad_out
        for (co, chunk) in go.chunks_exact(hw_out).enumerate() {
            gb_i[co] = chunk.iter().sum::<f32>();
        }

        // weight gradient: implicit GEMM against the transposed view
        let go_pack = PackedA::pack(&bp_w, go, c_out, hw_out, false);
        go_pack.gemm(
            &bp_w,
            BSrc::Im2colT(view),
            gw_i,
            c_out,
            hw_out,
            k,
            Epilogue::None,
            batch_par,
        );

        // input gradient: Wᵀ·grad_out produces the column matrix...
        let mut col = scratch::take(k * hw_out);
        wt_pack.gemm(
            &bp_i,
            BSrc::Rows(go),
            &mut col,
            k,
            c_out,
            hw_out,
            Epilogue::None,
            batch_par,
        );
        let t1 = dlsr_trace::now_wall_s();
        dlsr_trace::record_wall_span(
            || format!("conv bwd gemm {c_out}x{hw_out}x{k} {variant} kc{}", bp_w.kc),
            dlsr_trace::cat::GEMM,
            rank,
            t0,
            t1,
        );
        // ...which col2im scatters back onto the image.
        col2im(&col, (c_in, h, w), (kh, kw), p, gi);
        dlsr_trace::record_wall_span(
            || format!("col2im {c_in}x{h}x{w} k{kh}x{kw}"),
            dlsr_trace::cat::IM2COL,
            rank,
            t1,
            dlsr_trace::now_wall_s(),
        );
    };

    let gw_len = c_out * k;
    if batch_par {
        grad_input
            .data_mut()
            .par_chunks_mut(chw_in)
            .zip(gw_all.par_chunks_mut(gw_len))
            .zip(gb_all.par_chunks_mut(c_out))
            .enumerate()
            .for_each(|(i, ((gi, gw_i), gb_i))| image(i, gi, gw_i, gb_i));
    } else {
        for (i, ((gi, gw_i), gb_i)) in grad_input
            .data_mut()
            .chunks_mut(chw_in)
            .zip(gw_all.chunks_mut(gw_len))
            .zip(gb_all.chunks_mut(c_out))
            .enumerate()
        {
            image(i, gi, gw_i, gb_i);
        }
    }

    // Fixed-order reduction across the batch: ascending image index,
    // regardless of which worker produced each contribution.
    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    for gw_i in gw_all.chunks_exact(gw_len) {
        for (a, &b) in grad_weight.data_mut().iter_mut().zip(gw_i.iter()) {
            *a += b;
        }
    }
    let mut grad_bias = vec![0.0f32; c_out];
    for gb_i in gb_all.chunks_exact(c_out) {
        for (a, &b) in grad_bias.iter_mut().zip(gb_i.iter()) {
            *a += b;
        }
    }
    Ok((grad_input, grad_weight, grad_bias))
}

/// Direct (quadruple-loop) convolution used as the test oracle.
pub fn conv2d_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    p: Conv2dParams,
) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let mut out = Tensor::zeros([n, c_out, h_out, w_out]);
    for i in 0..n {
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = bias.map(|b| b[co]).unwrap_or(0.0);
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                                let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(&[i, ci, iy as usize, ix as usize])
                                    * weight.at(&[co, ci, ky, kx]);
                            }
                        }
                    }
                    *out.at_mut(&[i, co, oy, ox]) = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Direct-loop gradients used as the test oracle for [`conv2d_backward`].
///
/// Returns `(grad_input, grad_weight, grad_bias)` computed straight from
/// the definition of the convolution adjoints — no im2col, no GEMM.
#[allow(clippy::needless_range_loop)]
pub fn conv2d_backward_reference(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    p: Conv2dParams,
) -> Result<(Tensor, Tensor, Vec<f32>)> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    let (c_out, _, kh, kw) = weight_dims(weight)?;
    let h_out = p.out_extent(h, kh);
    let w_out = p.out_extent(w, kw);
    let mut grad_input = Tensor::zeros([n, c_in, h, w]);
    let mut grad_weight = Tensor::zeros(weight.shape().clone());
    let mut grad_bias = vec![0.0f32; c_out];
    for i in 0..n {
        for co in 0..c_out {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let g = grad_out.at(&[i, co, oy, ox]);
                    grad_bias[co] += g;
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * p.stride + ky) as isize - p.padding as isize;
                                let ix = (ox * p.stride + kx) as isize - p.padding as isize;
                                if iy < 0 || iy >= h as isize || ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let (iy, ix) = (iy as usize, ix as usize);
                                *grad_input.at_mut(&[i, ci, iy, ix]) +=
                                    g * weight.at(&[co, ci, ky, kx]);
                                *grad_weight.at_mut(&[co, ci, ky, kx]) +=
                                    g * input.at(&[i, ci, iy, ix]);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((grad_input, grad_weight, grad_bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn rand_tensor(shape: &[usize], seed: u64) -> Tensor {
        init::uniform(shape, -1.0, 1.0, seed)
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1.0 is the identity map.
        let x = rand_tensor(&[1, 1, 4, 4], 1);
        let w = Tensor::ones([1, 1, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dParams::default()).unwrap();
        assert!(y.allclose(&x, 1e-6));
    }

    /// Stride/padding grid against the direct-loop oracle — exercises the
    /// virtual im2col packer across every boundary-condition family.
    #[test]
    fn matches_reference_with_padding_and_stride() {
        for &(stride, padding) in &[(1, 0), (1, 1), (1, 2), (2, 1), (2, 0), (2, 2), (3, 1)] {
            let p = Conv2dParams { stride, padding };
            let x = rand_tensor(&[2, 3, 7, 6], 42);
            let w = rand_tensor(&[4, 3, 3, 3], 43);
            let b = vec![0.1, -0.2, 0.3, 0.0];
            let fast = conv2d(&x, &w, Some(&b), p).unwrap();
            let slow = conv2d_reference(&x, &w, Some(&b), p).unwrap();
            assert!(
                fast.allclose(&slow, 1e-4),
                "mismatch at stride={stride} padding={padding}: {}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    /// Non-square kernels through the virtual-im2col path.
    #[test]
    fn non_square_kernel_matches_reference() {
        let p = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let x = rand_tensor(&[1, 2, 6, 8], 61);
        let w = rand_tensor(&[3, 2, 1, 3], 62);
        let fast = conv2d(&x, &w, None, p).unwrap();
        let slow = conv2d_reference(&x, &w, None, p).unwrap();
        assert!(fast.allclose(&slow, 1e-4), "{}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn same_padding_preserves_extent() {
        let x = rand_tensor(&[1, 2, 9, 9], 7);
        let w = rand_tensor(&[2, 2, 3, 3], 8);
        let y = conv2d(&x, &w, None, Conv2dParams::same(3)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 9, 9]);
    }

    #[test]
    fn channel_mismatch_is_error() {
        let x = Tensor::zeros([1, 3, 4, 4]);
        let w = Tensor::zeros([2, 4, 3, 3]);
        assert!(conv2d(&x, &w, None, Conv2dParams::default()).is_err());
    }

    #[test]
    fn fused_relu_matches_unfused() {
        let p = Conv2dParams::same(3);
        let x = rand_tensor(&[2, 3, 6, 6], 21);
        let w = rand_tensor(&[4, 3, 3, 3], 22);
        let b = vec![0.1, -0.3, 0.0, 0.2];
        let fused = conv2d_fused(&x, &w, Some(&b), Act::Relu, p).unwrap();
        let unfused = conv2d(&x, &w, Some(&b), p).unwrap();
        for (f, u) in fused.data().iter().zip(unfused.data().iter()) {
            // Bitwise: the fused epilogue applies the identical bias add
            // before clamping.
            assert_eq!(*f, u.max(0.0));
        }
    }

    #[test]
    fn fused_into_rejects_wrong_output_shape() {
        let x = rand_tensor(&[1, 1, 5, 5], 2);
        let w = rand_tensor(&[1, 1, 3, 3], 3);
        let mut out = Tensor::zeros([1, 1, 5, 5]); // valid conv shrinks to 3×3
        let r = conv2d_fused_into(
            &x,
            &w,
            None,
            Act::Identity,
            Conv2dParams::default(),
            &mut out,
        );
        assert!(r.is_err());
    }

    /// Finite-difference check of all three gradients on a tiny problem.
    #[test]
    fn backward_matches_finite_differences() {
        let p = Conv2dParams {
            stride: 1,
            padding: 1,
        };
        let x = rand_tensor(&[1, 2, 4, 4], 10);
        let w = rand_tensor(&[2, 2, 3, 3], 11);
        let b = vec![0.05f32, -0.07];
        // loss = sum(conv(x)) so dL/dout = ones
        let out = conv2d(&x, &w, Some(&b), p).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let (gi, gw, gb) = conv2d_backward(&x, &w, &grad_out, p).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f32 {
            conv2d(x, w, Some(b), p).unwrap().data().iter().sum()
        };
        // input gradient, spot-check a handful of positions
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (gi.data()[idx] - fd).abs() < 1e-2,
                "input grad idx {idx}: {} vs {fd}",
                gi.data()[idx]
            );
        }
        // weight gradient
        for &idx in &[0usize, 9, 20] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (gw.data()[idx] - fd).abs() < 1e-1,
                "weight grad idx {idx}: {} vs {fd}",
                gw.data()[idx]
            );
        }
        // bias gradient: dL/db[c] = number of output positions
        let hw = out.shape().dim(2) * out.shape().dim(3);
        for v in &gb {
            assert!((v - hw as f32).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_direct_reference() {
        for &(stride, padding) in &[(1, 1), (2, 0), (2, 2), (3, 1)] {
            let p = Conv2dParams { stride, padding };
            let x = rand_tensor(&[2, 3, 6, 5], 31);
            let w = rand_tensor(&[4, 3, 3, 3], 32);
            let go_shape = conv2d(&x, &w, None, p).unwrap();
            let go = rand_tensor(go_shape.shape().dims(), 33);
            let (gi, gw, gb) = conv2d_backward(&x, &w, &go, p).unwrap();
            let (ri, rw, rb) = conv2d_backward_reference(&x, &w, &go, p).unwrap();
            assert!(
                gi.allclose(&ri, 1e-3),
                "grad_input {}",
                gi.max_abs_diff(&ri)
            );
            assert!(
                gw.allclose(&rw, 1e-3),
                "grad_weight {}",
                gw.max_abs_diff(&rw)
            );
            for (a, b) in gb.iter().zip(rb.iter()) {
                assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn batch_entries_are_independent() {
        let p = Conv2dParams::same(3);
        let w = rand_tensor(&[2, 1, 3, 3], 3);
        let a = rand_tensor(&[1, 1, 5, 5], 4);
        let b = rand_tensor(&[1, 1, 5, 5], 5);
        // Convolve separately then as a batch; results must match per-image.
        let ya = conv2d(&a, &w, None, p).unwrap();
        let yb = conv2d(&b, &w, None, p).unwrap();
        let mut batch = Tensor::zeros([2, 1, 5, 5]);
        batch.data_mut()[..25].copy_from_slice(a.data());
        batch.data_mut()[25..].copy_from_slice(b.data());
        let y = conv2d(&batch, &w, None, p).unwrap();
        assert_eq!(&y.data()[..50], ya.data());
        assert_eq!(&y.data()[50..], yb.data());
    }

    /// The batch-parallel backward must equal the sum of per-image calls in
    /// ascending image order, bitwise — this is the thread-count
    /// determinism contract for the cross-batch reductions.
    #[test]
    fn backward_batch_reduction_is_bitwise_deterministic() {
        let p = Conv2dParams::same(3);
        let n = 3;
        let x = rand_tensor(&[n, 2, 6, 6], 51);
        let w = rand_tensor(&[4, 2, 3, 3], 52);
        let go = rand_tensor(&[n, 4, 6, 6], 53);
        let (gi, gw, gb) = conv2d_backward(&x, &w, &go, p).unwrap();

        let mut gw_sum = vec![0.0f32; gw.data().len()];
        let mut gb_sum = vec![0.0f32; gb.len()];
        let chw = 2 * 6 * 6;
        let ghw = 4 * 6 * 6;
        for i in 0..n {
            let xi =
                Tensor::from_vec([1, 2, 6, 6], x.data()[i * chw..(i + 1) * chw].to_vec()).unwrap();
            let goi =
                Tensor::from_vec([1, 4, 6, 6], go.data()[i * ghw..(i + 1) * ghw].to_vec()).unwrap();
            let (gii, gwi, gbi) = conv2d_backward(&xi, &w, &goi, p).unwrap();
            assert_eq!(&gi.data()[i * chw..(i + 1) * chw], gii.data());
            for (a, &b) in gw_sum.iter_mut().zip(gwi.data().iter()) {
                *a += b;
            }
            for (a, &b) in gb_sum.iter_mut().zip(gbi.iter()) {
                *a += b;
            }
        }
        assert_eq!(gw.data(), &gw_sum[..]);
        assert_eq!(&gb[..], &gb_sum[..]);
    }

    /// With bf16 storage active, forward/backward still track the f32
    /// oracle within bf16 precision (no bitwise claim).
    #[cfg(feature = "bf16")]
    #[test]
    fn bf16_conv_tracks_reference() {
        tune::set_bf16(true);
        let p = Conv2dParams::same(3);
        let x = rand_tensor(&[2, 3, 6, 6], 71);
        let w = rand_tensor(&[4, 3, 3, 3], 72);
        let b = vec![0.1, -0.2, 0.3, 0.0];
        let fast = conv2d(&x, &w, Some(&b), p);
        tune::set_bf16(false);
        let fast = fast.unwrap();
        let slow = conv2d_reference(&x, &w, Some(&b), p).unwrap();
        assert!(fast.allclose(&slow, 0.15), "{}", fast.max_abs_diff(&slow));
    }
}
