//! Bicubic resampling — the degradation operator (HR → LR) and the classical
//! upsampling baseline that EDSR is compared against (paper Fig 4).

use crate::{Result, Tensor, TensorError};

/// Standard bicubic convolution kernel with a = -0.5 (Catmull-Rom family),
/// the same kernel used by common image libraries.
fn cubic(x: f32) -> f32 {
    const A: f32 = -0.5;
    let x = x.abs();
    if x <= 1.0 {
        (A + 2.0) * x * x * x - (A + 3.0) * x * x + 1.0
    } else if x < 2.0 {
        A * x * x * x - 5.0 * A * x * x + 8.0 * A * x - 4.0 * A
    } else {
        0.0
    }
}

/// Resample every plane of an NCHW tensor to `(out_h, out_w)` with bicubic
/// interpolation (edge pixels clamped).
pub fn bicubic_resize(input: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (n, c, h, w) = input.shape().as_nchw()?;
    if out_h == 0 || out_w == 0 {
        return Err(TensorError::InvalidArgument(
            "bicubic target size must be > 0".into(),
        ));
    }
    let sy = h as f32 / out_h as f32;
    let sx = w as f32 / out_w as f32;
    let mut out = Tensor::zeros([n, c, out_h, out_w]);

    // Precompute per-output-column source taps and weights (shared by rows).
    let xtaps: Vec<([usize; 4], [f32; 4])> = (0..out_w).map(|ox| taps(ox, sx, w)).collect();
    let ytaps: Vec<([usize; 4], [f32; 4])> = (0..out_h).map(|oy| taps(oy, sy, h)).collect();

    let src = input.data();
    let dst = out.data_mut();
    for plane in 0..n * c {
        let sbase = plane * h * w;
        let dbase = plane * out_h * out_w;
        for (oy, (yi, yw)) in ytaps.iter().enumerate() {
            for (ox, (xi, xw)) in xtaps.iter().enumerate() {
                let mut acc = 0.0f32;
                for (row, &wy) in yi.iter().zip(yw.iter()) {
                    let rbase = sbase + row * w;
                    let mut racc = 0.0f32;
                    for (col, &wx) in xi.iter().zip(xw.iter()) {
                        racc += src[rbase + col] * wx;
                    }
                    acc += racc * wy;
                }
                dst[dbase + oy * out_w + ox] = acc;
            }
        }
    }
    Ok(out)
}

/// The 4 clamped source indices and normalized cubic weights for output
/// position `o` at scale `s` over an extent of `len`.
fn taps(o: usize, s: f32, len: usize) -> ([usize; 4], [f32; 4]) {
    // Align sample centers: source coordinate of output pixel center.
    let center = (o as f32 + 0.5) * s - 0.5;
    let base = center.floor() as isize;
    let frac = center - base as f32;
    let mut idx = [0usize; 4];
    let mut wgt = [0f32; 4];
    let mut total = 0.0f32;
    for t in 0..4 {
        let srci = base - 1 + t as isize;
        idx[t] = srci.clamp(0, len as isize - 1) as usize;
        let d = frac - (t as f32 - 1.0);
        wgt[t] = cubic(d);
        total += wgt[t];
    }
    // Normalize so constant images stay exactly constant at borders.
    if total != 0.0 {
        wgt.iter_mut().for_each(|v| *v /= total);
    }
    (idx, wgt)
}

/// Downsample by an integer factor (the DIV2K LR degradation).
pub fn bicubic_downsample(input: &Tensor, factor: usize) -> Result<Tensor> {
    let (_, _, h, w) = input.shape().as_nchw()?;
    if factor == 0 || h % factor != 0 || w % factor != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "downsample factor {factor} must evenly divide ({h},{w})"
        )));
    }
    bicubic_resize(input, h / factor, w / factor)
}

/// Upsample by an integer factor (the classical SR baseline).
pub fn bicubic_upsample(input: &Tensor, factor: usize) -> Result<Tensor> {
    let (_, _, h, w) = input.shape().as_nchw()?;
    if factor == 0 {
        return Err(TensorError::InvalidArgument(
            "upsample factor must be > 0".into(),
        ));
    }
    bicubic_resize(input, h * factor, w * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn identity_resize_is_identity() {
        let x = init::uniform([1, 1, 8, 8], 0.0, 1.0, 3);
        let y = bicubic_resize(&x, 8, 8).unwrap();
        assert!(y.allclose(&x, 1e-5), "diff {}", y.max_abs_diff(&x));
    }

    #[test]
    fn constant_image_stays_constant() {
        let x = Tensor::full([1, 3, 10, 10], 0.7);
        let down = bicubic_downsample(&x, 2).unwrap();
        assert!(down.data().iter().all(|&v| (v - 0.7).abs() < 1e-5));
        let up = bicubic_upsample(&x, 2).unwrap();
        assert!(up.data().iter().all(|&v| (v - 0.7).abs() < 1e-5));
    }

    #[test]
    fn downsample_shape_and_error() {
        let x = Tensor::zeros([1, 3, 12, 8]);
        let y = bicubic_downsample(&x, 4).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3, 3, 2]);
        assert!(bicubic_downsample(&x, 5).is_err());
    }

    #[test]
    fn up_then_down_roughly_recovers_smooth_image() {
        // A smooth gradient survives a ×2 round trip with small error.
        let mut x = Tensor::zeros([1, 1, 16, 16]);
        for y in 0..16 {
            for xx in 0..16 {
                *x.at_mut(&[0, 0, y, xx]) = (y as f32 / 15.0 + xx as f32 / 15.0) / 2.0;
            }
        }
        let up = bicubic_upsample(&x, 2).unwrap();
        let back = bicubic_downsample(&up, 2).unwrap();
        assert!(back.allclose(&x, 0.02), "diff {}", back.max_abs_diff(&x));
    }

    #[test]
    fn linear_ramp_preserved_in_interior() {
        // Bicubic reproduces affine signals exactly away from borders.
        let mut x = Tensor::zeros([1, 1, 1, 16]);
        for i in 0..16 {
            *x.at_mut(&[0, 0, 0, i]) = i as f32;
        }
        let y = bicubic_resize(&x, 1, 32).unwrap();
        // interior: y[0,0,0,2k] ≈ sample between (k-1,k); just check monotonic
        let d = y.data();
        for i in 4..28 {
            assert!(d[i + 1] >= d[i] - 1e-4, "not monotone at {i}");
        }
    }
}
