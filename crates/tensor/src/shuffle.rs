//! Pixel shuffle (sub-pixel convolution rearrangement), the upsampling
//! primitive of EDSR's tail: `[N, C·r², H, W] → [N, C, H·r, W·r]`.

use crate::{Result, Tensor, TensorError};

/// Rearrange channel blocks into spatial positions with upscale factor `r`.
pub fn pixel_shuffle(input: &Tensor, r: usize) -> Result<Tensor> {
    let (n, c_in, h, w) = input.shape().as_nchw()?;
    if r == 0 || c_in % (r * r) != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "pixel_shuffle: channels {c_in} not divisible by r²={}",
            r * r
        )));
    }
    let c_out = c_in / (r * r);
    let mut out = Tensor::zeros([n, c_out, h * r, w * r]);
    let src = input.data();
    let dst = out.data_mut();
    let (ho, wo) = (h * r, w * r);
    for i in 0..n {
        for co in 0..c_out {
            for dy in 0..r {
                for dx in 0..r {
                    // PyTorch layout: input channel co*r² + dy*r + dx maps to
                    // output offset (dy, dx) within each r×r block.
                    let ci = co * r * r + dy * r + dx;
                    let sbase = ((i * c_in) + ci) * h * w;
                    let dbase = ((i * c_out) + co) * ho * wo;
                    for y in 0..h {
                        for x in 0..w {
                            dst[dbase + (y * r + dy) * wo + (x * r + dx)] = src[sbase + y * w + x];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// The exact adjoint of [`pixel_shuffle`] (used as its backward pass):
/// `[N, C, H·r, W·r] → [N, C·r², H, W]`.
pub fn pixel_unshuffle(input: &Tensor, r: usize) -> Result<Tensor> {
    let (n, c, ho, wo) = input.shape().as_nchw()?;
    if r == 0 || ho % r != 0 || wo % r != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "pixel_unshuffle: spatial dims ({ho},{wo}) not divisible by r={r}"
        )));
    }
    let (h, w) = (ho / r, wo / r);
    let c_out = c * r * r;
    let mut out = Tensor::zeros([n, c_out, h, w]);
    let src = input.data();
    let dst = out.data_mut();
    for i in 0..n {
        for co in 0..c {
            for dy in 0..r {
                for dx in 0..r {
                    let ci = co * r * r + dy * r + dx;
                    let dbase = ((i * c_out) + ci) * h * w;
                    let sbase = ((i * c) + co) * ho * wo;
                    for y in 0..h {
                        for x in 0..w {
                            dst[dbase + y * w + x] = src[sbase + (y * r + dy) * wo + (x * r + dx)];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    #[test]
    fn shuffle_known_layout() {
        // 4 channels, 1×1 spatial, r=2 → 1 channel 2×2
        let x = Tensor::from_vec([1, 4, 1, 1], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = pixel_shuffle(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        let x = init::uniform([2, 8, 3, 5], -1.0, 1.0, 77);
        let y = pixel_shuffle(&x, 2).unwrap();
        let back = pixel_unshuffle(&y, 2).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn shuffle_inverts_unshuffle() {
        let x = init::uniform([1, 3, 6, 6], -1.0, 1.0, 78);
        let y = pixel_unshuffle(&x, 3).unwrap();
        assert_eq!(y.shape().dims(), &[1, 27, 2, 2]);
        assert_eq!(pixel_shuffle(&y, 3).unwrap(), x);
    }

    #[test]
    fn indivisible_channels_error() {
        let x = Tensor::zeros([1, 3, 2, 2]);
        assert!(pixel_shuffle(&x, 2).is_err());
    }

    #[test]
    fn adjoint_property() {
        // <shuffle(x), y> == <x, unshuffle(y)> — the defining property that
        // makes unshuffle the valid backward of shuffle.
        let x = init::uniform([1, 4, 2, 2], -1.0, 1.0, 79);
        let y = init::uniform([1, 1, 4, 4], -1.0, 1.0, 80);
        let sx = pixel_shuffle(&x, 2).unwrap();
        let uy = pixel_unshuffle(&y, 2).unwrap();
        let lhs: f32 = sx.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(uy.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }
}
