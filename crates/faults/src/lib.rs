//! `dlsr-faults` — seeded, virtual-clock-deterministic fault plans.
//!
//! At 512 GPUs the fabric is the failure surface: degraded links, skewed
//! ranks and flaky transports show up as lost scaling efficiency long
//! before they show up as crashes. This crate turns those failure modes
//! into **pure data**: a [`FaultSpec`] describes what should go wrong, and
//! [`FaultPlan::from_spec`] derives a queryable plan whose every answer is
//! a deterministic function of `(seed, query)` — no wall clock, no shared
//! mutable state, no RNG streams to keep in sync. Every rank holding the
//! same plan deduces the same faults at the same virtual instants, which
//! is what makes injected-fault runs replayable and testable bit-for-bit.
//!
//! Four fault classes (PAPER.md §IV's failure surface, and the recovery
//! behaviors Horovod-class stacks need in production):
//!
//! - **link degradation** ([`LinkWindow`]): bandwidth droop + latency
//!   spikes on a chosen topology edge for a virtual-time window,
//! - **transient message loss/corruption** ([`FaultPlan::attempt_fault`]):
//!   per-(src, dst, message, attempt) drop/corrupt decisions answered by
//!   the transport's retry/timeout/backoff policy,
//! - **stragglers** ([`FaultPlan::compute_multiplier`]): per-rank compute
//!   cost multipliers,
//! - **mid-run rank failure** ([`RankFailure`]): triggers the trainer's
//!   checkpoint/restore path.
//!
//! The plan only *schedules* faults; injection lives behind the `faults`
//! feature of `dlsr-mpi`/`dlsr-cluster` so default builds carry none of it.

#![forbid(unsafe_code)]

use std::fmt;
use std::str::FromStr;

/// What went wrong with one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message was dropped in flight; the sender times out.
    Lost,
    /// The message arrived but failed its checksum; the sender retransmits.
    Corrupted,
}

/// Bandwidth droop + latency spike on one topology edge for one
/// virtual-time window. `node_a`/`node_b` are node indices (the edge is
/// undirected); a window with `node_a == node_b` degrades that node's
/// intra-node links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkWindow {
    /// One endpoint node of the degraded edge.
    pub node_a: usize,
    /// Other endpoint node.
    pub node_b: usize,
    /// Window start, virtual seconds.
    pub start_s: f64,
    /// Window end, virtual seconds (`f64::INFINITY` for "rest of run").
    pub end_s: f64,
    /// Transfer-time multiplier while degraded (≥ 1.0; 4.0 means the link
    /// moves bytes at a quarter of its healthy bandwidth).
    pub bandwidth_factor: f64,
    /// Extra per-message latency while degraded, seconds.
    pub extra_latency_s: f64,
}

/// The penalty a degraded link applies to one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPenalty {
    /// Transfer-time multiplier (≥ 1.0).
    pub bandwidth_factor: f64,
    /// Added latency, seconds.
    pub extra_latency_s: f64,
}

/// A rank dies at the start of training step `step` (0-based); the job
/// restores from its last checkpoint and continues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankFailure {
    /// The failing rank.
    pub rank: usize,
    /// The training step at which it fails.
    pub step: usize,
}

/// Declarative fault scenario: what should go wrong, when, and how badly.
/// Derive the queryable form with [`FaultPlan::from_spec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Master seed for the per-message drop/corrupt decisions.
    pub seed: u64,
    /// Degraded-link windows.
    pub degraded_links: Vec<LinkWindow>,
    /// Probability in `[0, 1)` that a transmission attempt is dropped.
    pub loss_prob: f64,
    /// Probability in `[0, 1)` that a transmission attempt is corrupted.
    pub corrupt_prob: f64,
    /// Restrict loss/corruption to a virtual-time window; `None` applies
    /// them for the whole run.
    pub loss_window: Option<(f64, f64)>,
    /// `(rank, compute multiplier)` stragglers; multipliers are ≥ 1.0.
    pub stragglers: Vec<(usize, f64)>,
    /// Optional mid-run rank failure.
    pub rank_failure: Option<RankFailure>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            degraded_links: Vec::new(),
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            loss_window: None,
            stragglers: Vec::new(),
            rank_failure: None,
        }
    }
}

/// A [`FaultSpec`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// splitmix64: the workspace's standard deterministic hash (the same
/// finalizer `dlsr_cluster::jitter_factor` uses), here mixing a query key
/// into the plan seed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The queryable, validated form of a [`FaultSpec`]. Pure data: cloning or
/// sharing it (it usually travels in an `Arc` inside `MpiConfig`) never
/// splits an RNG stream, and every query is a deterministic function of
/// the seed and the query arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
}

impl FaultPlan {
    /// Validate a spec and derive the plan.
    pub fn from_spec(spec: FaultSpec) -> Result<Self, SpecError> {
        let p = spec.loss_prob + spec.corrupt_prob;
        if !(0.0..1.0).contains(&spec.loss_prob)
            || !(0.0..1.0).contains(&spec.corrupt_prob)
            || p >= 1.0
        {
            return Err(SpecError(format!(
                "loss_prob {} + corrupt_prob {} must each lie in [0, 1) and sum below 1",
                spec.loss_prob, spec.corrupt_prob
            )));
        }
        for w in &spec.degraded_links {
            if w.bandwidth_factor < 1.0 || !w.bandwidth_factor.is_finite() {
                return Err(SpecError(format!(
                    "bandwidth_factor {} must be ≥ 1 (a degraded link is slower, not faster)",
                    w.bandwidth_factor
                )));
            }
            if w.extra_latency_s < 0.0 || w.start_s >= w.end_s {
                return Err(SpecError(format!(
                    "window [{}, {}) with extra latency {} is not a valid degradation",
                    w.start_s, w.end_s, w.extra_latency_s
                )));
            }
        }
        if let Some((s, e)) = spec.loss_window {
            if s >= e {
                return Err(SpecError(format!("loss window [{s}, {e}) is empty")));
            }
        }
        for &(rank, m) in &spec.stragglers {
            if m < 1.0 || !m.is_finite() {
                return Err(SpecError(format!(
                    "straggler multiplier {m} for rank {rank} must be a finite value ≥ 1"
                )));
            }
        }
        Ok(FaultPlan { spec })
    }

    /// A plan that schedules nothing. Injection with an empty plan is
    /// bitwise-identical to no plan at all (test-enforced in
    /// `crates/cluster/tests/faults_zero_impact.rs`).
    pub fn empty(seed: u64) -> Self {
        FaultPlan {
            spec: FaultSpec {
                seed,
                ..Default::default()
            },
        }
    }

    /// The validated spec this plan was derived from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True when the plan schedules no fault of any class.
    pub fn is_empty(&self) -> bool {
        self.spec.degraded_links.is_empty()
            && self.spec.loss_prob == 0.0
            && self.spec.corrupt_prob == 0.0
            && self.spec.stragglers.is_empty()
            && self.spec.rank_failure.is_none()
    }

    /// Does transmission attempt `attempt` (1-based) of message `seq` from
    /// `src` to `dst`, departing at virtual time `now`, fail — and how?
    /// Deterministic in the arguments: the sender and any replay of the
    /// run reach the same verdict, so retries need no acknowledgment
    /// protocol to stay causally consistent.
    pub fn attempt_fault(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        attempt: u32,
        now: f64,
    ) -> Option<FaultKind> {
        if self.spec.loss_prob == 0.0 && self.spec.corrupt_prob == 0.0 {
            return None;
        }
        if let Some((s, e)) = self.spec.loss_window {
            if now < s || now >= e {
                return None;
            }
        }
        let key = self.spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (src as u64).wrapping_mul(0xA24B_AED4_963E_E407)
            ^ (dst as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25)
            ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93)
            ^ (attempt as u64) << 48;
        let u = unit(splitmix64(key));
        if u < self.spec.loss_prob {
            Some(FaultKind::Lost)
        } else if u < self.spec.loss_prob + self.spec.corrupt_prob {
            Some(FaultKind::Corrupted)
        } else {
            None
        }
    }

    /// The degradation penalty, if any, on the edge between nodes `a` and
    /// `b` at virtual time `now`. Overlapping windows compound: bandwidth
    /// factors multiply, latencies add.
    pub fn link_penalty(&self, a: usize, b: usize, now: f64) -> Option<LinkPenalty> {
        let mut factor = 1.0;
        let mut latency = 0.0;
        let mut hit = false;
        for w in &self.spec.degraded_links {
            let edge = (w.node_a == a && w.node_b == b) || (w.node_a == b && w.node_b == a);
            if edge && now >= w.start_s && now < w.end_s {
                factor *= w.bandwidth_factor;
                latency += w.extra_latency_s;
                hit = true;
            }
        }
        hit.then_some(LinkPenalty {
            bandwidth_factor: factor,
            extra_latency_s: latency,
        })
    }

    /// Compute-cost multiplier for `rank` (1.0 for punctual ranks).
    pub fn compute_multiplier(&self, rank: usize) -> f64 {
        self.spec
            .stragglers
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, m)| m)
            .product()
    }

    /// The scheduled mid-run rank failure, if any.
    pub fn rank_failure(&self) -> Option<RankFailure> {
        self.spec.rank_failure
    }
}

/// Named chaos scenarios — one per fault class — shared by the `dlsr
/// chaos` CLI, the criterion bench (`BENCH_faults.json`) and the CI chaos
/// job, so "run the lossy scenario" means the same plan everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosScenario {
    /// The node-0 ↔ node-1 edge runs at quarter bandwidth with a latency
    /// spike for the whole run.
    DegradedLink,
    /// Every transmission attempt has a 5 % drop and 2 % corruption
    /// chance, absorbed by retry/backoff.
    Lossy,
    /// The last rank computes 1.5× slower than its peers.
    Straggler,
    /// A rank dies mid-run; the job restores from its last checkpoint.
    RankFailure,
}

impl ChaosScenario {
    /// Every chaos scenario, in presentation order.
    pub const ALL: [ChaosScenario; 4] = [
        ChaosScenario::DegradedLink,
        ChaosScenario::Lossy,
        ChaosScenario::Straggler,
        ChaosScenario::RankFailure,
    ];

    /// CLI/report name (also what [`ChaosScenario::from_str`] parses).
    pub fn label(self) -> &'static str {
        match self {
            ChaosScenario::DegradedLink => "degraded-link",
            ChaosScenario::Lossy => "lossy",
            ChaosScenario::Straggler => "straggler",
            ChaosScenario::RankFailure => "rank-failure",
        }
    }

    /// The scenario's fault spec, sized for a `world`-rank, `steps`-step
    /// run.
    pub fn spec(self, seed: u64, world: usize, steps: usize) -> FaultSpec {
        match self {
            ChaosScenario::DegradedLink => FaultSpec {
                seed,
                degraded_links: vec![LinkWindow {
                    node_a: 0,
                    node_b: 1,
                    start_s: 0.0,
                    end_s: f64::INFINITY,
                    bandwidth_factor: 4.0,
                    extra_latency_s: 50.0e-6,
                }],
                ..Default::default()
            },
            ChaosScenario::Lossy => FaultSpec {
                seed,
                loss_prob: 0.05,
                corrupt_prob: 0.02,
                ..Default::default()
            },
            ChaosScenario::Straggler => FaultSpec {
                seed,
                stragglers: vec![(world.saturating_sub(1), 1.5)],
                ..Default::default()
            },
            ChaosScenario::RankFailure => FaultSpec {
                seed,
                rank_failure: Some(RankFailure {
                    rank: 1 % world.max(1),
                    step: (steps / 2).max(1),
                }),
                ..Default::default()
            },
        }
    }

    /// The derived plan (scenario presets always validate).
    pub fn plan(self, seed: u64, world: usize, steps: usize) -> FaultPlan {
        FaultPlan::from_spec(self.spec(seed, world, steps))
            .unwrap_or_else(|e| panic!("chaos preset `{}` invalid: {e}", self.label()))
    }
}

impl fmt::Display for ChaosScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ChaosScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChaosScenario::ALL
            .iter()
            .copied()
            .find(|c| c.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!(
                    "unknown chaos scenario `{s}` (expected one of: {})",
                    ChaosScenario::ALL.map(|c| c.label()).join(" | ")
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let p = FaultPlan::empty(7);
        assert!(p.is_empty());
        assert_eq!(p.attempt_fault(0, 1, 0, 1, 0.0), None);
        assert_eq!(p.link_penalty(0, 1, 0.0), None);
        assert_eq!(p.compute_multiplier(3), 1.0);
        assert_eq!(p.rank_failure(), None);
    }

    #[test]
    fn attempt_faults_are_deterministic_and_seed_sensitive() {
        let mk = |seed| {
            FaultPlan::from_spec(FaultSpec {
                seed,
                loss_prob: 0.3,
                corrupt_prob: 0.1,
                ..Default::default()
            })
            .unwrap()
        };
        let (a, b, c) = (mk(1), mk(1), mk(2));
        let verdicts = |p: &FaultPlan| {
            (0..200)
                .map(|i| p.attempt_fault(0, 1, i, 1, 0.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(verdicts(&a), verdicts(&b), "same seed, same verdicts");
        assert_ne!(verdicts(&a), verdicts(&c), "seed must matter");
        let lost = verdicts(&a)
            .iter()
            .filter(|v| **v == Some(FaultKind::Lost))
            .count();
        let corrupt = verdicts(&a)
            .iter()
            .filter(|v| **v == Some(FaultKind::Corrupted))
            .count();
        // 200 draws at p=0.3 / p=0.1: both classes must show up, loss more
        assert!(
            lost > corrupt && corrupt > 0,
            "lost={lost} corrupt={corrupt}"
        );
    }

    #[test]
    fn retries_eventually_succeed_under_moderate_loss() {
        let p = FaultPlan::from_spec(FaultSpec {
            seed: 3,
            loss_prob: 0.2,
            ..Default::default()
        })
        .unwrap();
        for seq in 0..500 {
            let ok = (1..=8).any(|a| p.attempt_fault(2, 5, seq, a, 0.0).is_none());
            assert!(ok, "message {seq} lost on all 8 attempts at p=0.2");
        }
    }

    #[test]
    fn loss_window_bounds_injection() {
        let p = FaultPlan::from_spec(FaultSpec {
            seed: 9,
            loss_prob: 0.9,
            loss_window: Some((1.0, 2.0)),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(p.attempt_fault(0, 1, 0, 1, 0.5), None, "before window");
        assert_eq!(p.attempt_fault(0, 1, 0, 1, 2.0), None, "after window");
        let inside = (0..50).filter(|&s| p.attempt_fault(0, 1, s, 1, 1.5).is_some());
        assert!(inside.count() > 30, "p=0.9 inside the window");
    }

    #[test]
    fn link_windows_compound_and_expire() {
        let p = FaultPlan::from_spec(FaultSpec {
            seed: 0,
            degraded_links: vec![
                LinkWindow {
                    node_a: 0,
                    node_b: 1,
                    start_s: 0.0,
                    end_s: 10.0,
                    bandwidth_factor: 2.0,
                    extra_latency_s: 1.0e-6,
                },
                LinkWindow {
                    node_a: 1,
                    node_b: 0,
                    start_s: 5.0,
                    end_s: 10.0,
                    bandwidth_factor: 3.0,
                    extra_latency_s: 2.0e-6,
                },
            ],
            ..Default::default()
        })
        .unwrap();
        let early = p.link_penalty(0, 1, 1.0).unwrap();
        assert_eq!(early.bandwidth_factor, 2.0);
        // both windows active, and the edge is undirected
        let late = p.link_penalty(1, 0, 6.0).unwrap();
        assert_eq!(late.bandwidth_factor, 6.0);
        assert!((late.extra_latency_s - 3.0e-6).abs() < 1e-18);
        assert_eq!(p.link_penalty(0, 1, 10.0), None, "window expired");
        assert_eq!(p.link_penalty(0, 2, 1.0), None, "other edge healthy");
    }

    #[test]
    fn straggler_multipliers_apply_per_rank() {
        let p = FaultPlan::from_spec(FaultSpec {
            seed: 0,
            stragglers: vec![(3, 1.5), (3, 2.0), (0, 1.1)],
            ..Default::default()
        })
        .unwrap();
        assert_eq!(p.compute_multiplier(3), 3.0);
        assert_eq!(p.compute_multiplier(0), 1.1);
        assert_eq!(p.compute_multiplier(1), 1.0);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let bad = |spec: FaultSpec| FaultPlan::from_spec(spec).is_err();
        assert!(bad(FaultSpec {
            loss_prob: 1.0,
            ..Default::default()
        }));
        assert!(bad(FaultSpec {
            loss_prob: 0.6,
            corrupt_prob: 0.5,
            ..Default::default()
        }));
        assert!(bad(FaultSpec {
            stragglers: vec![(0, 0.5)],
            ..Default::default()
        }));
        assert!(bad(FaultSpec {
            degraded_links: vec![LinkWindow {
                node_a: 0,
                node_b: 1,
                start_s: 2.0,
                end_s: 1.0,
                bandwidth_factor: 2.0,
                extra_latency_s: 0.0,
            }],
            ..Default::default()
        }));
        assert!(bad(FaultSpec {
            loss_window: Some((3.0, 3.0)),
            ..Default::default()
        }));
    }

    #[test]
    fn chaos_scenarios_round_trip_their_labels() {
        for c in ChaosScenario::ALL {
            assert_eq!(c.label().parse::<ChaosScenario>(), Ok(c));
            let plan = c.plan(11, 4, 10);
            assert!(!plan.is_empty(), "{c} schedules something");
        }
        assert!("mpi-opt".parse::<ChaosScenario>().is_err());
        // rank-failure picks a valid step and rank even for tiny runs
        let p = ChaosScenario::RankFailure.plan(1, 1, 2);
        let f = p.rank_failure().unwrap();
        assert!(f.rank < 1 && f.step >= 1);
    }
}
