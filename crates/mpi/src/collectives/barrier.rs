//! Dissemination barrier.

use crate::comm::Comm;
use crate::message::Payload;

use super::coll_tag;

/// Synchronize all ranks (dissemination algorithm, ⌈log₂ p⌉ rounds).
/// After return, every rank's clock is ≥ the time every other rank
/// entered the barrier.
pub fn barrier(comm: &mut Comm) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    comm.verify_coll("barrier", "-", "-", 0, "dissemination", None, 0);
    let rank = comm.rank();
    let seq = comm.next_seq();
    let t0 = comm.now();
    let mut round = 0u64;
    let mut dist = 1usize;
    while dist < p {
        let to = (rank + dist) % p;
        let from = (rank + p - dist) % p;
        comm.send(to, coll_tag(seq, round), Payload::Bytes(Vec::new()), 0);
        let _ = comm.recv(from, coll_tag(seq, round), 0);
        dist <<= 1;
        round += 1;
    }
    dlsr_trace::record_span(
        || "barrier".to_string(),
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
    dlsr_trace::counter_add(dlsr_trace::report::keys::MPI_COLLECTIVES, 1.0);
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    #[test]
    fn barrier_synchronizes_clocks() {
        // Rank 3 does heavy compute before the barrier; everyone's clock
        // after the barrier must be at least that compute time.
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            if c.rank() == 3 {
                c.advance(1.0); // one virtual second of work
            }
            barrier(c);
            c.now()
        });
        for (r, t) in res.ranks.iter().enumerate() {
            assert!(*t >= 1.0, "rank {r} clock {t} < barrier bound");
        }
    }

    #[test]
    fn barrier_works_on_non_power_of_two() {
        let topo = ClusterTopology {
            name: "odd".into(),
            nodes: 3,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            barrier(c);
            c.rank()
        });
        assert_eq!(res.ranks, vec![0, 1, 2]);
    }
}
