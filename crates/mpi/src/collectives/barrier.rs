//! Dissemination barrier.

use crate::comm::Comm;

use super::tasks::drive_barrier;

/// Synchronize all ranks (dissemination algorithm, ⌈log₂ p⌉ rounds).
/// After return, every rank's clock is ≥ the time every other rank
/// entered the barrier. The schedule is [`super::tasks::BarrierTask`],
/// driven in place.
pub fn barrier(comm: &mut Comm) {
    drive_barrier(comm);
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    #[test]
    fn barrier_synchronizes_clocks() {
        // Rank 3 does heavy compute before the barrier; everyone's clock
        // after the barrier must be at least that compute time.
        let topo = ClusterTopology::lassen(1);
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            if c.rank() == 3 {
                c.advance(1.0); // one virtual second of work
            }
            barrier(c);
            c.now()
        });
        for (r, t) in res.ranks.iter().enumerate() {
            assert!(*t >= 1.0, "rank {r} clock {t} < barrier bound");
        }
    }

    #[test]
    fn barrier_works_on_non_power_of_two() {
        let topo = ClusterTopology {
            name: "odd".into(),
            nodes: 3,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            barrier(c);
            c.rank()
        });
        assert_eq!(res.ranks, vec![0, 1, 2]);
    }
}
