//! Rooted collectives: `MPI_Reduce`, `MPI_Gather`, `MPI_Scatter`.
//!
//! Horovod's data path is allreduce/bcast, but its *control* path and
//! checkpoint/metric aggregation are rooted operations; they also complete
//! the MPI surface for downstream users of the simulator.

use crate::comm::Comm;
use crate::message::Payload;

use super::{coll_tag, ReduceOp};

/// Reduce `buf` from every rank onto `root` (binomial tree). Non-root
/// buffers are left untouched; the root's buffer holds the reduction.
pub fn reduce(comm: &mut Comm, buf: &mut [f32], root: usize, buf_id: u64, op: ReduceOp) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    comm.verify_coll(
        "reduce",
        crate::verify::op_name(op),
        "f32",
        buf.len(),
        "binomial",
        None,
        root,
    );
    let rank = comm.rank();
    let seq = comm.next_seq();
    let relative = (rank + p - root) % p;
    // scratch accumulator so non-root ranks do not clobber their input
    let mut acc = buf.to_vec();
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let dst = (rank + p - mask) % p;
            comm.send(dst, coll_tag(seq, 0), Payload::F32(acc.clone()), buf_id);
            return; // sent up the tree; done
        }
        let src_rel = relative + mask;
        if src_rel < p {
            let src = (src_rel + root) % p;
            let incoming = comm.recv(src, coll_tag(seq, 0), buf_id).into_f32();
            comm.charge_reduce(incoming.len());
            op.combine(&mut acc, &incoming);
        }
        mask <<= 1;
    }
    // only the root reaches here
    buf.copy_from_slice(&acc);
}

/// Gather every rank's buffer to `root`, in rank order. Non-root ranks
/// receive an empty vec.
pub fn gather(comm: &mut Comm, mine: Vec<f32>, root: usize, buf_id: u64) -> Vec<Vec<f32>> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return vec![mine];
    }
    comm.verify_coll("gather", "-", "f32", 0, "linear", None, root);
    let seq = comm.next_seq();
    if rank == root {
        let mut out: Vec<Vec<f32>> = vec![Vec::new(); p];
        out[rank] = mine;
        for src in (0..p).filter(|&r| r != root) {
            out[src] = comm.recv(src, coll_tag(seq, 0), buf_id).into_f32();
        }
        out
    } else {
        comm.send(root, coll_tag(seq, 0), Payload::F32(mine), buf_id);
        Vec::new()
    }
}

/// Scatter `parts` (one per rank, significant at `root` only) so each rank
/// receives its own slice.
pub fn scatter(
    comm: &mut Comm,
    parts: Option<Vec<Vec<f32>>>,
    root: usize,
    buf_id: u64,
) -> Vec<f32> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        let mut parts = parts.expect("root provides parts");
        assert_eq!(parts.len(), 1, "one part per rank");
        return parts.pop().expect("one part");
    }
    comm.verify_coll("scatter", "-", "f32", 0, "linear", None, root);
    let seq = comm.next_seq();
    if rank == root {
        let parts = parts.expect("root provides parts");
        assert_eq!(parts.len(), p, "one part per rank");
        let mut own = Vec::new();
        for (dst, part) in parts.into_iter().enumerate() {
            if dst == root {
                own = part;
            } else {
                comm.send(dst, coll_tag(seq, 0), Payload::F32(part), buf_id);
            }
        }
        own
    } else {
        comm.recv(root, coll_tag(seq, 0), buf_id).into_f32()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    fn topo() -> ClusterTopology {
        ClusterTopology::lassen(2) // 8 ranks
    }

    #[test]
    fn reduce_sums_onto_root_only() {
        for root in [0usize, 3, 7] {
            let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), move |c| {
                let mut buf = vec![c.rank() as f32 + 1.0; 5];
                reduce(c, &mut buf, root, 1, ReduceOp::Sum);
                buf
            });
            // Σ (r+1) for r in 0..8 = 36
            assert!(res.ranks[root].iter().all(|&v| v == 36.0), "root {root}");
            for (r, buf) in res.ranks.iter().enumerate() {
                if r != root {
                    assert!(
                        buf.iter().all(|&v| v == r as f32 + 1.0),
                        "rank {r} buffer was clobbered"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_max_finds_global_extremum() {
        let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), |c| {
            let mut buf = vec![(c.rank() as f32 - 3.5).abs()];
            reduce(c, &mut buf, 0, 1, ReduceOp::Max);
            buf[0]
        });
        assert_eq!(res.ranks[0], 3.5);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), |c| {
            gather(c, vec![c.rank() as f32; c.rank() + 1], 2, 1)
        });
        let at_root = &res.ranks[2];
        assert_eq!(at_root.len(), 8);
        for (src, block) in at_root.iter().enumerate() {
            assert_eq!(block.len(), src + 1);
            assert!(block.iter().all(|&v| v == src as f32));
        }
        assert!(res.ranks[0].is_empty(), "non-root gets nothing");
    }

    #[test]
    fn scatter_distributes_parts() {
        let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), |c| {
            let parts = (c.rank() == 1).then(|| (0..8).map(|r| vec![r as f32 * 10.0; 2]).collect());
            scatter(c, parts, 1, 1)
        });
        for (r, part) in res.ranks.iter().enumerate() {
            assert_eq!(part, &vec![r as f32 * 10.0; 2], "rank {r}");
        }
    }

    #[test]
    fn scatter_then_gather_roundtrips() {
        let res = MpiWorld::run(&topo(), MpiConfig::mpi_opt(), |c| {
            let parts =
                (c.rank() == 0).then(|| (0..8).map(|r| vec![r as f32, r as f32 + 0.5]).collect());
            let mine = scatter(c, parts, 0, 1);
            gather(c, mine, 0, 2)
        });
        let back = &res.ranks[0];
        for (r, block) in back.iter().enumerate() {
            assert_eq!(block, &vec![r as f32, r as f32 + 0.5]);
        }
    }
}
