//! Resumable ([`EventTask`]) forms of the costs-only collectives.
//!
//! Each state machine runs the *same* communication schedule as the
//! blocking entry points in [`super::synthetic`] and [`super::barrier`] —
//! in fact those entry points are thin [`drive_task`] wrappers around
//! these, so every schedule has exactly one implementation. On the driven
//! engine a blocked receive returns [`Poll::Pending`] instead of parking
//! an OS thread; on the context cores [`drive_task`] blocks in place.
//!
//! The re-poll contract: every `poll` records all side effects (sends
//! posted, reduce charges) in task state *before* returning `Pending`, so
//! resuming retries only the blocked [`Comm::try_recv_buffered`] and never
//! replays a send.

use crate::comm::Comm;
use crate::executor::{drive_task, EventTask, Poll};
use crate::message::Payload;

use super::synthetic::{synth, synth_wire};
use super::wire::{self, WireFormat};
use super::{chunk_range, coll_tag, AllreduceAlgorithm};

/// Ring allreduce (reduce-scatter + allgather) over the strided
/// participant set `{0, stride, 2·stride, …, (p−1)·stride}` — all ranks
/// (`stride` 1) or the node leaders (`stride` = GPUs per node). The set is
/// stored as `(p, stride)` rather than a `Vec`: these machines are built
/// once per fusion group per step, and the allocation was visible in the
/// driven-engine profile.
struct RingSm {
    elems: usize,
    p: usize,
    buf_id: u64,
    seq: u64,
    wf: WireFormat,
    me: usize,
    right: usize,
    left: usize,
    phase: usize,
    step: usize,
    sent: bool,
}

impl RingSm {
    fn new(
        comm: &Comm,
        elems: usize,
        p: usize,
        stride: usize,
        buf_id: u64,
        seq: u64,
        wf: WireFormat,
    ) -> RingSm {
        debug_assert_eq!(
            comm.rank() % stride,
            0,
            "caller participates in the strided ring"
        );
        let me = comm.rank() / stride;
        debug_assert!(me < p, "caller participates in the ring");
        RingSm {
            elems,
            p,
            buf_id,
            seq,
            wf,
            me,
            right: ((me + 1) % p) * stride,
            left: ((me + p - 1) % p) * stride,
            phase: 0,
            step: 0,
            sent: false,
        }
    }

    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = self.p;
        if p <= 1 {
            return Poll::Ready;
        }
        while self.phase < 2 {
            while self.step < p - 1 {
                let step = self.step;
                let (tag, send_chunk) = if self.phase == 0 {
                    (coll_tag(self.seq, step as u64), (self.me + p - step) % p)
                } else {
                    (
                        coll_tag(self.seq, (p + step) as u64),
                        (self.me + 1 + p - step) % p,
                    )
                };
                if !self.sent {
                    let send_elems = chunk_range(self.elems, p, send_chunk).len();
                    comm.isend(
                        self.right,
                        tag,
                        synth_wire(send_elems, self.wf),
                        self.buf_id,
                    );
                    self.sent = true;
                }
                if comm
                    .try_recv_buffered(self.left, tag, self.buf_id)
                    .is_none()
                {
                    return Poll::Pending {
                        src: self.left,
                        tag,
                    };
                }
                if self.phase == 0 {
                    let recv_chunk = (self.me + p - step - 1) % p;
                    comm.charge_reduce(chunk_range(self.elems, p, recv_chunk).len());
                }
                self.sent = false;
                self.step += 1;
            }
            self.phase += 1;
            self.step = 0;
        }
        Poll::Ready
    }
}

/// Pipelined ring: ring blocks split into `chunk_elems` sub-chunks,
/// sub-send `i+1` posted the moment sub-recv `i` lands.
struct PipeSm {
    elems: usize,
    p: usize,
    buf_id: u64,
    seq: u64,
    chunk_elems: usize,
    wf: WireFormat,
    me: usize,
    right: usize,
    left: usize,
    phase: usize,
    step: usize,
    next_send: usize,
    recv_i: usize,
    primed: bool,
}

impl PipeSm {
    #[allow(clippy::too_many_arguments)]
    fn new(
        comm: &Comm,
        elems: usize,
        p: usize,
        stride: usize,
        buf_id: u64,
        seq: u64,
        chunk_elems: usize,
        wf: WireFormat,
    ) -> PipeSm {
        // Stride 1 for all-rank rings; gpus-per-node for the hierarchical
        // leader ring.
        debug_assert_eq!(
            comm.rank() % stride,
            0,
            "caller participates in the strided ring"
        );
        let me = comm.rank() / stride;
        debug_assert!(me < p, "caller participates in the ring");
        PipeSm {
            elems,
            p,
            buf_id,
            seq,
            chunk_elems,
            wf,
            me,
            right: ((me + 1) % p) * stride,
            left: ((me + p - 1) % p) * stride,
            phase: 0,
            step: 0,
            next_send: 0,
            recv_i: 0,
            primed: false,
        }
    }

    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = self.p;
        if p <= 1 {
            return Poll::Ready;
        }
        // Mirror of the real pipelined ring: sub-chunks take the path the
        // parent buffer's rendezvous established, so path selection keys
        // on the full dense size. Set per poll (a poll never interleaves
        // with another task's sends) and cleared on every exit.
        comm.set_rendezvous_bytes(Some((self.elems * 4) as u64));
        let ce = self.chunk_elems;
        let sub_len = |block: &std::ops::Range<usize>, i: usize| {
            let start = block.start + i * ce;
            (start + ce).min(block.end) - start
        };
        while self.phase < 2 {
            while self.step < p - 1 {
                let (send_block, recv_block) = if self.phase == 0 {
                    (
                        chunk_range(self.elems, p, (self.me + p - self.step) % p),
                        chunk_range(self.elems, p, (self.me + p - self.step - 1) % p),
                    )
                } else {
                    (
                        chunk_range(self.elems, p, (self.me + 1 + p - self.step) % p),
                        chunk_range(self.elems, p, (self.me + p - self.step) % p),
                    )
                };
                let phase_step = ((self.phase * p + self.step) as u64) << 20;
                let n_send = send_block.len().div_ceil(ce);
                let n_recv = recv_block.len().div_ceil(ce);
                if !self.primed {
                    if n_send > 0 {
                        comm.isend(
                            self.right,
                            coll_tag(self.seq, phase_step),
                            synth_wire(sub_len(&send_block, 0), self.wf),
                            self.buf_id,
                        );
                        self.next_send = 1;
                    }
                    self.primed = true;
                }
                while self.recv_i < n_recv {
                    let tag = coll_tag(self.seq, phase_step | self.recv_i as u64);
                    if comm
                        .try_recv_buffered(self.left, tag, self.buf_id)
                        .is_none()
                    {
                        comm.set_rendezvous_bytes(None);
                        return Poll::Pending {
                            src: self.left,
                            tag,
                        };
                    }
                    if self.next_send < n_send {
                        comm.isend(
                            self.right,
                            coll_tag(self.seq, phase_step | self.next_send as u64),
                            synth_wire(sub_len(&send_block, self.next_send), self.wf),
                            self.buf_id,
                        );
                        self.next_send += 1;
                    }
                    if self.phase == 0 {
                        comm.charge_reduce(sub_len(&recv_block, self.recv_i));
                    }
                    self.recv_i += 1;
                }
                while self.next_send < n_send {
                    comm.isend(
                        self.right,
                        coll_tag(self.seq, phase_step | self.next_send as u64),
                        synth_wire(sub_len(&send_block, self.next_send), self.wf),
                        self.buf_id,
                    );
                    self.next_send += 1;
                }
                self.step += 1;
                self.next_send = 0;
                self.recv_i = 0;
                self.primed = false;
            }
            self.phase += 1;
            self.step = 0;
        }
        comm.set_rendezvous_bytes(None);
        Poll::Ready
    }
}

/// Recursive doubling: log₂ p pairwise exchanges (power-of-two worlds).
struct RdSm {
    elems: usize,
    buf_id: u64,
    seq: u64,
    wf: WireFormat,
    mask: usize,
    step: u64,
    sent: bool,
}

impl RdSm {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = comm.size();
        let rank = comm.rank();
        while self.mask < p {
            let partner = rank ^ self.mask;
            let tag = coll_tag(self.seq, self.step);
            if !self.sent {
                comm.isend(partner, tag, synth_wire(self.elems, self.wf), self.buf_id);
                self.sent = true;
            }
            if comm.try_recv_buffered(partner, tag, self.buf_id).is_none() {
                return Poll::Pending { src: partner, tag };
            }
            comm.charge_reduce(self.elems);
            self.sent = false;
            self.mask <<= 1;
            self.step += 1;
        }
        Poll::Ready
    }
}

/// Top-k sparse allreduce: `p−1` ring hops circulating every rank's `k`
/// selected coordinates (8 bytes each on the wire), then `p` dense-apply
/// reduce charges — the costs-only twin of the real `topk_allreduce`.
struct TopkSm {
    k: usize,
    buf_id: u64,
    seq: u64,
    step: usize,
    sent: bool,
}

impl TopkSm {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = comm.size();
        let rank = comm.rank();
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        while self.step < p - 1 {
            let tag = coll_tag(self.seq, self.step as u64);
            if !self.sent {
                comm.isend(
                    right,
                    tag,
                    Payload::Synthetic {
                        bytes: (self.k * 8) as u64,
                    },
                    self.buf_id,
                );
                self.sent = true;
            }
            if comm.try_recv_buffered(left, tag, self.buf_id).is_none() {
                return Poll::Pending { src: left, tag };
            }
            self.sent = false;
            self.step += 1;
        }
        for _ in 0..p {
            comm.charge_reduce(self.k);
        }
        Poll::Ready
    }
}

/// Two-level: binomial intra-node reduce → leader ring → binomial bcast.
/// Only the inter-node leader ring is wire-compressed (and pipelined when
/// hierarchical promotion is on), exactly like the real `two_level`.
enum TwoLevelState {
    IntraReduce { mask: usize },
    Ring(RingSm),
    Pipe(PipeSm),
    Bcast,
    Done,
}

struct TwoLevelSm {
    elems: usize,
    buf_id: u64,
    seq: u64,
    wf: WireFormat,
    state: TwoLevelState,
}

impl TwoLevelSm {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        // Copy the two scalars out instead of cloning the topology — this
        // poll is the engine's hottest path and the clone's heap traffic
        // (the name `String`) showed up in the simscale profile.
        let (gpn, nodes) = {
            let t = comm.topology();
            (t.gpus_per_node, t.nodes)
        };
        let rank = comm.rank();
        let leader = (rank / gpn) * gpn;
        let r = rank - leader;
        loop {
            match &mut self.state {
                TwoLevelState::IntraReduce { mask } => {
                    if gpn > 1 {
                        while *mask < gpn {
                            if r & *mask != 0 {
                                comm.send(
                                    leader + (r - *mask),
                                    coll_tag(self.seq, 0),
                                    synth(self.elems),
                                    self.buf_id,
                                );
                                break;
                            }
                            let src = r + *mask;
                            if src < gpn {
                                let tag = coll_tag(self.seq, 0);
                                if comm
                                    .try_recv_buffered(leader + src, tag, self.buf_id)
                                    .is_none()
                                {
                                    return Poll::Pending {
                                        src: leader + src,
                                        tag,
                                    };
                                }
                                comm.charge_reduce(self.elems);
                            }
                            *mask <<= 1;
                        }
                    }
                    self.state = if nodes > 1 && rank == leader {
                        // leader ring: ranks {0, gpn, 2·gpn, …}
                        let tuning = comm.config().tuning;
                        if tuning.hierarchical
                            && (self.elems * 4) as u64 >= tuning.pipeline_threshold
                        {
                            let chunk_elems = (tuning.pipeline_chunk as usize / 4).max(1);
                            TwoLevelState::Pipe(PipeSm::new(
                                comm,
                                self.elems,
                                nodes,
                                gpn,
                                self.buf_id.wrapping_add(1),
                                self.seq,
                                chunk_elems,
                                self.wf,
                            ))
                        } else {
                            TwoLevelState::Ring(RingSm::new(
                                comm,
                                self.elems,
                                nodes,
                                gpn,
                                self.buf_id.wrapping_add(1),
                                self.seq,
                                self.wf,
                            ))
                        }
                    } else {
                        TwoLevelState::Bcast
                    };
                }
                TwoLevelState::Ring(ring) => match ring.poll(comm) {
                    Poll::Ready => self.state = TwoLevelState::Bcast,
                    pending => return pending,
                },
                TwoLevelState::Pipe(pipe) => match pipe.poll(comm) {
                    Poll::Ready => self.state = TwoLevelState::Bcast,
                    pending => return pending,
                },
                TwoLevelState::Bcast => {
                    if gpn > 1 {
                        // Parent is the lowest set bit of r (none for the
                        // leader); the fan-out below is pure sends, so the
                        // only park point is that one receive.
                        let mut mask = 1usize;
                        let mut recv_mask = 0usize;
                        while mask < gpn {
                            if r & mask != 0 {
                                recv_mask = mask;
                                break;
                            }
                            mask <<= 1;
                        }
                        if recv_mask != 0 {
                            let tag = coll_tag(self.seq, 1);
                            let src = leader + (r - recv_mask);
                            if comm.try_recv_buffered(src, tag, self.buf_id).is_none() {
                                return Poll::Pending { src, tag };
                            }
                            mask = recv_mask;
                        }
                        mask >>= 1;
                        while mask > 0 {
                            if r + mask < gpn {
                                comm.send(
                                    leader + r + mask,
                                    coll_tag(self.seq, 1),
                                    synth(self.elems),
                                    self.buf_id,
                                );
                            }
                            mask >>= 1;
                        }
                    }
                    self.state = TwoLevelState::Done;
                }
                TwoLevelState::Done => return Poll::Ready,
            }
        }
    }
}

enum AllreduceInner {
    Ring(RingSm),
    Rd(RdSm),
    TwoLevel(TwoLevelSm),
    Pipe(PipeSm),
    Topk(TopkSm),
}

/// Costs-only sum-allreduce of `elems` f32 elements as a resumable task —
/// the state-machine twin of [`super::synthetic::allreduce_elems`] (which
/// now drives this).
pub struct AllreduceElemsTask {
    elems: usize,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    wf: WireFormat,
    t0: f64,
    inner: Option<AllreduceInner>,
}

impl AllreduceElemsTask {
    /// Build the task; nothing happens until the first `poll`.
    pub fn new(elems: usize, buf_id: u64, algo: AllreduceAlgorithm) -> AllreduceElemsTask {
        AllreduceElemsTask::new_wire(elems, buf_id, algo, WireFormat::F32)
    }

    /// [`AllreduceElemsTask::new`] with an explicit wire format — mirrors
    /// the real schedule's encoded payload sizes (and the top-k sparse
    /// schedule) without real data.
    pub fn new_wire(
        elems: usize,
        buf_id: u64,
        algo: AllreduceAlgorithm,
        wf: WireFormat,
    ) -> AllreduceElemsTask {
        AllreduceElemsTask {
            elems,
            buf_id,
            algo,
            wf,
            t0: 0.0,
            inner: None,
        }
    }
}

impl EventTask for AllreduceElemsTask {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        if comm.size() == 1 {
            return Poll::Ready;
        }
        if self.inner.is_none() {
            comm.verify_coll(
                "allreduce",
                "sum",
                "synth",
                self.elems,
                crate::verify::algo_name(self.algo),
                None,
                0,
            );
            self.t0 = comm.now();
            let size = comm.size();
            let inner = if let WireFormat::TopK { k_permille } = self.wf {
                AllreduceInner::Topk(TopkSm {
                    k: wire::topk_count(self.elems, k_permille),
                    buf_id: self.buf_id,
                    seq: comm.next_seq(),
                    step: 0,
                    sent: false,
                })
            } else {
                match self.algo {
                    AllreduceAlgorithm::Ring => {
                        let seq = comm.next_seq();
                        AllreduceInner::Ring(RingSm::new(
                            comm,
                            self.elems,
                            size,
                            1,
                            self.buf_id,
                            seq,
                            self.wf,
                        ))
                    }
                    AllreduceAlgorithm::RecursiveDoubling => {
                        if comm.size().is_power_of_two() {
                            AllreduceInner::Rd(RdSm {
                                elems: self.elems,
                                buf_id: self.buf_id,
                                seq: comm.next_seq(),
                                wf: self.wf,
                                mask: 1,
                                step: 0,
                                sent: false,
                            })
                        } else {
                            let seq = comm.next_seq();
                            AllreduceInner::Ring(RingSm::new(
                                comm,
                                self.elems,
                                size,
                                1,
                                self.buf_id,
                                seq,
                                self.wf,
                            ))
                        }
                    }
                    AllreduceAlgorithm::TwoLevel => AllreduceInner::TwoLevel(TwoLevelSm {
                        elems: self.elems,
                        buf_id: self.buf_id,
                        seq: comm.next_seq(),
                        wf: self.wf,
                        state: TwoLevelState::IntraReduce { mask: 1 },
                    }),
                    AllreduceAlgorithm::PipelinedRing => {
                        let seq = comm.next_seq();
                        let chunk_elems = (comm.config().tuning.pipeline_chunk as usize / 4).max(1);
                        AllreduceInner::Pipe(PipeSm::new(
                            comm,
                            self.elems,
                            size,
                            1,
                            self.buf_id,
                            seq,
                            chunk_elems,
                            self.wf,
                        ))
                    }
                }
            };
            self.inner = Some(inner);
        }
        let done = match self.inner.as_mut().expect("initialized above") {
            AllreduceInner::Ring(sm) => sm.poll(comm),
            AllreduceInner::Rd(sm) => sm.poll(comm),
            AllreduceInner::TwoLevel(sm) => sm.poll(comm),
            AllreduceInner::Pipe(sm) => sm.poll(comm),
            AllreduceInner::Topk(sm) => sm.poll(comm),
        };
        if let Poll::Ready = done {
            let (algo, wf, bytes) = (self.algo, self.wf, self.elems * 4);
            dlsr_trace::record_span(
                move || {
                    let name = if let WireFormat::TopK { .. } = wf {
                        "topk".to_string()
                    } else if wf.is_f32() {
                        format!("{algo:?}")
                    } else {
                        format!("{algo:?}+{wf}")
                    };
                    format!("allreduce.{name} {bytes}B")
                },
                dlsr_trace::cat::MPI,
                self.t0,
                comm.now(),
            );
        }
        done
    }
}

/// Dissemination barrier as a resumable task — the state-machine twin of
/// [`super::barrier`] (which now drives this).
#[derive(Default)]
pub struct BarrierTask {
    started: bool,
    seq: u64,
    t0: f64,
    dist: usize,
    round: u64,
    sent: bool,
}

impl BarrierTask {
    /// Build the task; nothing happens until the first `poll`.
    pub fn new() -> BarrierTask {
        BarrierTask::default()
    }
}

impl EventTask for BarrierTask {
    fn poll(&mut self, comm: &mut Comm) -> Poll {
        let p = comm.size();
        if p == 1 {
            return Poll::Ready;
        }
        if !self.started {
            comm.verify_coll("barrier", "-", "-", 0, "dissemination", None, 0);
            self.seq = comm.next_seq();
            self.t0 = comm.now();
            self.dist = 1;
            self.started = true;
        }
        let rank = comm.rank();
        while self.dist < p {
            let tag = coll_tag(self.seq, self.round);
            if !self.sent {
                comm.send((rank + self.dist) % p, tag, Payload::Bytes(Vec::new()), 0);
                self.sent = true;
            }
            let from = (rank + p - self.dist) % p;
            if comm.try_recv_buffered(from, tag, 0).is_none() {
                return Poll::Pending { src: from, tag };
            }
            self.sent = false;
            self.dist <<= 1;
            self.round += 1;
        }
        dlsr_trace::record_span(
            || "barrier".to_string(),
            dlsr_trace::cat::MPI,
            self.t0,
            comm.now(),
        );
        dlsr_trace::counter_add(dlsr_trace::report::keys::MPI_COLLECTIVES, 1.0);
        Poll::Ready
    }
}

/// Blocking entry used by [`super::synthetic::allreduce_elems`].
pub(crate) fn drive_allreduce_elems(
    comm: &mut Comm,
    elems: usize,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    wf: WireFormat,
) {
    let mut task = AllreduceElemsTask::new_wire(elems, buf_id, algo, wf);
    drive_task(comm, &mut task);
}

/// Blocking entry used by [`super::barrier`].
pub(crate) fn drive_barrier(comm: &mut Comm) {
    let mut task = BarrierTask::new();
    drive_task(comm, &mut task);
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::executor::{drive_program, RankProgram, Step};
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    /// A small rank program with per-rank clock skew between collectives,
    /// so scheduling mistakes would show up as clock divergence.
    struct Prog {
        algo: AllreduceAlgorithm,
        left: usize,
    }

    impl Prog {
        fn new(algo: AllreduceAlgorithm) -> Prog {
            Prog { algo, left: 3 }
        }
    }

    impl RankProgram for Prog {
        type Out = f64;
        fn next(&mut self, comm: &mut Comm) -> Step {
            if self.left == 0 {
                return Step::Done;
            }
            self.left -= 1;
            comm.advance(1.0e-5 * (comm.rank() as f64 + 1.0));
            if self.left == 1 {
                Step::Task(BarrierTask::new().into())
            } else {
                Step::Task(AllreduceElemsTask::new(123_457, 1, self.algo).into())
            }
        }
        fn finish(&mut self, comm: &mut Comm, _trace: Vec<dlsr_trace::TraceEvent>) -> f64 {
            comm.now()
        }
    }

    /// The tentpole's correctness bar: the driven engine, the event
    /// context core (at several worker counts) and the legacy threaded
    /// core produce *bit-identical* per-rank clocks.
    #[test]
    fn all_cores_agree_bitwise() {
        let topo = ClusterTopology::lassen(2); // 8 ranks
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
            AllreduceAlgorithm::PipelinedRing,
        ] {
            let driven =
                MpiWorld::run_driven(&topo, MpiConfig::mpi_opt(), |_| Prog::new(algo)).clocks;
            let threaded = MpiWorld::run_threaded(&topo, MpiConfig::mpi_opt(), move |c| {
                drive_program(c, Prog::new(algo))
            })
            .clocks;
            assert_eq!(
                bits(&driven),
                bits(&threaded),
                "{algo:?}: driven vs threaded"
            );
            for workers in [1usize, 4, 8] {
                let mut cfg = MpiConfig::mpi_opt();
                cfg.sim_workers = workers;
                let event =
                    MpiWorld::run_event(&topo, cfg, move |c| drive_program(c, Prog::new(algo)))
                        .clocks;
                assert_eq!(
                    bits(&driven),
                    bits(&event),
                    "{algo:?}: driven vs event(workers={workers})"
                );
            }
        }
    }

    fn bits(clocks: &[f64]) -> Vec<u64> {
        clocks.iter().map(|c| c.to_bits()).collect()
    }
}
