//! `MPI_Allreduce` — the collective that dominates data-parallel DNN
//! training (gradient averaging, §II-C). Four algorithms:
//!
//! - **Ring** (reduce-scatter + allgather): bandwidth-optimal,
//!   `2·(p−1)/p·n` bytes per rank,
//! - **Recursive doubling**: latency-optimal for small messages
//!   (power-of-two worlds; falls back to ring otherwise),
//! - **Two-level** (MVAPICH2-GDR's dense-GPU design): flat intra-node
//!   reduce to a node leader over NVLink/staged paths, ring allreduce among
//!   leaders over InfiniBand, intra-node broadcast. This is the algorithm
//!   whose intra-node phases the paper's CUDA IPC fix accelerates. With
//!   [`crate::config::CommTuning::hierarchical`] on, its inter-node leader
//!   ring is itself pipelined and wire-compressed on the large size bins.
//! - **Pipelined ring**: the ring schedule with every block streamed in
//!   `pipeline_chunk`-byte sub-chunks over nonblocking p2p, so the GPU
//!   reduce of sub-chunk *i* overlaps the wire transfer of sub-chunk *i+1*
//!   and only one sub-chunk reduction per step stays exposed. Bitwise
//!   identical to **Ring** (same per-element combine order).
//!
//! Entry point is the [`Allreduce`] request builder: buffer in, then
//! `.op(..)`, `.algo(..)`, `.wire(..)`, `.group(..)` as needed, then
//! `.run(comm)`. Unset algorithm/wire fall back to the size-binned
//! selection ([`crate::MpiConfig::select_comm`]), mirroring the paper's
//! message-size tuning. [`WireFormat`]s other than f32 compress what goes
//! on the wire while keeping accumulation in f32; each algorithm
//! re-quantizes at a single, documented point so every rank still lands on
//! bit-identical results (`docs/WIRE.md`).

use crate::comm::Comm;
use crate::config::CommChoice;
use crate::message::Payload;

use super::wire::{self, WireFormat};
use super::{chunk_range, coll_tag, ReduceOp};

/// Allreduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgorithm {
    /// Bandwidth-optimal ring.
    Ring,
    /// Latency-optimal recursive doubling (power-of-two worlds).
    RecursiveDoubling,
    /// Hierarchical: intra-node flat reduce + inter-node ring + bcast.
    TwoLevel,
    /// Ring with chunked, pipelined blocks (nonblocking p2p; reduce of one
    /// sub-chunk overlaps the transfer of the next).
    PipelinedRing,
}

impl AllreduceAlgorithm {
    /// Every algorithm, for sweeps and CLI help.
    pub const ALL: [AllreduceAlgorithm; 4] = [
        AllreduceAlgorithm::Ring,
        AllreduceAlgorithm::RecursiveDoubling,
        AllreduceAlgorithm::TwoLevel,
        AllreduceAlgorithm::PipelinedRing,
    ];

    /// Short label — matches the names recorded in collective verify
    /// signatures.
    pub fn label(self) -> &'static str {
        match self {
            AllreduceAlgorithm::Ring => "ring",
            AllreduceAlgorithm::RecursiveDoubling => "rd",
            AllreduceAlgorithm::TwoLevel => "two-level",
            AllreduceAlgorithm::PipelinedRing => "pipelined-ring",
        }
    }
}

impl std::fmt::Display for AllreduceAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for AllreduceAlgorithm {
    type Err = String;

    /// Case-insensitive, with the obvious aliases.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ring" => Ok(AllreduceAlgorithm::Ring),
            "rd" | "recursive-doubling" => Ok(AllreduceAlgorithm::RecursiveDoubling),
            "two-level" | "twolevel" | "hierarchical" => Ok(AllreduceAlgorithm::TwoLevel),
            "pipelined-ring" | "pipelined" | "pr" => Ok(AllreduceAlgorithm::PipelinedRing),
            _ => Err(format!(
                "unknown allreduce algorithm `{s}` (expected one of: ring, rd, \
                 two-level, pipelined-ring)"
            )),
        }
    }
}

/// A typed view of a collective's data buffer: the collective layer asks
/// it for element count, dtype and byte size instead of hardwiring
/// `len * 4` everywhere. f32 is the only gradient dtype today; the struct
/// is the seam where further dtypes land.
#[derive(Debug)]
pub struct CollectiveBuf<'a> {
    data: &'a mut Vec<f32>,
}

impl CollectiveBuf<'_> {
    /// Element count.
    pub fn elems(&self) -> usize {
        self.data.len()
    }

    /// Element dtype, as recorded in verify signatures.
    pub fn dtype(&self) -> &'static str {
        "f32"
    }

    /// Dense in-memory size in bytes (what the size-binned selection keys
    /// on — the *wire* size depends on the chosen [`WireFormat`]).
    pub fn dense_bytes(&self) -> u64 {
        (self.elems() * std::mem::size_of::<f32>()) as u64
    }
}

impl<'a> From<&'a mut Vec<f32>> for CollectiveBuf<'a> {
    fn from(data: &'a mut Vec<f32>) -> Self {
        CollectiveBuf { data }
    }
}

/// Allreduce request builder — the single entry point for in-place
/// allreduce across all ranks:
///
/// ```
/// use dlsr_mpi::collectives::{Allreduce, AllreduceAlgorithm, WireFormat};
/// use dlsr_mpi::{MpiConfig, MpiWorld};
/// use dlsr_net::ClusterTopology;
///
/// let topo = ClusterTopology::lassen(1);
/// let result = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |comm| {
///     let mut grads = vec![comm.rank() as f32; 8];
///     Allreduce::new(&mut grads)
///         .buf_id(1)
///         .algo(AllreduceAlgorithm::Ring)
///         .wire(WireFormat::F32)
///         .run(comm);
///     grads[0] // Σ ranks = 0+1+2+3
/// });
/// assert!(result.ranks.iter().all(|&v| v == 6.0));
/// ```
///
/// Unset knobs fall back to deterministic size-binned selection
/// ([`crate::MpiConfig::select_comm`]); [`Allreduce::run`] returns the
/// resolved [`CommChoice`], which is a pure function of the buffer size
/// and topology — every rank, and both the sequential and overlapped
/// optimizer paths, make the same choice.
#[derive(Debug)]
#[must_use = "an allreduce request does nothing until run(comm)"]
pub struct Allreduce<'a> {
    buf: CollectiveBuf<'a>,
    buf_id: u64,
    op: ReduceOp,
    algo: Option<AllreduceAlgorithm>,
    wire: Option<WireFormat>,
    group: Option<usize>,
}

impl<'a> Allreduce<'a> {
    /// Start a request over `buf` (anything convertible to a
    /// [`CollectiveBuf`]). Defaults: `buf_id` 0, [`ReduceOp::Sum`],
    /// size-binned algorithm and wire format, no group label.
    pub fn new(buf: impl Into<CollectiveBuf<'a>>) -> Self {
        Allreduce {
            buf: buf.into(),
            buf_id: 0,
            op: ReduceOp::Sum,
            algo: None,
            wire: None,
            group: None,
        }
    }

    /// Stable buffer identity for message matching (and the registration
    /// cache); concurrent collectives need distinct ids.
    pub fn buf_id(mut self, id: u64) -> Self {
        self.buf_id = id;
        self
    }

    /// Reduction operator (default [`ReduceOp::Sum`]).
    pub fn op(mut self, op: ReduceOp) -> Self {
        self.op = op;
        self
    }

    /// Pin the algorithm instead of size-binned selection.
    pub fn algo(mut self, algo: AllreduceAlgorithm) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Pin the wire format instead of size-binned selection.
    pub fn wire(mut self, wire: WireFormat) -> Self {
        self.wire = Some(wire);
        self
    }

    /// Fusion-group index carried into trace span names, so overlapped
    /// per-group (and per-chunk) spans can be told apart in the chrome
    /// timeline.
    pub fn group(mut self, g: usize) -> Self {
        self.group = Some(g);
        self
    }

    /// Execute the allreduce in place; returns the resolved
    /// algorithm + wire pair.
    ///
    /// # Panics
    ///
    /// Top-k wire compression is defined for [`ReduceOp::Sum`] only
    /// (error feedback has no meaning under Max/Min).
    pub fn run(self, comm: &mut Comm) -> CommChoice {
        let auto = comm
            .config()
            .select_comm(self.buf.dense_bytes(), comm.topology().nodes);
        let choice = CommChoice {
            algo: self.algo.unwrap_or(auto.algo),
            wire: self.wire.unwrap_or(auto.wire),
        };
        if matches!(choice.wire, WireFormat::TopK { .. }) {
            assert_eq!(
                self.op,
                ReduceOp::Sum,
                "top-k wire compression only supports ReduceOp::Sum"
            );
        }
        allreduce_grouped(
            comm,
            self.buf.data,
            self.buf_id,
            choice.algo,
            self.op,
            self.group,
            choice.wire,
        );
        choice
    }
}

/// In-place sum-allreduce of `buf` across all ranks using the configured
/// algorithm.
#[deprecated(note = "use the request builder: Allreduce::new(&mut buf).buf_id(id).run(comm)")]
pub fn allreduce(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) {
    let algo = comm.config().allreduce;
    Allreduce::new(buf)
        .buf_id(buf_id)
        .algo(algo)
        .wire(WireFormat::F32)
        .run(comm);
}

/// In-place sum-allreduce with an explicit algorithm.
#[deprecated(
    note = "use the request builder: Allreduce::new(&mut buf).buf_id(id).algo(algo).run(comm)"
)]
pub fn allreduce_with(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64, algo: AllreduceAlgorithm) {
    Allreduce::new(buf)
        .buf_id(buf_id)
        .algo(algo)
        .wire(WireFormat::F32)
        .run(comm);
}

/// In-place sum-allreduce with the algorithm chosen by message size.
/// Returns the algorithm used.
#[deprecated(
    note = "use the request builder: Allreduce::new(&mut buf).buf_id(id).run(comm) and read \
            `.algo` off the returned CommChoice"
)]
pub fn allreduce_auto(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) -> AllreduceAlgorithm {
    Allreduce::new(buf).buf_id(buf_id).run(comm).algo
}

/// [`allreduce_auto`] with an optional fusion-group index carried into the
/// trace span names.
#[deprecated(
    note = "use the request builder: Allreduce::new(&mut buf).buf_id(id).group(g).run(comm)"
)]
pub fn allreduce_auto_labeled(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    group: Option<usize>,
) -> AllreduceAlgorithm {
    let mut req = Allreduce::new(buf).buf_id(buf_id);
    if let Some(g) = group {
        req = req.group(g);
    }
    req.run(comm).algo
}

/// In-place allreduce with an explicit algorithm and reduction operator.
#[deprecated(
    note = "use the request builder: Allreduce::new(&mut buf).buf_id(id).algo(algo).op(op).run(comm)"
)]
pub fn allreduce_op(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    op: ReduceOp,
) {
    Allreduce::new(buf)
        .buf_id(buf_id)
        .algo(algo)
        .op(op)
        .wire(WireFormat::F32)
        .run(comm);
}

fn allreduce_grouped(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    op: ReduceOp,
    group: Option<usize>,
    wf: WireFormat,
) {
    if comm.size() == 1 {
        return;
    }
    // The wire format rides the signature's dtype slot: format skew
    // between ranks must surface as a CollectiveMismatch at the
    // rendezvous, never as a hang or a payload decode panic mid-schedule.
    comm.verify_coll(
        "allreduce",
        crate::verify::op_name(op),
        wf.dtype_name(),
        buf.len(),
        crate::verify::algo_name(algo),
        group,
        0,
    );
    let bytes = buf.len() * 4;
    {
        use dlsr_trace::report::keys;
        dlsr_trace::counter_add(keys::WIRE_DENSE_BYTES, bytes as f64);
        dlsr_trace::counter_add(keys::WIRE_BYTES, wf.wire_bytes(buf.len()) as f64);
    }
    let t0 = comm.now();
    if let WireFormat::TopK { k_permille } = wf {
        let seq = comm.next_seq();
        topk_allreduce(comm, buf, buf_id, seq, k_permille);
    } else {
        match algo {
            AllreduceAlgorithm::Ring => {
                let seq = comm.next_seq();
                let participants: Vec<usize> = (0..comm.size()).collect();
                ring_allreduce(comm, buf, &participants, buf_id, seq, op, wf);
            }
            AllreduceAlgorithm::RecursiveDoubling => {
                if comm.size().is_power_of_two() {
                    recursive_doubling(comm, buf, buf_id, op, wf);
                } else {
                    let seq = comm.next_seq();
                    let participants: Vec<usize> = (0..comm.size()).collect();
                    ring_allreduce(comm, buf, &participants, buf_id, seq, op, wf);
                }
            }
            AllreduceAlgorithm::TwoLevel => two_level(comm, buf, buf_id, op, group, wf),
            AllreduceAlgorithm::PipelinedRing => {
                let seq = comm.next_seq();
                let participants: Vec<usize> = (0..comm.size()).collect();
                let chunk_elems = (comm.config().tuning.pipeline_chunk as usize / 4).max(1);
                pipelined_ring_allreduce(
                    comm,
                    buf,
                    &participants,
                    buf_id,
                    seq,
                    op,
                    chunk_elems,
                    group,
                    wf,
                );
            }
        }
    }
    dlsr_trace::record_span(
        || {
            let name = if let WireFormat::TopK { .. } = wf {
                "topk".to_string()
            } else if wf.is_f32() {
                format!("{algo:?}")
            } else {
                format!("{algo:?}+{wf}")
            };
            match group {
                Some(g) => format!("allreduce.{name}[g{g}] {bytes}B"),
                None => format!("allreduce.{name} {bytes}B"),
            }
        },
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
    dlsr_trace::counter_add(dlsr_trace::report::keys::MPI_COLLECTIVES, 1.0);
}

/// Ring allreduce over an ordered participant subset (every participant
/// calls this with the same list). Non-participants must not call.
///
/// Wire compression: each reduce-scatter hop encodes the partial sum for
/// the wire and the receiver accumulates the decoded values in f32. After
/// reduce-scatter, the owner **re-quantizes its fully reduced block once**
/// — the allgather then circulates already-quantized values, whose
/// re-encode is lossless, so every rank finishes with bit-identical
/// buffers (see `docs/WIRE.md`).
fn ring_allreduce(
    comm: &mut Comm,
    buf: &mut [f32],
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    op: ReduceOp,
    wf: WireFormat,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let len = buf.len();

    // reduce-scatter: after p-1 steps, participant i owns the fully reduced
    // chunk (i+1) mod p
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let payload = wf.encode(&buf[chunk_range(len, p, send_chunk)]);
        let incoming = wire::decode(comm.sendrecv(
            right,
            coll_tag(seq, step as u64),
            payload,
            buf_id,
            left,
            coll_tag(seq, step as u64),
            buf_id,
        ));
        let r = chunk_range(len, p, recv_chunk);
        comm.charge_reduce(incoming.len());
        op.combine(&mut buf[r], &incoming);
    }

    // the owner's re-quantization point (see doc comment)
    if !wf.is_f32() {
        wf.quantize(&mut buf[chunk_range(len, p, (me + 1) % p)]);
    }

    // allgather: circulate reduced chunks
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let recv_chunk = (me + p - step) % p;
        let payload = wf.encode(&buf[chunk_range(len, p, send_chunk)]);
        let incoming = wire::decode(comm.sendrecv(
            right,
            coll_tag(seq, (p + step) as u64),
            payload,
            buf_id,
            left,
            coll_tag(seq, (p + step) as u64),
            buf_id,
        ));
        let r = chunk_range(len, p, recv_chunk);
        buf[r].copy_from_slice(&incoming);
    }
}

/// Number of `chunk_elems`-sized sub-chunks covering a block of `len`
/// elements (0 for an empty block).
fn sub_count(len: usize, chunk_elems: usize) -> usize {
    len.div_ceil(chunk_elems)
}

/// The `i`-th sub-chunk of `block`.
fn sub_range(
    block: &std::ops::Range<usize>,
    chunk_elems: usize,
    i: usize,
) -> std::ops::Range<usize> {
    let start = block.start + i * chunk_elems;
    let end = (start + chunk_elems).min(block.end);
    start..end
}

/// Tag-step encoding for pipelined ring traffic: phase step in the high
/// bits, sub-chunk index in the low 20.
fn pipeline_tag_step(phase_step: usize, chunk: usize) -> u64 {
    debug_assert!(chunk < (1 << 20));
    ((phase_step as u64) << 20) | chunk as u64
}

/// Chunked, pipelined ring allreduce: the exact ring schedule, but each
/// block moves as `chunk_elems`-sized sub-chunks over `isend`/`irecv` +
/// `wait`. The combine of sub-chunk *i* runs while the neighbour is already
/// transmitting sub-chunk *i+1*, so per ring step only one sub-chunk
/// reduction is on the virtual-clock critical path instead of the whole
/// block's.
///
/// Per-element combine order is identical to [`ring_allreduce`] —
/// sub-chunking only splits *which slice* a combine covers, never the rank
/// order in which a given element accumulates — and wire encode/decode and
/// the post-reduce-scatter re-quantization point are elementwise, so
/// results are bitwise equal to the plain ring for every `ReduceOp` and
/// every `WireFormat`.
#[allow(clippy::too_many_arguments)]
fn pipelined_ring_allreduce(
    comm: &mut Comm,
    buf: &mut [f32],
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    op: ReduceOp,
    chunk_elems: usize,
    group: Option<usize>,
    wf: WireFormat,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let len = buf.len();

    // Sub-chunks stream through the path the parent buffer's rendezvous
    // established (an IPC mapping covers the whole registered buffer), so
    // the NVLink-vs-staged decision keys on the full dense size — a 40 MB
    // pipelined allreduce rides NVLink when IPC works even though each
    // 4 MB sub-chunk is below the large-message threshold on its own.
    comm.set_rendezvous_bytes(Some((len * 4) as u64));

    // reduce-scatter, then allgather — same block rotation as the plain
    // ring, each step streamed sub-chunk by sub-chunk.
    for phase in 0..2usize {
        // same re-quantization point as the plain ring: once, between the
        // phases, on the block this participant owns
        if phase == 1 && !wf.is_f32() {
            wf.quantize(&mut buf[chunk_range(len, p, (me + 1) % p)]);
        }
        for step in 0..p - 1 {
            let (send_block, recv_block) = if phase == 0 {
                (
                    chunk_range(len, p, (me + p - step) % p),
                    chunk_range(len, p, (me + p - step - 1) % p),
                )
            } else {
                (
                    chunk_range(len, p, (me + 1 + p - step) % p),
                    chunk_range(len, p, (me + p - step) % p),
                )
            };
            let phase_step = phase * p + step;
            let n_send = sub_count(send_block.len(), chunk_elems);
            let n_recv = sub_count(recv_block.len(), chunk_elems);
            // The send block is never written by this step's receives, so
            // sub-send i+1 can be posted the moment sub-recv i arrives —
            // *before* its reduce — putting the next transfer on the wire
            // while the reduce kernel runs. Consecutive sends stay at least
            // one sub-cycle apart, so wire occupancy is still serialized.
            let mut next_send = 0;
            let post_send = |comm: &mut Comm, buf: &[f32], next_send: &mut usize| {
                if *next_send < n_send {
                    let r = sub_range(&send_block, chunk_elems, *next_send);
                    comm.isend(
                        right,
                        coll_tag(seq, pipeline_tag_step(phase_step, *next_send)),
                        wf.encode(&buf[r]),
                        buf_id,
                    );
                    *next_send += 1;
                }
            };
            post_send(comm, buf, &mut next_send); // prime the pipeline
            for i in 0..n_recv {
                let t0 = comm.now();
                let req = comm.irecv(
                    left,
                    coll_tag(seq, pipeline_tag_step(phase_step, i)),
                    buf_id,
                );
                let incoming = wire::decode(comm.wait(req));
                post_send(comm, buf, &mut next_send);
                let r = sub_range(&recv_block, chunk_elems, i);
                let sub_bytes = incoming.len() * 4;
                if phase == 0 {
                    comm.charge_reduce(incoming.len());
                    op.combine(&mut buf[r], &incoming);
                } else {
                    buf[r].copy_from_slice(&incoming);
                }
                let label = if phase == 0 { "rs" } else { "ag" };
                dlsr_trace::record_span(
                    || match group {
                        Some(g) => format!("allreduce.pr[g{g}] {label}{step}.c{i} {sub_bytes}B"),
                        None => format!("allreduce.pr {label}{step}.c{i} {sub_bytes}B"),
                    },
                    dlsr_trace::cat::MPI,
                    t0,
                    comm.now(),
                );
            }
            while next_send < n_send {
                post_send(comm, buf, &mut next_send);
            }
        }
    }
    comm.set_rendezvous_bytes(None);
}

/// Recursive doubling: log2(p) full-buffer exchanges.
///
/// Wire compression quantizes *both* sides of every hop — the local
/// accumulator and the decoded incoming buffer — so each exchange computes
/// `Q(a) op Q(b)` on both partners. f32 `+`/`max`/`min` of two operands is
/// commutative, so partners agree bitwise after every hop, and by
/// induction all ranks finish identical.
fn recursive_doubling(comm: &mut Comm, buf: &mut [f32], buf_id: u64, op: ReduceOp, wf: WireFormat) {
    let p = comm.size();
    let rank = comm.rank();
    let seq = comm.next_seq();
    let mut mask = 1usize;
    let mut step = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        let payload = wf.encode(buf);
        let incoming = wire::decode(comm.sendrecv(
            partner,
            coll_tag(seq, step),
            payload,
            buf_id,
            partner,
            coll_tag(seq, step),
            buf_id,
        ));
        if !wf.is_f32() {
            wf.quantize(buf);
        }
        comm.charge_reduce(incoming.len());
        op.combine(buf, &incoming);
        mask <<= 1;
        step += 1;
    }
}

/// Hierarchical two-level allreduce (the MVAPICH2-GDR dense-GPU design).
///
/// Wire compression applies to the **inter-node leader ring only**: the
/// intra-node phases ride NVLink/IPC where bandwidth is plentiful and
/// stay lossless f32, which also keeps them bitwise identical to the
/// uncompressed two-level. With [`crate::config::CommTuning::hierarchical`]
/// on and the buffer in the pipelined size bin, the leader ring runs
/// chunk-pipelined (bitwise identical to the plain leader ring).
fn two_level(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    op: ReduceOp,
    group: Option<usize>,
    wf: WireFormat,
) {
    let seq = comm.next_seq();
    let topo = comm.topology().clone();
    let rank = comm.rank();
    let gpn = topo.gpus_per_node;
    let node = topo.node_of(rank);
    let leader = node * gpn;
    let is_leader = rank == leader;

    // Phase 1: binomial intra-node reduce to the leader (log₂(gpn)
    // rounds). These are the large intra-node GPU transfers the CUDA IPC
    // fix accelerates.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                comm.send(
                    leader + (r - mask),
                    coll_tag(seq, 0),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
                break;
            }
            let src = r + mask;
            if src < gpn {
                let incoming = comm.recv(leader + src, coll_tag(seq, 0), buf_id).into_f32();
                comm.charge_reduce(incoming.len());
                op.combine(buf, &incoming);
            }
            mask <<= 1;
        }
    }

    // Phase 2: inter-node ring allreduce among leaders over InfiniBand —
    // the only wire-compressed phase. Pipelined on the large bins when
    // hierarchical promotion is on.
    if topo.nodes > 1 && is_leader {
        let leaders: Vec<usize> = (0..topo.nodes).map(|n| n * gpn).collect();
        let tuning = comm.config().tuning;
        if tuning.hierarchical && (buf.len() * 4) as u64 >= tuning.pipeline_threshold {
            let chunk_elems = (tuning.pipeline_chunk as usize / 4).max(1);
            pipelined_ring_allreduce(
                comm,
                buf,
                &leaders,
                buf_id.wrapping_add(1),
                seq,
                op,
                chunk_elems,
                group,
                wf,
            );
        } else {
            ring_allreduce(comm, buf, &leaders, buf_id.wrapping_add(1), seq, op, wf);
        }
    }

    // Phase 3: binomial intra-node broadcast of the result.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                let src = leader + (r - mask);
                *buf = comm.recv(src, coll_tag(seq, 1), buf_id).into_f32();
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if r + mask < gpn {
                comm.send(
                    leader + r + mask,
                    coll_tag(seq, 1),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
            }
            mask >>= 1;
        }
    }
}

/// Top-k sparse allreduce: each rank selects its `k` largest-|g|
/// coordinates ([`wire::topk_indices`] — deterministic), circulates the
/// sparse sets around the ring in `p−1` hops, then **every** rank applies
/// all `p` sets densely in rank order `0..p`. Identical sets + identical
/// application order ⇒ bit-identical results everywhere, with no
/// re-quantization (values stay f32). The caller's fusion layer owns the
/// error-feedback residual: this schedule reduces exactly what it is
/// handed. Sum only.
fn topk_allreduce(comm: &mut Comm, buf: &mut [f32], buf_id: u64, seq: u64, k_permille: u16) {
    let p = comm.size();
    let me = comm.rank();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let k = wire::topk_count(buf.len(), k_permille);
    let own_idx = wire::topk_indices(buf, k);
    let own_val: Vec<f32> = own_idx.iter().map(|&i| buf[i as usize]).collect();
    let mut sets: Vec<Option<(Vec<u32>, Vec<f32>)>> = vec![None; p];
    let mut cur = (own_idx, own_val);
    sets[me] = Some(cur.clone());
    for step in 0..p - 1 {
        let payload = Payload::Sparse {
            idx: cur.0,
            val: cur.1,
        };
        let incoming = comm.sendrecv(
            right,
            coll_tag(seq, step as u64),
            payload,
            buf_id,
            left,
            coll_tag(seq, step as u64),
            buf_id,
        );
        cur = incoming.into_sparse();
        // after `step+1` hops the set arriving from the left originated at
        // rank me-(step+1)
        let src = (me + p - step - 1) % p;
        sets[src] = Some(cur.clone());
    }
    // dense application, every rank in the same order
    for v in buf.iter_mut() {
        *v = 0.0;
    }
    for set in sets.iter().flatten() {
        let (idx, val) = set;
        comm.charge_reduce(idx.len());
        for (&i, &v) in idx.iter().zip(val.iter()) {
            buf[i as usize] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    fn run_allreduce(
        nodes: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
    ) -> (Vec<Vec<f32>>, f64) {
        let topo = ClusterTopology::lassen(nodes);
        let res = MpiWorld::run(&topo, cfg, move |c| {
            // rank-dependent input: buf[i] = rank + i
            let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
            Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
            buf
        });
        let makespan = res.makespan();
        (res.ranks, makespan)
    }

    fn expected(p: usize, len: usize) -> Vec<f32> {
        // Σ_r (r + i) = p·i + p(p−1)/2
        (0..len)
            .map(|i| (p * i) as f32 + (p * (p - 1) / 2) as f32)
            .collect()
    }

    #[test]
    fn all_algorithms_produce_the_sequential_sum() {
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ] {
            for nodes in [1usize, 2, 4] {
                let p = nodes * 4;
                let (results, _) = run_allreduce(nodes, 37, MpiConfig::mpi_opt(), algo);
                let want = expected(p, 37);
                for (r, got) in results.iter().enumerate() {
                    for (a, b) in got.iter().zip(want.iter()) {
                        assert!(
                            (a - b).abs() < 1e-3,
                            "{algo:?} nodes={nodes} rank={r}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn buffer_smaller_than_world_still_works() {
        let (results, _) = run_allreduce(2, 3, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let want = expected(8, 3);
        for got in &results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn single_rank_world_is_identity() {
        let topo = ClusterTopology {
            name: "one".into(),
            nodes: 1,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = vec![1.0, 2.0];
            Allreduce::new(&mut buf).buf_id(1).run(c);
            buf
        });
        assert_eq!(res.ranks[0], vec![1.0, 2.0]);
    }

    #[test]
    fn mpi_opt_is_faster_than_default_for_large_messages() {
        // The core claim of the paper at the collective level: restoring
        // CUDA IPC makes large-message allreduce ≈2× faster on one node.
        let len = 8 << 20; // 32 MB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let speedup = t_default / t_opt;
        assert!(
            (1.5..3.0).contains(&speedup),
            "expected ≈2× speedup, got {speedup} ({t_default} vs {t_opt})"
        );
    }

    #[test]
    fn small_messages_see_no_ipc_benefit() {
        // Table I rows 1–2: below the IPC threshold both configs stage
        // through the host.
        let len = 1 << 10; // 4 KB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let ratio = t_default / t_opt;
        assert!(
            (0.9..1.1).contains(&ratio),
            "small-message ratio should be ≈1, got {ratio}"
        );
    }

    #[test]
    fn ring_beats_recursive_doubling_on_large_buffers() {
        let len = 4 << 20;
        let (_, t_ring) = run_allreduce(2, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let (_, t_rd) = run_allreduce(
            2,
            len,
            MpiConfig::mpi_opt(),
            AllreduceAlgorithm::RecursiveDoubling,
        );
        assert!(t_ring < t_rd, "ring {t_ring} vs recursive doubling {t_rd}");
    }

    /// Run an op-allreduce on a `1×gpus` world with awkward float inputs
    /// (`(rank·31 + i) · 0.1 − 1.7`: sums accumulate rounding error, so
    /// fold order is observable bitwise).
    fn run_op(
        gpus: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
        op: ReduceOp,
    ) -> Vec<Vec<f32>> {
        let topo = ClusterTopology {
            name: format!("pr-{gpus}"),
            nodes: 1,
            gpus_per_node: gpus,
        };
        MpiWorld::run(&topo, cfg, move |c| {
            let mut buf: Vec<f32> = (0..len)
                .map(|i| (c.rank() * 31 + i) as f32 * 0.1 - 1.7)
                .collect();
            Allreduce::new(&mut buf).buf_id(1).algo(algo).op(op).run(c);
            buf
        })
        .ranks
    }

    /// Bitwise reference for the ring family: element `j` of block `b`
    /// accumulates as a fold starting at rank `b`'s value, combining rank
    /// `b+1, b+2, …` in ring order (the order `ring_allreduce` combines).
    fn ring_fold_reference(p: usize, len: usize, op: ReduceOp) -> Vec<f32> {
        let input = |rank: usize, i: usize| (rank * 31 + i) as f32 * 0.1 - 1.7;
        let mut out = vec![0.0f32; len];
        for b in 0..p {
            for j in chunk_range(len, p, b) {
                let mut acc = input(b, j);
                for k in 1..p {
                    let mut v = [acc];
                    op.combine(&mut v, &[input((b + k) % p, j)]);
                    acc = v[0];
                }
                out[j] = acc;
            }
        }
        out
    }

    /// Property grid for the chunked pipelined ring: non-divisible buffer
    /// lengths, chunk sizes larger than the buffer, single-element chunks,
    /// 1-rank worlds and every `ReduceOp` must all reproduce the plain
    /// ring — and the sequential fold reference — bitwise.
    #[test]
    fn pipelined_ring_matches_plain_ring_bitwise() {
        for &gpus in &[1usize, 2, 3, 4] {
            for &len in &[0usize, 1, 5, 37, 1000] {
                for &chunk_bytes in &[4u64, 52, 4096, 1 << 30] {
                    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                        let mut cfg = MpiConfig::mpi_opt();
                        cfg.tuning.pipeline_chunk = chunk_bytes;
                        let plain = run_op(gpus, len, cfg.clone(), AllreduceAlgorithm::Ring, op);
                        let piped = run_op(gpus, len, cfg, AllreduceAlgorithm::PipelinedRing, op);
                        let want = if gpus == 1 {
                            (0..len).map(|i| i as f32 * 0.1 - 1.7).collect()
                        } else {
                            ring_fold_reference(gpus, len, op)
                        };
                        for r in 0..gpus {
                            assert_eq!(
                                piped[r], plain[r],
                                "pipelined != ring: p={gpus} len={len} chunk={chunk_bytes} {op:?} rank {r}"
                            );
                            assert_eq!(
                                piped[r].as_slice(),
                                want.as_slice(),
                                "pipelined != fold reference: p={gpus} len={len} chunk={chunk_bytes} {op:?} rank {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The point of pipelining: with blocks much larger than the chunk and
    /// a reduce kernel slow enough to matter, streaming sub-chunks hides
    /// most of the reduce time behind the next transfer.
    #[test]
    fn pipelined_ring_beats_plain_ring_when_reduce_is_exposed() {
        let len = 4 << 20; // 16 MB ⇒ 4 MB blocks on 4 ranks
        let mut cfg = MpiConfig::mpi_opt();
        cfg.tuning.pipeline_chunk = 1 << 20;
        cfg.reduce_bandwidth = 50.0e9;
        let (_, t_ring) = run_allreduce(1, len, cfg.clone(), AllreduceAlgorithm::Ring);
        let (_, t_piped) = run_allreduce(1, len, cfg, AllreduceAlgorithm::PipelinedRing);
        assert!(
            t_piped < t_ring,
            "pipelined {t_piped} should beat plain ring {t_ring}"
        );
    }

    #[test]
    fn auto_selection_follows_the_size_bins() {
        let topo = ClusterTopology::lassen(1);
        let chosen = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut small = vec![1.0f32; 64];
            let a_small = Allreduce::new(&mut small).buf_id(1).run(c);
            let mut mid = vec![1.0f32; 1 << 18]; // 1 MB
            let a_mid = Allreduce::new(&mut mid).buf_id(2).run(c);
            let mut big = vec![0.5f32; 4 << 20]; // 16 MB
            let a_big = Allreduce::new(&mut big).buf_id(3).run(c);
            assert_eq!(small, vec![4.0f32; 64]);
            assert_eq!(big, vec![2.0f32; 4 << 20]);
            (a_small, a_mid, a_big)
        })
        .ranks;
        for (s, m, b) in chosen {
            assert_eq!(s.algo, AllreduceAlgorithm::RecursiveDoubling);
            assert_eq!(m.algo, MpiConfig::mpi_opt().allreduce);
            assert_eq!(b.algo, AllreduceAlgorithm::PipelinedRing);
            // default tuning never compresses
            assert_eq!(s.wire, WireFormat::F32);
            assert_eq!(b.wire, WireFormat::F32);
        }
    }

    /// Run a compressed allreduce with awkward inputs on a multi-node
    /// world; return per-rank results.
    fn run_wire(
        nodes: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
        wf: WireFormat,
    ) -> Vec<Vec<f32>> {
        let topo = ClusterTopology::lassen(nodes);
        MpiWorld::run(&topo, cfg, move |c| {
            let mut buf: Vec<f32> = (0..len)
                .map(|i| (c.rank() * 31 + i) as f32 * 0.1 - 1.7)
                .collect();
            Allreduce::new(&mut buf)
                .buf_id(1)
                .algo(algo)
                .wire(wf)
                .run(c);
            buf
        })
        .ranks
    }

    /// The determinism contract of `docs/WIRE.md`: under every lossy dense
    /// format and every algorithm, all ranks finish with **bit-identical**
    /// buffers, and the lossy result stays close to the exact f32 one.
    #[test]
    fn compressed_formats_agree_across_ranks_and_track_f32() {
        for wf in [WireFormat::Bf16, WireFormat::Fp16] {
            for algo in AllreduceAlgorithm::ALL {
                let results = run_wire(2, 37, MpiConfig::mpi_opt(), algo, wf);
                let exact = run_wire(2, 37, MpiConfig::mpi_opt(), algo, WireFormat::F32);
                let first = &results[0];
                for (r, got) in results.iter().enumerate() {
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{wf} {algo:?}: rank {r} diverged bitwise"
                    );
                }
                for (a, b) in first.iter().zip(exact[0].iter()) {
                    // 8 ranks, |values| ≲ 30: half precision keeps ≲1%
                    // relative error per term.
                    assert!(
                        (a - b).abs() <= 0.02 * b.abs().max(1.0),
                        "{wf} {algo:?}: {a} drifted from exact {b}"
                    );
                }
            }
        }
    }

    /// Compression must not break the pipelined ring's bitwise equivalence
    /// to the plain ring (same combine order, same re-quantization point).
    #[test]
    fn compressed_pipelined_ring_matches_compressed_ring_bitwise() {
        for &len in &[5usize, 37, 1000] {
            let mut cfg = MpiConfig::mpi_opt();
            cfg.tuning.pipeline_chunk = 52;
            let plain = run_wire(
                1,
                len,
                cfg.clone(),
                AllreduceAlgorithm::Ring,
                WireFormat::Bf16,
            );
            let piped = run_wire(
                1,
                len,
                cfg,
                AllreduceAlgorithm::PipelinedRing,
                WireFormat::Bf16,
            );
            assert_eq!(plain, piped, "len={len}");
        }
    }

    /// Hierarchical promotion only changes *timing* (pipelined leader
    /// ring), never bits: two-level with the flag on must equal two-level
    /// with it off, for lossless and lossy wire formats alike.
    #[test]
    fn hierarchical_two_level_is_bitwise_equal_to_plain_two_level() {
        for wf in [WireFormat::F32, WireFormat::Bf16] {
            let plain = run_wire(
                2,
                4096,
                MpiConfig::mpi_opt(),
                AllreduceAlgorithm::TwoLevel,
                wf,
            );
            let hier_cfg = MpiConfig::mpi_opt()
                .to_builder()
                .hierarchical(true)
                .pipeline_threshold(1 << 10) // 4096 elems = 16 KiB ⇒ pipelined
                .rd_threshold(1 << 9)
                .build();
            let hier = run_wire(2, 4096, hier_cfg, AllreduceAlgorithm::TwoLevel, wf);
            assert_eq!(plain, hier, "{wf}");
        }
    }

    /// Top-k at full density (1000‰) must reproduce the dense rank-order
    /// sum bitwise on every rank; at partial density all ranks must still
    /// agree bitwise.
    #[test]
    fn topk_is_deterministic_and_exact_at_full_density() {
        let input = |rank: usize, i: usize| (rank * 31 + i) as f32 * 0.1 - 1.7;
        let len = 37;
        let full = run_wire(
            1,
            len,
            MpiConfig::mpi_opt(),
            AllreduceAlgorithm::Ring,
            WireFormat::TopK { k_permille: 1000 },
        );
        // reference: dense accumulation in rank order 0..p
        let p = 4;
        let want: Vec<f32> = (0..len)
            .map(|i| {
                let mut acc = 0.0f32;
                for r in 0..p {
                    acc += input(r, i);
                }
                acc
            })
            .collect();
        for got in &full {
            assert_eq!(got, &want);
        }
        let sparse = run_wire(
            2,
            len,
            MpiConfig::mpi_opt(),
            AllreduceAlgorithm::Ring,
            WireFormat::TopK { k_permille: 200 },
        );
        let first = &sparse[0];
        for got in &sparse {
            assert_eq!(got, first, "top-k ranks diverged");
        }
        // partial density keeps only some coordinates: most must be zero
        let nonzero = first.iter().filter(|v| **v != 0.0).count();
        assert!(
            nonzero < len,
            "partial top-k should drop coordinates ({nonzero}/{len} kept)"
        );
        assert!(nonzero > 0, "top-k must keep at least one coordinate");
    }

    #[test]
    fn algorithm_display_and_from_str_round_trip() {
        for algo in AllreduceAlgorithm::ALL {
            assert_eq!(algo.to_string().parse::<AllreduceAlgorithm>(), Ok(algo));
        }
        assert_eq!(
            "Pipelined".parse::<AllreduceAlgorithm>(),
            Ok(AllreduceAlgorithm::PipelinedRing)
        );
        let err = "tree".parse::<AllreduceAlgorithm>().unwrap_err();
        assert!(err.contains("unknown allreduce algorithm `tree`"), "{err}");
    }
}
