//! `MPI_Allreduce` — the collective that dominates data-parallel DNN
//! training (gradient averaging, §II-C). Three algorithms:
//!
//! - **Ring** (reduce-scatter + allgather): bandwidth-optimal,
//!   `2·(p−1)/p·n` bytes per rank,
//! - **Recursive doubling**: latency-optimal for small messages
//!   (power-of-two worlds; falls back to ring otherwise),
//! - **Two-level** (MVAPICH2-GDR's dense-GPU design): flat intra-node
//!   reduce to a node leader over NVLink/staged paths, ring allreduce among
//!   leaders over InfiniBand, intra-node broadcast. This is the algorithm
//!   whose intra-node phases the paper's CUDA IPC fix accelerates.

use crate::comm::Comm;
use crate::message::Payload;

use super::{chunk_range, coll_tag, ReduceOp};

/// Allreduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgorithm {
    /// Bandwidth-optimal ring.
    Ring,
    /// Latency-optimal recursive doubling (power-of-two worlds).
    RecursiveDoubling,
    /// Hierarchical: intra-node flat reduce + inter-node ring + bcast.
    TwoLevel,
}

/// In-place sum-allreduce of `buf` across all ranks using the configured
/// algorithm.
pub fn allreduce(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) {
    let algo = comm.config().allreduce;
    allreduce_with(comm, buf, buf_id, algo);
}

/// In-place sum-allreduce with an explicit algorithm.
pub fn allreduce_with(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64, algo: AllreduceAlgorithm) {
    allreduce_op(comm, buf, buf_id, algo, ReduceOp::Sum);
}

/// In-place allreduce with an explicit algorithm and reduction operator.
pub fn allreduce_op(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    op: ReduceOp,
) {
    if comm.size() == 1 {
        return;
    }
    let bytes = buf.len() * 4;
    let t0 = comm.now();
    match algo {
        AllreduceAlgorithm::Ring => {
            let seq = comm.next_seq();
            let participants: Vec<usize> = (0..comm.size()).collect();
            ring_allreduce(comm, buf, &participants, buf_id, seq, op);
        }
        AllreduceAlgorithm::RecursiveDoubling => {
            if comm.size().is_power_of_two() {
                recursive_doubling(comm, buf, buf_id, op);
            } else {
                let seq = comm.next_seq();
                let participants: Vec<usize> = (0..comm.size()).collect();
                ring_allreduce(comm, buf, &participants, buf_id, seq, op);
            }
        }
        AllreduceAlgorithm::TwoLevel => two_level(comm, buf, buf_id, op),
    }
    dlsr_trace::record_span(
        || format!("allreduce.{algo:?} {bytes}B"),
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
}

/// Ring allreduce over an ordered participant subset (every participant
/// calls this with the same list). Non-participants must not call.
fn ring_allreduce(
    comm: &mut Comm,
    buf: &mut [f32],
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    op: ReduceOp,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let len = buf.len();

    // reduce-scatter: after p-1 steps, participant i owns the fully reduced
    // chunk (i+1) mod p
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let payload = Payload::F32(buf[chunk_range(len, p, send_chunk)].to_vec());
        let incoming = comm
            .sendrecv(
                right,
                coll_tag(seq, step as u64),
                payload,
                buf_id,
                left,
                coll_tag(seq, step as u64),
                buf_id,
            )
            .into_f32();
        let r = chunk_range(len, p, recv_chunk);
        comm.charge_reduce(incoming.len());
        op.combine(&mut buf[r], &incoming);
    }

    // allgather: circulate reduced chunks
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let recv_chunk = (me + p - step) % p;
        let payload = Payload::F32(buf[chunk_range(len, p, send_chunk)].to_vec());
        let incoming = comm
            .sendrecv(
                right,
                coll_tag(seq, (p + step) as u64),
                payload,
                buf_id,
                left,
                coll_tag(seq, (p + step) as u64),
                buf_id,
            )
            .into_f32();
        let r = chunk_range(len, p, recv_chunk);
        buf[r].copy_from_slice(&incoming);
    }
}

/// Recursive doubling: log2(p) full-buffer exchanges.
fn recursive_doubling(comm: &mut Comm, buf: &mut [f32], buf_id: u64, op: ReduceOp) {
    let p = comm.size();
    let rank = comm.rank();
    let seq = comm.next_seq();
    let mut mask = 1usize;
    let mut step = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        let incoming = comm
            .sendrecv(
                partner,
                coll_tag(seq, step),
                Payload::F32(buf.to_vec()),
                buf_id,
                partner,
                coll_tag(seq, step),
                buf_id,
            )
            .into_f32();
        comm.charge_reduce(incoming.len());
        op.combine(buf, &incoming);
        mask <<= 1;
        step += 1;
    }
}

/// Hierarchical two-level allreduce (the MVAPICH2-GDR dense-GPU design).
fn two_level(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64, op: ReduceOp) {
    let seq = comm.next_seq();
    let topo = comm.topology().clone();
    let rank = comm.rank();
    let gpn = topo.gpus_per_node;
    let node = topo.node_of(rank);
    let leader = node * gpn;
    let is_leader = rank == leader;

    // Phase 1: binomial intra-node reduce to the leader (log₂(gpn)
    // rounds). These are the large intra-node GPU transfers the CUDA IPC
    // fix accelerates.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                comm.send(
                    leader + (r - mask),
                    coll_tag(seq, 0),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
                break;
            }
            let src = r + mask;
            if src < gpn {
                let incoming = comm.recv(leader + src, coll_tag(seq, 0), buf_id).into_f32();
                comm.charge_reduce(incoming.len());
                op.combine(buf, &incoming);
            }
            mask <<= 1;
        }
    }

    // Phase 2: inter-node ring allreduce among leaders over InfiniBand.
    if topo.nodes > 1 && is_leader {
        let leaders: Vec<usize> = (0..topo.nodes).map(|n| n * gpn).collect();
        ring_allreduce(comm, buf, &leaders, buf_id.wrapping_add(1), seq, op);
    }

    // Phase 3: binomial intra-node broadcast of the result.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                let src = leader + (r - mask);
                *buf = comm.recv(src, coll_tag(seq, 1), buf_id).into_f32();
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if r + mask < gpn {
                comm.send(
                    leader + r + mask,
                    coll_tag(seq, 1),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    fn run_allreduce(
        nodes: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
    ) -> (Vec<Vec<f32>>, f64) {
        let topo = ClusterTopology::lassen(nodes);
        let res = MpiWorld::run(&topo, cfg, move |c| {
            // rank-dependent input: buf[i] = rank + i
            let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
            allreduce_with(c, &mut buf, 1, algo);
            buf
        });
        let makespan = res.makespan();
        (res.ranks, makespan)
    }

    fn expected(p: usize, len: usize) -> Vec<f32> {
        // Σ_r (r + i) = p·i + p(p−1)/2
        (0..len)
            .map(|i| (p * i) as f32 + (p * (p - 1) / 2) as f32)
            .collect()
    }

    #[test]
    fn all_algorithms_produce_the_sequential_sum() {
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ] {
            for nodes in [1usize, 2, 4] {
                let p = nodes * 4;
                let (results, _) = run_allreduce(nodes, 37, MpiConfig::mpi_opt(), algo);
                let want = expected(p, 37);
                for (r, got) in results.iter().enumerate() {
                    for (a, b) in got.iter().zip(want.iter()) {
                        assert!(
                            (a - b).abs() < 1e-3,
                            "{algo:?} nodes={nodes} rank={r}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn buffer_smaller_than_world_still_works() {
        let (results, _) = run_allreduce(2, 3, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let want = expected(8, 3);
        for got in &results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn single_rank_world_is_identity() {
        let topo = ClusterTopology {
            name: "one".into(),
            nodes: 1,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = vec![1.0, 2.0];
            allreduce(c, &mut buf, 1);
            buf
        });
        assert_eq!(res.ranks[0], vec![1.0, 2.0]);
    }

    #[test]
    fn mpi_opt_is_faster_than_default_for_large_messages() {
        // The core claim of the paper at the collective level: restoring
        // CUDA IPC makes large-message allreduce ≈2× faster on one node.
        let len = 8 << 20; // 32 MB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let speedup = t_default / t_opt;
        assert!(
            (1.5..3.0).contains(&speedup),
            "expected ≈2× speedup, got {speedup} ({t_default} vs {t_opt})"
        );
    }

    #[test]
    fn small_messages_see_no_ipc_benefit() {
        // Table I rows 1–2: below the IPC threshold both configs stage
        // through the host.
        let len = 1 << 10; // 4 KB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let ratio = t_default / t_opt;
        assert!(
            (0.9..1.1).contains(&ratio),
            "small-message ratio should be ≈1, got {ratio}"
        );
    }

    #[test]
    fn ring_beats_recursive_doubling_on_large_buffers() {
        let len = 4 << 20;
        let (_, t_ring) = run_allreduce(2, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let (_, t_rd) = run_allreduce(
            2,
            len,
            MpiConfig::mpi_opt(),
            AllreduceAlgorithm::RecursiveDoubling,
        );
        assert!(t_ring < t_rd, "ring {t_ring} vs recursive doubling {t_rd}");
    }
}
