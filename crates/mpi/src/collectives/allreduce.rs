//! `MPI_Allreduce` — the collective that dominates data-parallel DNN
//! training (gradient averaging, §II-C). Four algorithms:
//!
//! - **Ring** (reduce-scatter + allgather): bandwidth-optimal,
//!   `2·(p−1)/p·n` bytes per rank,
//! - **Recursive doubling**: latency-optimal for small messages
//!   (power-of-two worlds; falls back to ring otherwise),
//! - **Two-level** (MVAPICH2-GDR's dense-GPU design): flat intra-node
//!   reduce to a node leader over NVLink/staged paths, ring allreduce among
//!   leaders over InfiniBand, intra-node broadcast. This is the algorithm
//!   whose intra-node phases the paper's CUDA IPC fix accelerates.
//! - **Pipelined ring**: the ring schedule with every block streamed in
//!   `pipeline_chunk`-byte sub-chunks over nonblocking p2p, so the GPU
//!   reduce of sub-chunk *i* overlaps the wire transfer of sub-chunk *i+1*
//!   and only one sub-chunk reduction per step stays exposed. Bitwise
//!   identical to **Ring** (same per-element combine order).
//!
//! [`allreduce_auto`] picks between them by message size
//! ([`crate::MpiConfig::select_allreduce`]), mirroring the paper's
//! size-binned tuning.

use crate::comm::Comm;
use crate::message::Payload;

use super::{chunk_range, coll_tag, ReduceOp};

/// Allreduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllreduceAlgorithm {
    /// Bandwidth-optimal ring.
    Ring,
    /// Latency-optimal recursive doubling (power-of-two worlds).
    RecursiveDoubling,
    /// Hierarchical: intra-node flat reduce + inter-node ring + bcast.
    TwoLevel,
    /// Ring with chunked, pipelined blocks (nonblocking p2p; reduce of one
    /// sub-chunk overlaps the transfer of the next).
    PipelinedRing,
}

/// In-place sum-allreduce of `buf` across all ranks using the configured
/// algorithm.
pub fn allreduce(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) {
    let algo = comm.config().allreduce;
    allreduce_with(comm, buf, buf_id, algo);
}

/// In-place sum-allreduce with an explicit algorithm.
pub fn allreduce_with(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64, algo: AllreduceAlgorithm) {
    allreduce_op(comm, buf, buf_id, algo, ReduceOp::Sum);
}

/// In-place sum-allreduce with the algorithm chosen by message size
/// (`MpiConfig::select_allreduce`). Returns the algorithm used, which is a
/// pure function of the buffer size — every rank, and both the sequential
/// and overlapped optimizer paths, make the same choice.
pub fn allreduce_auto(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64) -> AllreduceAlgorithm {
    allreduce_auto_labeled(comm, buf, buf_id, None)
}

/// [`allreduce_auto`] with an optional fusion-group index carried into the
/// trace span names, so overlapped per-group (and per-chunk) spans can be
/// told apart in the chrome timeline.
pub fn allreduce_auto_labeled(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    group: Option<usize>,
) -> AllreduceAlgorithm {
    let algo = comm.config().select_allreduce((buf.len() * 4) as u64);
    allreduce_grouped(comm, buf, buf_id, algo, ReduceOp::Sum, group);
    algo
}

/// In-place allreduce with an explicit algorithm and reduction operator.
pub fn allreduce_op(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    op: ReduceOp,
) {
    allreduce_grouped(comm, buf, buf_id, algo, op, None);
}

fn allreduce_grouped(
    comm: &mut Comm,
    buf: &mut Vec<f32>,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    op: ReduceOp,
    group: Option<usize>,
) {
    if comm.size() == 1 {
        return;
    }
    comm.verify_coll(
        "allreduce",
        crate::verify::op_name(op),
        "f32",
        buf.len(),
        crate::verify::algo_name(algo),
        group,
        0,
    );
    let bytes = buf.len() * 4;
    let t0 = comm.now();
    match algo {
        AllreduceAlgorithm::Ring => {
            let seq = comm.next_seq();
            let participants: Vec<usize> = (0..comm.size()).collect();
            ring_allreduce(comm, buf, &participants, buf_id, seq, op);
        }
        AllreduceAlgorithm::RecursiveDoubling => {
            if comm.size().is_power_of_two() {
                recursive_doubling(comm, buf, buf_id, op);
            } else {
                let seq = comm.next_seq();
                let participants: Vec<usize> = (0..comm.size()).collect();
                ring_allreduce(comm, buf, &participants, buf_id, seq, op);
            }
        }
        AllreduceAlgorithm::TwoLevel => two_level(comm, buf, buf_id, op),
        AllreduceAlgorithm::PipelinedRing => {
            let seq = comm.next_seq();
            let participants: Vec<usize> = (0..comm.size()).collect();
            let chunk_elems = (comm.config().pipeline_chunk as usize / 4).max(1);
            pipelined_ring_allreduce(
                comm,
                buf,
                &participants,
                buf_id,
                seq,
                op,
                chunk_elems,
                group,
            );
        }
    }
    dlsr_trace::record_span(
        || match group {
            Some(g) => format!("allreduce.{algo:?}[g{g}] {bytes}B"),
            None => format!("allreduce.{algo:?} {bytes}B"),
        },
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
    dlsr_trace::counter_add(dlsr_trace::report::keys::MPI_COLLECTIVES, 1.0);
}

/// Ring allreduce over an ordered participant subset (every participant
/// calls this with the same list). Non-participants must not call.
fn ring_allreduce(
    comm: &mut Comm,
    buf: &mut [f32],
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    op: ReduceOp,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let len = buf.len();

    // reduce-scatter: after p-1 steps, participant i owns the fully reduced
    // chunk (i+1) mod p
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let payload = Payload::F32(buf[chunk_range(len, p, send_chunk)].to_vec());
        let incoming = comm
            .sendrecv(
                right,
                coll_tag(seq, step as u64),
                payload,
                buf_id,
                left,
                coll_tag(seq, step as u64),
                buf_id,
            )
            .into_f32();
        let r = chunk_range(len, p, recv_chunk);
        comm.charge_reduce(incoming.len());
        op.combine(&mut buf[r], &incoming);
    }

    // allgather: circulate reduced chunks
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let recv_chunk = (me + p - step) % p;
        let payload = Payload::F32(buf[chunk_range(len, p, send_chunk)].to_vec());
        let incoming = comm
            .sendrecv(
                right,
                coll_tag(seq, (p + step) as u64),
                payload,
                buf_id,
                left,
                coll_tag(seq, (p + step) as u64),
                buf_id,
            )
            .into_f32();
        let r = chunk_range(len, p, recv_chunk);
        buf[r].copy_from_slice(&incoming);
    }
}

/// Number of `chunk_elems`-sized sub-chunks covering a block of `len`
/// elements (0 for an empty block).
fn sub_count(len: usize, chunk_elems: usize) -> usize {
    len.div_ceil(chunk_elems)
}

/// The `i`-th sub-chunk of `block`.
fn sub_range(
    block: &std::ops::Range<usize>,
    chunk_elems: usize,
    i: usize,
) -> std::ops::Range<usize> {
    let start = block.start + i * chunk_elems;
    let end = (start + chunk_elems).min(block.end);
    start..end
}

/// Tag-step encoding for pipelined ring traffic: phase step in the high
/// bits, sub-chunk index in the low 20.
fn pipeline_tag_step(phase_step: usize, chunk: usize) -> u64 {
    debug_assert!(chunk < (1 << 20));
    ((phase_step as u64) << 20) | chunk as u64
}

/// Chunked, pipelined ring allreduce: the exact ring schedule, but each
/// block moves as `chunk_elems`-sized sub-chunks over `isend`/`irecv` +
/// `wait`. The combine of sub-chunk *i* runs while the neighbour is already
/// transmitting sub-chunk *i+1*, so per ring step only one sub-chunk
/// reduction is on the virtual-clock critical path instead of the whole
/// block's.
///
/// Per-element combine order is identical to [`ring_allreduce`] —
/// sub-chunking only splits *which slice* a combine covers, never the rank
/// order in which a given element accumulates — so results are bitwise
/// equal to the plain ring for every `ReduceOp`.
#[allow(clippy::too_many_arguments)]
fn pipelined_ring_allreduce(
    comm: &mut Comm,
    buf: &mut [f32],
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    op: ReduceOp,
    chunk_elems: usize,
    group: Option<usize>,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let len = buf.len();

    // reduce-scatter, then allgather — same block rotation as the plain
    // ring, each step streamed sub-chunk by sub-chunk.
    for phase in 0..2usize {
        for step in 0..p - 1 {
            let (send_block, recv_block) = if phase == 0 {
                (
                    chunk_range(len, p, (me + p - step) % p),
                    chunk_range(len, p, (me + p - step - 1) % p),
                )
            } else {
                (
                    chunk_range(len, p, (me + 1 + p - step) % p),
                    chunk_range(len, p, (me + p - step) % p),
                )
            };
            let phase_step = phase * p + step;
            let n_send = sub_count(send_block.len(), chunk_elems);
            let n_recv = sub_count(recv_block.len(), chunk_elems);
            // The send block is never written by this step's receives, so
            // sub-send i+1 can be posted the moment sub-recv i arrives —
            // *before* its reduce — putting the next transfer on the wire
            // while the reduce kernel runs. Consecutive sends stay at least
            // one sub-cycle apart, so wire occupancy is still serialized.
            let mut next_send = 0;
            let post_send = |comm: &mut Comm, buf: &[f32], next_send: &mut usize| {
                if *next_send < n_send {
                    let r = sub_range(&send_block, chunk_elems, *next_send);
                    comm.isend(
                        right,
                        coll_tag(seq, pipeline_tag_step(phase_step, *next_send)),
                        Payload::F32(buf[r].to_vec()),
                        buf_id,
                    );
                    *next_send += 1;
                }
            };
            post_send(comm, buf, &mut next_send); // prime the pipeline
            for i in 0..n_recv {
                let t0 = comm.now();
                let req = comm.irecv(
                    left,
                    coll_tag(seq, pipeline_tag_step(phase_step, i)),
                    buf_id,
                );
                let incoming = comm.wait(req).into_f32();
                post_send(comm, buf, &mut next_send);
                let r = sub_range(&recv_block, chunk_elems, i);
                let sub_bytes = incoming.len() * 4;
                if phase == 0 {
                    comm.charge_reduce(incoming.len());
                    op.combine(&mut buf[r], &incoming);
                } else {
                    buf[r].copy_from_slice(&incoming);
                }
                let label = if phase == 0 { "rs" } else { "ag" };
                dlsr_trace::record_span(
                    || match group {
                        Some(g) => format!("allreduce.pr[g{g}] {label}{step}.c{i} {sub_bytes}B"),
                        None => format!("allreduce.pr {label}{step}.c{i} {sub_bytes}B"),
                    },
                    dlsr_trace::cat::MPI,
                    t0,
                    comm.now(),
                );
            }
            while next_send < n_send {
                post_send(comm, buf, &mut next_send);
            }
        }
    }
}

/// Recursive doubling: log2(p) full-buffer exchanges.
fn recursive_doubling(comm: &mut Comm, buf: &mut [f32], buf_id: u64, op: ReduceOp) {
    let p = comm.size();
    let rank = comm.rank();
    let seq = comm.next_seq();
    let mut mask = 1usize;
    let mut step = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        let incoming = comm
            .sendrecv(
                partner,
                coll_tag(seq, step),
                Payload::F32(buf.to_vec()),
                buf_id,
                partner,
                coll_tag(seq, step),
                buf_id,
            )
            .into_f32();
        comm.charge_reduce(incoming.len());
        op.combine(buf, &incoming);
        mask <<= 1;
        step += 1;
    }
}

/// Hierarchical two-level allreduce (the MVAPICH2-GDR dense-GPU design).
fn two_level(comm: &mut Comm, buf: &mut Vec<f32>, buf_id: u64, op: ReduceOp) {
    let seq = comm.next_seq();
    let topo = comm.topology().clone();
    let rank = comm.rank();
    let gpn = topo.gpus_per_node;
    let node = topo.node_of(rank);
    let leader = node * gpn;
    let is_leader = rank == leader;

    // Phase 1: binomial intra-node reduce to the leader (log₂(gpn)
    // rounds). These are the large intra-node GPU transfers the CUDA IPC
    // fix accelerates.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                comm.send(
                    leader + (r - mask),
                    coll_tag(seq, 0),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
                break;
            }
            let src = r + mask;
            if src < gpn {
                let incoming = comm.recv(leader + src, coll_tag(seq, 0), buf_id).into_f32();
                comm.charge_reduce(incoming.len());
                op.combine(buf, &incoming);
            }
            mask <<= 1;
        }
    }

    // Phase 2: inter-node ring allreduce among leaders over InfiniBand.
    if topo.nodes > 1 && is_leader {
        let leaders: Vec<usize> = (0..topo.nodes).map(|n| n * gpn).collect();
        ring_allreduce(comm, buf, &leaders, buf_id.wrapping_add(1), seq, op);
    }

    // Phase 3: binomial intra-node broadcast of the result.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                let src = leader + (r - mask);
                *buf = comm.recv(src, coll_tag(seq, 1), buf_id).into_f32();
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if r + mask < gpn {
                comm.send(
                    leader + r + mask,
                    coll_tag(seq, 1),
                    Payload::F32(buf.clone()),
                    buf_id,
                );
            }
            mask >>= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    fn run_allreduce(
        nodes: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
    ) -> (Vec<Vec<f32>>, f64) {
        let topo = ClusterTopology::lassen(nodes);
        let res = MpiWorld::run(&topo, cfg, move |c| {
            // rank-dependent input: buf[i] = rank + i
            let mut buf: Vec<f32> = (0..len).map(|i| (c.rank() + i) as f32).collect();
            allreduce_with(c, &mut buf, 1, algo);
            buf
        });
        let makespan = res.makespan();
        (res.ranks, makespan)
    }

    fn expected(p: usize, len: usize) -> Vec<f32> {
        // Σ_r (r + i) = p·i + p(p−1)/2
        (0..len)
            .map(|i| (p * i) as f32 + (p * (p - 1) / 2) as f32)
            .collect()
    }

    #[test]
    fn all_algorithms_produce_the_sequential_sum() {
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
        ] {
            for nodes in [1usize, 2, 4] {
                let p = nodes * 4;
                let (results, _) = run_allreduce(nodes, 37, MpiConfig::mpi_opt(), algo);
                let want = expected(p, 37);
                for (r, got) in results.iter().enumerate() {
                    for (a, b) in got.iter().zip(want.iter()) {
                        assert!(
                            (a - b).abs() < 1e-3,
                            "{algo:?} nodes={nodes} rank={r}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn buffer_smaller_than_world_still_works() {
        let (results, _) = run_allreduce(2, 3, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let want = expected(8, 3);
        for got in &results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn single_rank_world_is_identity() {
        let topo = ClusterTopology {
            name: "one".into(),
            nodes: 1,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            let mut buf = vec![1.0, 2.0];
            allreduce(c, &mut buf, 1);
            buf
        });
        assert_eq!(res.ranks[0], vec![1.0, 2.0]);
    }

    #[test]
    fn mpi_opt_is_faster_than_default_for_large_messages() {
        // The core claim of the paper at the collective level: restoring
        // CUDA IPC makes large-message allreduce ≈2× faster on one node.
        let len = 8 << 20; // 32 MB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let speedup = t_default / t_opt;
        assert!(
            (1.5..3.0).contains(&speedup),
            "expected ≈2× speedup, got {speedup} ({t_default} vs {t_opt})"
        );
    }

    #[test]
    fn small_messages_see_no_ipc_benefit() {
        // Table I rows 1–2: below the IPC threshold both configs stage
        // through the host.
        let len = 1 << 10; // 4 KB
        let (_, t_default) = run_allreduce(
            1,
            len,
            MpiConfig::default_mpi(),
            AllreduceAlgorithm::TwoLevel,
        );
        let (_, t_opt) = run_allreduce(1, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::TwoLevel);
        let ratio = t_default / t_opt;
        assert!(
            (0.9..1.1).contains(&ratio),
            "small-message ratio should be ≈1, got {ratio}"
        );
    }

    #[test]
    fn ring_beats_recursive_doubling_on_large_buffers() {
        let len = 4 << 20;
        let (_, t_ring) = run_allreduce(2, len, MpiConfig::mpi_opt(), AllreduceAlgorithm::Ring);
        let (_, t_rd) = run_allreduce(
            2,
            len,
            MpiConfig::mpi_opt(),
            AllreduceAlgorithm::RecursiveDoubling,
        );
        assert!(t_ring < t_rd, "ring {t_ring} vs recursive doubling {t_rd}");
    }

    /// Run an op-allreduce on a `1×gpus` world with awkward float inputs
    /// (`(rank·31 + i) · 0.1 − 1.7`: sums accumulate rounding error, so
    /// fold order is observable bitwise).
    fn run_op(
        gpus: usize,
        len: usize,
        cfg: MpiConfig,
        algo: AllreduceAlgorithm,
        op: ReduceOp,
    ) -> Vec<Vec<f32>> {
        let topo = ClusterTopology {
            name: format!("pr-{gpus}"),
            nodes: 1,
            gpus_per_node: gpus,
        };
        MpiWorld::run(&topo, cfg, move |c| {
            let mut buf: Vec<f32> = (0..len)
                .map(|i| (c.rank() * 31 + i) as f32 * 0.1 - 1.7)
                .collect();
            allreduce_op(c, &mut buf, 1, algo, op);
            buf
        })
        .ranks
    }

    /// Bitwise reference for the ring family: element `j` of block `b`
    /// accumulates as a fold starting at rank `b`'s value, combining rank
    /// `b+1, b+2, …` in ring order (the order `ring_allreduce` combines).
    fn ring_fold_reference(p: usize, len: usize, op: ReduceOp) -> Vec<f32> {
        let input = |rank: usize, i: usize| (rank * 31 + i) as f32 * 0.1 - 1.7;
        let mut out = vec![0.0f32; len];
        for b in 0..p {
            for j in chunk_range(len, p, b) {
                let mut acc = input(b, j);
                for k in 1..p {
                    let mut v = [acc];
                    op.combine(&mut v, &[input((b + k) % p, j)]);
                    acc = v[0];
                }
                out[j] = acc;
            }
        }
        out
    }

    /// Property grid for the chunked pipelined ring: non-divisible buffer
    /// lengths, chunk sizes larger than the buffer, single-element chunks,
    /// 1-rank worlds and every `ReduceOp` must all reproduce the plain
    /// ring — and the sequential fold reference — bitwise.
    #[test]
    fn pipelined_ring_matches_plain_ring_bitwise() {
        for &gpus in &[1usize, 2, 3, 4] {
            for &len in &[0usize, 1, 5, 37, 1000] {
                for &chunk_bytes in &[4u64, 52, 4096, 1 << 30] {
                    for op in [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min] {
                        let mut cfg = MpiConfig::mpi_opt();
                        cfg.pipeline_chunk = chunk_bytes;
                        let plain = run_op(gpus, len, cfg.clone(), AllreduceAlgorithm::Ring, op);
                        let piped = run_op(gpus, len, cfg, AllreduceAlgorithm::PipelinedRing, op);
                        let want = if gpus == 1 {
                            (0..len).map(|i| i as f32 * 0.1 - 1.7).collect()
                        } else {
                            ring_fold_reference(gpus, len, op)
                        };
                        for r in 0..gpus {
                            assert_eq!(
                                piped[r], plain[r],
                                "pipelined != ring: p={gpus} len={len} chunk={chunk_bytes} {op:?} rank {r}"
                            );
                            assert_eq!(
                                piped[r].as_slice(),
                                want.as_slice(),
                                "pipelined != fold reference: p={gpus} len={len} chunk={chunk_bytes} {op:?} rank {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// The point of pipelining: with blocks much larger than the chunk and
    /// a reduce kernel slow enough to matter, streaming sub-chunks hides
    /// most of the reduce time behind the next transfer.
    #[test]
    fn pipelined_ring_beats_plain_ring_when_reduce_is_exposed() {
        let len = 4 << 20; // 16 MB ⇒ 4 MB blocks on 4 ranks
        let mut cfg = MpiConfig::mpi_opt();
        cfg.pipeline_chunk = 1 << 20;
        cfg.reduce_bandwidth = 50.0e9;
        let (_, t_ring) = run_allreduce(1, len, cfg.clone(), AllreduceAlgorithm::Ring);
        let (_, t_piped) = run_allreduce(1, len, cfg, AllreduceAlgorithm::PipelinedRing);
        assert!(
            t_piped < t_ring,
            "pipelined {t_piped} should beat plain ring {t_ring}"
        );
    }

    #[test]
    fn auto_selection_follows_the_size_bins() {
        let topo = ClusterTopology::lassen(1);
        let chosen = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            let mut small = vec![1.0f32; 64];
            let a_small = allreduce_auto(c, &mut small, 1);
            let mut mid = vec![1.0f32; 1 << 18]; // 1 MB
            let a_mid = allreduce_auto(c, &mut mid, 2);
            let mut big = vec![0.5f32; 4 << 20]; // 16 MB
            let a_big = allreduce_auto(c, &mut big, 3);
            assert_eq!(small, vec![4.0f32; 64]);
            assert_eq!(big, vec![2.0f32; 4 << 20]);
            (a_small, a_mid, a_big)
        })
        .ranks;
        for (s, m, b) in chosen {
            assert_eq!(s, AllreduceAlgorithm::RecursiveDoubling);
            assert_eq!(m, MpiConfig::mpi_opt().allreduce);
            assert_eq!(b, AllreduceAlgorithm::PipelinedRing);
        }
    }
}
