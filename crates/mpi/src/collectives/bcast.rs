//! Binomial-tree broadcast — `MPI_Bcast`, which Horovod uses to distribute
//! the initial model parameters (§III-A step 2).

use crate::comm::Comm;
use crate::message::Payload;

use super::coll_tag;

/// Broadcast `buf` from `root` to every rank (binomial tree, the MPICH
/// algorithm).
pub fn bcast(comm: &mut Comm, buf: &mut Vec<f32>, root: usize, buf_id: u64) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    // Element count deliberately not in the signature: non-root buffers
    // are replaced wholesale, so their pre-call lengths may differ.
    comm.verify_coll("bcast", "-", "f32", 0, "binomial", None, root);
    let rank = comm.rank();
    let seq = comm.next_seq();
    let relative = (rank + p - root) % p;
    let t0 = comm.now();
    let bytes = buf.len() * 4;

    // receive phase: find the bit that connects us to our parent
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let src = (rank + p - mask) % p;
            *buf = comm.recv(src, coll_tag(seq, 0), buf_id).into_f32();
            break;
        }
        mask <<= 1;
    }
    // forward phase
    mask >>= 1;
    while mask > 0 {
        if relative + mask < p {
            let dst = (rank + mask) % p;
            comm.send(dst, coll_tag(seq, 0), Payload::F32(buf.clone()), buf_id);
        }
        mask >>= 1;
    }
    dlsr_trace::record_span(
        || format!("bcast {bytes}B root{root}"),
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
    dlsr_trace::counter_add(dlsr_trace::report::keys::MPI_COLLECTIVES, 1.0);
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    #[test]
    fn all_ranks_receive_roots_buffer() {
        for nodes in [1usize, 2] {
            for root in [0usize, 2] {
                let topo = ClusterTopology::lassen(nodes);
                let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
                    let mut buf = if c.rank() == root {
                        vec![3.0, 1.0, 4.0, 1.0, 5.0]
                    } else {
                        vec![0.0; 5]
                    };
                    bcast(c, &mut buf, root, 1);
                    buf
                });
                for (r, buf) in res.ranks.iter().enumerate() {
                    assert_eq!(buf, &[3.0, 1.0, 4.0, 1.0, 5.0], "rank {r} root {root}");
                }
            }
        }
    }

    #[test]
    fn bcast_time_grows_logarithmically() {
        // Binomial tree: quadrupling the world should add ~2 more hops, not
        // 4× the time. Measure the *second* bcast so one-time registration
        // (pinning) costs don't pollute the comparison.
        let steady_time = |nodes: usize| {
            let topo = ClusterTopology::lassen(nodes);
            let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
                let mut buf = vec![1.0f32; 1 << 20];
                bcast(c, &mut buf, 0, 1);
                let warm = c.now();
                bcast(c, &mut buf, 0, 1);
                c.now() - warm
            });
            res.ranks.iter().copied().fold(0.0, f64::max)
        };
        let t4 = steady_time(1);
        let t16 = steady_time(4);
        assert!(t16 > t4, "more hops must cost more: t4={t4} t16={t16}");
        assert!(t16 < t4 * 4.0, "t4={t4} t16={t16}");
    }
}
