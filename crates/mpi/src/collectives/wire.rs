//! Gradient wire formats: what an allreduce puts on the fabric.
//!
//! The paper's scaling wall is communication, and the single
//! highest-leverage wire optimization in the Horovod lineage is sending
//! gradients in half precision: bf16 halves the charged wire bytes on the
//! bandwidth-bound size bins while **accumulation stays in f32**, so the
//! math every rank observes remains reproducible. [`WireFormat`] selects
//! the encoding per collective; the encode/decode here is deterministic
//! round-to-nearest-even integer bit manipulation — no ISA, thread-count,
//! or locale dependence — so compressed collectives keep the bitwise
//! determinism contract of `docs/CORRECTNESS.md` (see `docs/WIRE.md` for
//! the full contract, including where each algorithm re-quantizes so all
//! ranks land on identical bits).

use std::fmt;
use std::str::FromStr;

use crate::message::Payload;

/// Encoding of gradient payloads on the wire. Accumulation is always f32;
/// the format only changes what crosses the fabric (and therefore the
/// charged transfer time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Full-precision f32 — the lossless default (4 bytes/elem).
    #[default]
    F32,
    /// bfloat16: f32 with the mantissa truncated to 7 bits, RNE-rounded
    /// (2 bytes/elem). Same dynamic range as f32 — the standard gradient
    /// compression choice.
    Bf16,
    /// IEEE half precision, RNE-rounded with overflow to ±inf and gradual
    /// underflow (2 bytes/elem).
    Fp16,
    /// Magnitude top-k sparsification: each rank sends its `k_permille`‰
    /// largest-|g| coordinates as (index, f32 value) pairs; unsent
    /// coordinates stay in an error-feedback residual owned by the fusion
    /// layer. Sum-only.
    TopK {
        /// Kept coordinates per 1000 elements (1..=1000).
        k_permille: u16,
    },
}

/// Default top-k density: 50‰ = 5% of coordinates per round.
pub const DEFAULT_TOPK_PERMILLE: u16 = 50;

impl WireFormat {
    /// Every format, for sweeps and CLI help (top-k at its default
    /// density).
    pub const ALL: [WireFormat; 4] = [
        WireFormat::F32,
        WireFormat::Bf16,
        WireFormat::Fp16,
        WireFormat::TopK {
            k_permille: DEFAULT_TOPK_PERMILLE,
        },
    ];

    /// Short static label (top-k without its density — use `Display` for
    /// the full form).
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::F32 => "f32",
            WireFormat::Bf16 => "bf16",
            WireFormat::Fp16 => "fp16",
            WireFormat::TopK { .. } => "topk",
        }
    }

    /// Dtype string recorded in collective verify signatures: any
    /// wire-format skew between ranks must show up as a
    /// `CollectiveMismatch`, never a hang or a silent decode error.
    pub fn dtype_name(self) -> &'static str {
        self.label()
    }

    /// Charged wire bytes for an `elems`-element f32 buffer in this
    /// format. This is what the transport bills, replacing the hardwired
    /// `len * 4`.
    pub fn wire_bytes(self, elems: usize) -> u64 {
        match self {
            WireFormat::F32 => 4 * elems as u64,
            WireFormat::Bf16 | WireFormat::Fp16 => 2 * elems as u64,
            // (u32 index, f32 value) pairs.
            WireFormat::TopK { k_permille } => 8 * topk_count(elems, k_permille) as u64,
        }
    }

    /// Whether the format is the lossless f32 identity.
    pub fn is_f32(self) -> bool {
        self == WireFormat::F32
    }

    /// Quantize a slice in place: `decode(encode(x))` elementwise. This is
    /// the projection each algorithm applies at its re-quantization point
    /// so every rank holds bit-identical results (the projection is
    /// idempotent: re-encoding an already-quantized value is lossless).
    /// No-op for f32 and top-k (top-k never quantizes values).
    pub fn quantize(self, buf: &mut [f32]) {
        match self {
            WireFormat::F32 | WireFormat::TopK { .. } => {}
            WireFormat::Bf16 => {
                for v in buf {
                    *v = bf16_to_f32(bf16_bits(*v));
                }
            }
            WireFormat::Fp16 => {
                for v in buf {
                    *v = fp16_to_f32(fp16_bits(*v));
                }
            }
        }
    }

    /// Encode a dense f32 slice into a wire payload. Top-k is not a dense
    /// format — its sparse schedule builds `Payload::Sparse` directly.
    pub(crate) fn encode(self, src: &[f32]) -> Payload {
        match self {
            WireFormat::F32 => Payload::F32(src.to_vec()),
            WireFormat::Bf16 => Payload::Half {
                bits: src.iter().map(|&v| bf16_bits(v)).collect(),
                fp16: false,
            },
            WireFormat::Fp16 => Payload::Half {
                bits: src.iter().map(|&v| fp16_bits(v)).collect(),
                fp16: true,
            },
            WireFormat::TopK { .. } => {
                unreachable!("top-k rides its own sparse schedule, not dense encode")
            }
        }
    }
}

/// Decode a dense wire payload back to f32 (accepts the lossless f32
/// payload too, so f32 and half-precision flows share one receive path).
pub(crate) fn decode(payload: Payload) -> Vec<f32> {
    match payload {
        Payload::F32(v) => v,
        Payload::Half { bits, fp16: false } => bits.into_iter().map(bf16_to_f32).collect(),
        Payload::Half { bits, fp16: true } => bits.into_iter().map(fp16_to_f32).collect(),
        other => panic!(
            "collective expected a dense gradient payload, got {} — \
             wire-format skew between ranks? (build with the `verify` \
             feature to catch this at the rendezvous)",
            other.kind_name()
        ),
    }
}

/// f32 → bf16 bits, round-to-nearest-even. NaN stays NaN (quieted);
/// rounding may carry into the exponent, overflowing to ±inf exactly as
/// IEEE RNE prescribes.
pub fn bf16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    if x.is_nan() {
        // Preserve sign, force a quiet NaN that survives truncation.
        return ((b >> 16) as u16) | 0x0040;
    }
    // Add 0x7FFF + (lsb of the kept part): ties round to even.
    let round = ((b >> 16) & 1) + 0x7FFF;
    ((b + round) >> 16) as u16
}

/// bf16 bits → f32 (exact: bf16 is a prefix of f32).
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// f32 → IEEE fp16 bits, round-to-nearest-even, overflow to ±inf,
/// gradual underflow through subnormals.
pub fn fp16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let exp = ((b >> 23) & 0xFF) as i32;
    let man = b & 0x7F_FFFF;
    if exp == 0xFF {
        // inf / NaN: keep NaN-ness (set a high mantissa bit so the
        // truncated mantissa cannot collapse to inf).
        return if man != 0 {
            sign | 0x7E00 | ((man >> 13) as u16 & 0x01FF)
        } else {
            sign | 0x7C00
        };
    }
    let e = exp - 127 + 15; // rebias
    if e >= 31 {
        return sign | 0x7C00; // overflow → inf
    }
    if e <= 0 {
        // Subnormal half (or zero). Value = 1.man × 2^(e-1) in units of
        // the half subnormal step; shift out (14 - e) + 10 extra bits
        // with RNE.
        if e < -10 {
            return sign; // underflows to ±0 even after rounding
        }
        let m = man | 0x80_0000; // make the implicit bit explicit
        let shift = (14 - e) as u32; // 11..=24
        let kept = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let kept = kept + u32::from(rem > halfway || (rem == halfway && kept & 1 == 1));
        // A carry out of the subnormal mantissa lands on the smallest
        // normal — the encodings are contiguous, so plain add is correct.
        return sign | kept as u16;
    }
    let kept = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1FFF;
    let kept = kept + u32::from(rem > 0x1000 || (rem == 0x1000 && kept & 1 == 1));
    // Mantissa carry bumps the exponent (possibly to inf) — contiguous
    // encodings again make the plain add exact RNE.
    sign | kept as u16
}

/// IEEE fp16 bits → f32 (exact: every half value is representable).
pub fn fp16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;
    let bits = if exp == 0x1F {
        // inf / NaN
        sign | 0x7F80_0000 | (man << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (man << 13)
    } else if man == 0 {
        sign // ±0
    } else {
        // Subnormal: value = man × 2^-24; normalize into f32.
        let t = 31 - man.leading_zeros(); // MSB position, 0..=9
        sign | ((t + 103) << 23) | ((man << (23 - t)) & 0x7F_FFFF)
    };
    f32::from_bits(bits)
}

/// Number of coordinates a top-k round keeps for an `elems`-element
/// buffer: ⌊elems·k/1000⌋ clamped to `1..=elems` (zero-element buffers
/// keep zero).
pub fn topk_count(elems: usize, k_permille: u16) -> usize {
    if elems == 0 {
        return 0;
    }
    ((elems as u64 * k_permille as u64) / 1000).clamp(1, elems as u64) as usize
}

/// Deterministic top-k coordinate selection: the `k` largest-|v| indices,
/// ties broken toward the lower index, returned in ascending index order.
/// Pure function of the values — every rank recomputing its own selection
/// (e.g. the fusion layer updating residuals) gets the same answer.
pub fn topk_indices(buf: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..buf.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        let (va, vb) = (buf[a as usize].abs(), buf[b as usize].abs());
        vb.total_cmp(&va).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

impl fmt::Display for WireFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireFormat::TopK { k_permille } => write!(f, "topk:{k_permille}"),
            other => f.write_str(other.label()),
        }
    }
}

impl FromStr for WireFormat {
    type Err = String;

    /// Case-insensitive; `topk` takes an optional `:<permille>` density
    /// (`topk:125` keeps 12.5% of coordinates).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let unknown = || {
            format!(
                "unknown wire format `{s}` (expected one of: f32, bf16, fp16, \
                 topk, topk:<permille>)"
            )
        };
        let l = s.to_ascii_lowercase();
        match l.as_str() {
            "f32" => return Ok(WireFormat::F32),
            "bf16" => return Ok(WireFormat::Bf16),
            "fp16" | "f16" => return Ok(WireFormat::Fp16),
            "topk" => {
                return Ok(WireFormat::TopK {
                    k_permille: DEFAULT_TOPK_PERMILLE,
                })
            }
            _ => {}
        }
        if let Some(density) = l.strip_prefix("topk:") {
            let k: u16 = density.parse().map_err(|_| unknown())?;
            if !(1..=1000).contains(&k) {
                return Err(format!(
                    "top-k density `{density}`‰ out of range (expected 1..=1000)"
                ));
            }
            return Ok(WireFormat::TopK { k_permille: k });
        }
        Err(unknown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_round_trip_is_idempotent() {
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -3.75,
            1e-30,
            -1e30,
            f32::MAX,
            f32::MIN_POSITIVE,
            std::f32::consts::PI,
        ] {
            let once = bf16_to_f32(bf16_bits(x));
            let twice = bf16_to_f32(bf16_bits(once));
            assert_eq!(once.to_bits(), twice.to_bits(), "x = {x}");
        }
    }

    #[test]
    fn fp16_round_trip_is_idempotent() {
        for &x in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -3.75,
            6.1e-5,  // near the subnormal boundary
            5.96e-8, // smallest subnormal half neighbourhood
            65504.0, // fp16 max
            std::f32::consts::PI,
        ] {
            let once = fp16_to_f32(fp16_bits(x));
            let twice = fp16_to_f32(fp16_bits(once));
            assert_eq!(once.to_bits(), twice.to_bits(), "x = {x}");
        }
    }

    #[test]
    fn rne_ties_round_to_even() {
        // 1 + 2^-8 sits exactly between the two bf16 neighbours 1.0 and
        // 1 + 2^-7; RNE keeps the even mantissa (1.0).
        let tie = 1.0f32 + 2.0_f32.powi(-8);
        assert_eq!(bf16_to_f32(bf16_bits(tie)), 1.0);
        // 1 + 3·2^-8 ties between 1 + 2^-7 and 1 + 2^-6: even is 1 + 2^-6.
        let tie_up = 1.0f32 + 3.0 * 2.0_f32.powi(-8);
        assert_eq!(bf16_to_f32(bf16_bits(tie_up)), 1.0 + 2.0_f32.powi(-6));
        // fp16: 1 + 2^-11 ties between 1.0 and 1 + 2^-10 — stays 1.0.
        let tie16 = 1.0f32 + 2.0_f32.powi(-11);
        assert_eq!(fp16_to_f32(fp16_bits(tie16)), 1.0);
    }

    #[test]
    fn fp16_overflow_saturates_to_inf_and_bf16_rounds_to_inf() {
        assert!(fp16_to_f32(fp16_bits(1e6)).is_infinite());
        assert!(fp16_to_f32(fp16_bits(-1e6)).is_infinite());
        assert!(fp16_to_f32(fp16_bits(-1e6)) < 0.0);
        // Largest f32 rounds up past the largest bf16 into inf under RNE.
        assert!(bf16_to_f32(bf16_bits(f32::MAX)).is_infinite());
        assert!(bf16_to_f32(bf16_bits(3.38e38)).is_finite());
    }

    #[test]
    fn fp16_gradual_underflow() {
        // 2^-24 is the smallest subnormal half.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(fp16_to_f32(fp16_bits(tiny)), tiny);
        // Below half of it, RNE underflows to zero.
        assert_eq!(fp16_to_f32(fp16_bits(2.0_f32.powi(-26))), 0.0);
        // Gradients keep their sign through underflow.
        assert!(fp16_to_f32(fp16_bits(-2.0_f32.powi(-26))).is_sign_negative());
    }

    #[test]
    fn nan_survives_both_encodings() {
        assert!(bf16_to_f32(bf16_bits(f32::NAN)).is_nan());
        assert!(fp16_to_f32(fp16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_matches_elementwise_round_trip_and_is_idempotent() {
        let src: Vec<f32> = (0..257).map(|i| (i as f32 * 0.37 - 40.0).exp2()).collect();
        for wire in [WireFormat::Bf16, WireFormat::Fp16] {
            let mut a = src.clone();
            wire.quantize(&mut a);
            let mut b = a.clone();
            wire.quantize(&mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{wire} quantize must be idempotent"
            );
        }
        let mut c = src.clone();
        WireFormat::F32.quantize(&mut c);
        assert_eq!(c, src);
    }

    #[test]
    fn encode_decode_round_trips_quantized_values_losslessly() {
        let src: Vec<f32> = (0..64).map(|i| (i as f32) * 0.31 - 9.5).collect();
        for wire in [WireFormat::F32, WireFormat::Bf16, WireFormat::Fp16] {
            let mut q = src.clone();
            wire.quantize(&mut q);
            let back = decode(wire.encode(&q));
            assert_eq!(
                q.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn wire_bytes_shrink_as_advertised() {
        let elems = 2 << 20; // 8 MiB dense
        assert_eq!(WireFormat::F32.wire_bytes(elems), 4 * elems as u64);
        assert_eq!(WireFormat::Bf16.wire_bytes(elems), 2 * elems as u64);
        assert_eq!(WireFormat::Fp16.wire_bytes(elems), 2 * elems as u64);
        let topk = WireFormat::TopK { k_permille: 100 };
        // 10% of coordinates at 8 bytes each = 20% of the dense bytes.
        assert_eq!(topk.wire_bytes(elems), 8 * (elems as u64 / 10));
        // Tiny buffers still send at least one coordinate.
        assert_eq!(topk.wire_bytes(3), 8);
        assert_eq!(topk.wire_bytes(0), 0);
    }

    #[test]
    fn topk_selection_is_deterministic_and_magnitude_ordered() {
        let buf = [0.5f32, -3.0, 0.0, 3.0, -0.25, 1.0];
        // |−3.0| and |3.0| tie: the lower index (1) wins first, but both
        // beat everything else; k=3 adds index 5 (1.0).
        assert_eq!(topk_indices(&buf, 3), vec![1, 3, 5]);
        assert_eq!(topk_indices(&buf, 1), vec![1]);
        assert_eq!(topk_indices(&buf, 0), Vec::<u32>::new());
        assert_eq!(topk_indices(&buf, 99).len(), buf.len());
    }

    #[test]
    fn topk_count_bounds() {
        assert_eq!(topk_count(1000, 50), 50);
        assert_eq!(topk_count(10, 50), 1, "floor clamps up to one coordinate");
        assert_eq!(topk_count(4, 1000), 4);
        assert_eq!(topk_count(0, 50), 0);
    }

    #[test]
    fn display_and_from_str_round_trip() {
        for wire in WireFormat::ALL {
            let s = wire.to_string();
            assert_eq!(s.parse::<WireFormat>().unwrap(), wire, "{s}");
        }
        assert_eq!("BF16".parse::<WireFormat>().unwrap(), WireFormat::Bf16);
        assert_eq!(
            "topk:125".parse::<WireFormat>().unwrap(),
            WireFormat::TopK { k_permille: 125 }
        );
        let err = "f64".parse::<WireFormat>().unwrap_err();
        assert!(err.contains("unknown wire format `f64`"), "{err}");
        assert!("topk:0".parse::<WireFormat>().is_err());
        assert!("topk:1001".parse::<WireFormat>().is_err());
    }
}
