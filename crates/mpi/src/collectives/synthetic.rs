//! Costs-only mirrors of the collective algorithms.
//!
//! These run the *same* communication schedules as their real counterparts
//! in `allreduce.rs`/`bcast.rs` — same peers, same message sizes, same
//! paths, same registration and reduce-kernel charges — but payloads carry
//! only a byte count. They exist for the scaling harnesses (512 simulated
//! ranks × tens of MB of gradients), where moving real buffers would
//! exhaust host memory without changing any timing result.
//!
//! Equivalence with the real algorithms is asserted in tests: for the same
//! buffer size and world, virtual times agree to floating-point noise.
//!
//! The schedules themselves live in [`super::tasks`] as resumable
//! [`EventTask`](crate::executor::EventTask) state machines (so the driven
//! engine can park a rank mid-collective); the functions here block by
//! driving those tasks in place.

use crate::comm::Comm;
use crate::message::Payload;

use super::tasks::drive_allreduce_elems;
use super::wire::WireFormat;
use super::{coll_tag, AllreduceAlgorithm};

pub(crate) fn synth(elems: usize) -> Payload {
    synth_wire(elems, WireFormat::F32)
}

/// A costs-only payload sized as `elems` f32 values would be after wire
/// encoding — encode/decode cost nothing on the virtual clock, so matching
/// the encoded byte count is all a synthetic mirror needs for timing
/// equivalence with a compressed real collective.
pub(crate) fn synth_wire(elems: usize, wf: WireFormat) -> Payload {
    Payload::Synthetic {
        bytes: wf.wire_bytes(elems),
    }
}

/// Costs-only sum-allreduce of `elems` f32 elements.
pub fn allreduce_elems(comm: &mut Comm, elems: usize, buf_id: u64, algo: AllreduceAlgorithm) {
    drive_allreduce_elems(comm, elems, buf_id, algo, WireFormat::F32);
}

/// [`allreduce_elems`] with an explicit wire format: same schedule and
/// reduce charges as the real compressed collective, encoded payload
/// sizes on the wire.
pub fn allreduce_elems_wire(
    comm: &mut Comm,
    elems: usize,
    buf_id: u64,
    algo: AllreduceAlgorithm,
    wf: WireFormat,
) {
    drive_allreduce_elems(comm, elems, buf_id, algo, wf);
}

/// Costs-only broadcast of `elems` f32 elements from `root` (binomial).
pub fn bcast_elems(comm: &mut Comm, elems: usize, root: usize, buf_id: u64) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    comm.verify_coll("bcast", "-", "synth", 0, "binomial", None, root);
    let rank = comm.rank();
    let seq = comm.next_seq();
    let relative = (rank + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let src = (rank + p - mask) % p;
            let _ = comm.recv(src, coll_tag(seq, 0), buf_id);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if relative + mask < p {
            let dst = (rank + mask) % p;
            comm.send(dst, coll_tag(seq, 0), synth(elems), buf_id);
        }
        mask >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::super::{bcast, Allreduce};
    use super::*;

    /// The defining property: synthetic timing == real timing.
    #[test]
    fn synthetic_allreduce_times_match_real() {
        // pipeline_chunk 1 MB ⇒ the 20 MB buffer's ring blocks split into
        // multiple sub-chunks, exercising the pipelined schedule fully
        let mut opt_chunked = MpiConfig::mpi_opt();
        opt_chunked.tuning.pipeline_chunk = 1 << 20;
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
            AllreduceAlgorithm::PipelinedRing,
        ] {
            for cfg in [
                MpiConfig::default_mpi(),
                MpiConfig::mpi_opt(),
                opt_chunked.clone(),
            ] {
                let topo = ClusterTopology::lassen(2);
                let elems = 5_000_000usize; // 20 MB — exercises IPC threshold
                let t_real = MpiWorld::run(&topo, cfg.clone(), move |c| {
                    let mut buf = vec![1.0f32; elems];
                    Allreduce::new(&mut buf).buf_id(1).algo(algo).run(c);
                    c.now()
                })
                .makespan();
                let t_synth = MpiWorld::run(&topo, cfg, move |c| {
                    allreduce_elems(c, elems, 1, algo);
                    c.now()
                })
                .makespan();
                let rel = (t_real - t_synth).abs() / t_real;
                assert!(
                    rel < 1e-9,
                    "{algo:?}: real {t_real} vs synthetic {t_synth} (rel {rel})"
                );
            }
        }
    }

    /// Wire compression preserves the timing equivalence: a compressed
    /// real collective and its synthetic mirror agree for every format ×
    /// algorithm, including hierarchical promotion and top-k sparse.
    #[test]
    fn synthetic_wire_allreduce_times_match_real() {
        let hier = MpiConfig::mpi_opt()
            .to_builder()
            .hierarchical(true)
            .pipeline_chunk(1 << 20)
            .build();
        for wf in [
            WireFormat::Bf16,
            WireFormat::Fp16,
            WireFormat::TopK { k_permille: 50 },
        ] {
            for algo in [
                AllreduceAlgorithm::Ring,
                AllreduceAlgorithm::RecursiveDoubling,
                AllreduceAlgorithm::TwoLevel,
                AllreduceAlgorithm::PipelinedRing,
            ] {
                for cfg in [MpiConfig::mpi_opt(), hier.clone()] {
                    let topo = ClusterTopology::lassen(2);
                    let elems = 5_000_000usize;
                    let t_real = MpiWorld::run(&topo, cfg.clone(), move |c| {
                        let mut buf: Vec<f32> =
                            (0..elems).map(|i| (i % 97) as f32 * 0.3 - 11.0).collect();
                        Allreduce::new(&mut buf)
                            .buf_id(1)
                            .algo(algo)
                            .wire(wf)
                            .run(c);
                        c.now()
                    })
                    .makespan();
                    let t_synth = MpiWorld::run(&topo, cfg, move |c| {
                        allreduce_elems_wire(c, elems, 1, algo, wf);
                        c.now()
                    })
                    .makespan();
                    let rel = (t_real - t_synth).abs() / t_real;
                    assert!(
                        rel < 1e-9,
                        "{wf} {algo:?}: real {t_real} vs synthetic {t_synth} (rel {rel})"
                    );
                }
            }
        }
    }

    #[test]
    fn synthetic_bcast_times_match_real() {
        let topo = ClusterTopology::lassen(2);
        let elems = 1_000_000usize;
        let t_real = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            let mut buf = vec![1.0f32; elems];
            bcast(c, &mut buf, 0, 1);
            c.now()
        })
        .makespan();
        let t_synth = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            bcast_elems(c, elems, 0, 1);
            c.now()
        })
        .makespan();
        assert!(((t_real - t_synth) / t_real).abs() < 1e-9);
    }

    #[test]
    fn scales_to_512_synthetic_ranks() {
        // The reason this module exists: a 512-rank allreduce of a 10 MB
        // gradient runs in milliseconds of wall time and bytes of memory.
        let topo = ClusterTopology::lassen(128);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            allreduce_elems(c, 2_500_000, 1, AllreduceAlgorithm::TwoLevel);
            c.now()
        });
        assert_eq!(res.ranks.len(), 512);
        assert!(res.makespan() > 0.0);
    }
}
