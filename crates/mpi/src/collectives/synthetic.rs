//! Costs-only mirrors of the collective algorithms.
//!
//! These run the *same* communication schedules as their real counterparts
//! in `allreduce.rs`/`bcast.rs` — same peers, same message sizes, same
//! paths, same registration and reduce-kernel charges — but payloads carry
//! only a byte count. They exist for the scaling harnesses (512 simulated
//! ranks × tens of MB of gradients), where moving real buffers would
//! exhaust host memory without changing any timing result.
//!
//! Equivalence with the real algorithms is asserted in tests: for the same
//! buffer size and world, virtual times agree to floating-point noise.

use crate::comm::Comm;
use crate::message::Payload;

use super::{chunk_range, coll_tag, AllreduceAlgorithm};

fn synth(elems: usize) -> Payload {
    Payload::Synthetic {
        bytes: (elems * 4) as u64,
    }
}

/// Costs-only sum-allreduce of `elems` f32 elements.
pub fn allreduce_elems(comm: &mut Comm, elems: usize, buf_id: u64, algo: AllreduceAlgorithm) {
    if comm.size() == 1 {
        return;
    }
    comm.verify_coll(
        "allreduce",
        "sum",
        "synth",
        elems,
        crate::verify::algo_name(algo),
        None,
        0,
    );
    let t0 = comm.now();
    match algo {
        AllreduceAlgorithm::Ring => {
            let seq = comm.next_seq();
            let participants: Vec<usize> = (0..comm.size()).collect();
            ring_elems(comm, elems, &participants, buf_id, seq);
        }
        AllreduceAlgorithm::RecursiveDoubling => {
            if comm.size().is_power_of_two() {
                recursive_doubling_elems(comm, elems, buf_id);
            } else {
                let seq = comm.next_seq();
                let participants: Vec<usize> = (0..comm.size()).collect();
                ring_elems(comm, elems, &participants, buf_id, seq);
            }
        }
        AllreduceAlgorithm::TwoLevel => two_level_elems(comm, elems, buf_id),
        AllreduceAlgorithm::PipelinedRing => {
            let seq = comm.next_seq();
            let participants: Vec<usize> = (0..comm.size()).collect();
            let chunk_elems = (comm.config().pipeline_chunk as usize / 4).max(1);
            pipelined_ring_elems(comm, elems, &participants, buf_id, seq, chunk_elems);
        }
    }
    dlsr_trace::record_span(
        || format!("allreduce.{algo:?} {}B", elems * 4),
        dlsr_trace::cat::MPI,
        t0,
        comm.now(),
    );
}

fn ring_elems(comm: &mut Comm, elems: usize, participants: &[usize], buf_id: u64, seq: u64) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    for step in 0..p - 1 {
        let send_chunk = (me + p - step) % p;
        let recv_chunk = (me + p - step - 1) % p;
        let send_elems = chunk_range(elems, p, send_chunk).len();
        let recv_elems = chunk_range(elems, p, recv_chunk).len();
        let _ = comm.sendrecv(
            right,
            coll_tag(seq, step as u64),
            synth(send_elems),
            buf_id,
            left,
            coll_tag(seq, step as u64),
            buf_id,
        );
        comm.charge_reduce(recv_elems);
    }
    for step in 0..p - 1 {
        let send_chunk = (me + 1 + p - step) % p;
        let send_elems = chunk_range(elems, p, send_chunk).len();
        let _ = comm.sendrecv(
            right,
            coll_tag(seq, (p + step) as u64),
            synth(send_elems),
            buf_id,
            left,
            coll_tag(seq, (p + step) as u64),
            buf_id,
        );
    }
}

/// Costs-only mirror of `allreduce::pipelined_ring_allreduce`: the same
/// sub-chunk sends, waits and reduce-kernel charges in the same order.
fn pipelined_ring_elems(
    comm: &mut Comm,
    elems: usize,
    participants: &[usize],
    buf_id: u64,
    seq: u64,
    chunk_elems: usize,
) {
    let p = participants.len();
    if p <= 1 {
        return;
    }
    let me = participants
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller participates in the ring");
    let right = participants[(me + 1) % p];
    let left = participants[(me + p - 1) % p];
    let sub_count = |len: usize| len.div_ceil(chunk_elems);
    let sub_len = |block: &std::ops::Range<usize>, i: usize| {
        let start = block.start + i * chunk_elems;
        (start + chunk_elems).min(block.end) - start
    };
    for phase in 0..2usize {
        for step in 0..p - 1 {
            let (send_block, recv_block) = if phase == 0 {
                (
                    chunk_range(elems, p, (me + p - step) % p),
                    chunk_range(elems, p, (me + p - step - 1) % p),
                )
            } else {
                (
                    chunk_range(elems, p, (me + 1 + p - step) % p),
                    chunk_range(elems, p, (me + p - step) % p),
                )
            };
            let phase_step = ((phase * p + step) as u64) << 20;
            let n_send = sub_count(send_block.len());
            let n_recv = sub_count(recv_block.len());
            // Same schedule as the real path: sub-send i+1 is posted the
            // moment sub-recv i arrives, before its reduce charge.
            let mut next_send = 0;
            let post_send = |comm: &mut Comm, next_send: &mut usize| {
                if *next_send < n_send {
                    comm.isend(
                        right,
                        coll_tag(seq, phase_step | *next_send as u64),
                        synth(sub_len(&send_block, *next_send)),
                        buf_id,
                    );
                    *next_send += 1;
                }
            };
            post_send(comm, &mut next_send);
            for i in 0..n_recv {
                let req = comm.irecv(left, coll_tag(seq, phase_step | i as u64), buf_id);
                let _ = comm.wait(req);
                post_send(comm, &mut next_send);
                if phase == 0 {
                    comm.charge_reduce(sub_len(&recv_block, i));
                }
            }
            while next_send < n_send {
                post_send(comm, &mut next_send);
            }
        }
    }
}

fn recursive_doubling_elems(comm: &mut Comm, elems: usize, buf_id: u64) {
    let p = comm.size();
    let rank = comm.rank();
    let seq = comm.next_seq();
    let mut mask = 1usize;
    let mut step = 0u64;
    while mask < p {
        let partner = rank ^ mask;
        let _ = comm.sendrecv(
            partner,
            coll_tag(seq, step),
            synth(elems),
            buf_id,
            partner,
            coll_tag(seq, step),
            buf_id,
        );
        comm.charge_reduce(elems);
        mask <<= 1;
        step += 1;
    }
}

fn two_level_elems(comm: &mut Comm, elems: usize, buf_id: u64) {
    let seq = comm.next_seq();
    let topo = comm.topology().clone();
    let rank = comm.rank();
    let gpn = topo.gpus_per_node;
    let node = topo.node_of(rank);
    let leader = node * gpn;
    let is_leader = rank == leader;

    // Phase 1: binomial intra-node reduce (mirrors allreduce::two_level).
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                comm.send(leader + (r - mask), coll_tag(seq, 0), synth(elems), buf_id);
                break;
            }
            let src = r + mask;
            if src < gpn {
                let _ = comm.recv(leader + src, coll_tag(seq, 0), buf_id);
                comm.charge_reduce(elems);
            }
            mask <<= 1;
        }
    }
    // Phase 2: inter-node ring among leaders.
    if topo.nodes > 1 && is_leader {
        let leaders: Vec<usize> = (0..topo.nodes).map(|n| n * gpn).collect();
        ring_elems(comm, elems, &leaders, buf_id.wrapping_add(1), seq);
    }
    // Phase 3: binomial intra-node broadcast.
    if gpn > 1 {
        let r = rank - leader;
        let mut mask = 1usize;
        while mask < gpn {
            if r & mask != 0 {
                let _ = comm.recv(leader + (r - mask), coll_tag(seq, 1), buf_id);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if r + mask < gpn {
                comm.send(leader + r + mask, coll_tag(seq, 1), synth(elems), buf_id);
            }
            mask >>= 1;
        }
    }
}

/// Costs-only broadcast of `elems` f32 elements from `root` (binomial).
pub fn bcast_elems(comm: &mut Comm, elems: usize, root: usize, buf_id: u64) {
    let p = comm.size();
    if p == 1 {
        return;
    }
    comm.verify_coll("bcast", "-", "synth", 0, "binomial", None, root);
    let rank = comm.rank();
    let seq = comm.next_seq();
    let relative = (rank + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if relative & mask != 0 {
            let src = (rank + p - mask) % p;
            let _ = comm.recv(src, coll_tag(seq, 0), buf_id);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if relative + mask < p {
            let dst = (rank + mask) % p;
            comm.send(dst, coll_tag(seq, 0), synth(elems), buf_id);
        }
        mask >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::super::{allreduce_with, bcast};
    use super::*;

    /// The defining property: synthetic timing == real timing.
    #[test]
    fn synthetic_allreduce_times_match_real() {
        // pipeline_chunk 1 MB ⇒ the 20 MB buffer's ring blocks split into
        // multiple sub-chunks, exercising the pipelined schedule fully
        let mut opt_chunked = MpiConfig::mpi_opt();
        opt_chunked.pipeline_chunk = 1 << 20;
        for algo in [
            AllreduceAlgorithm::Ring,
            AllreduceAlgorithm::RecursiveDoubling,
            AllreduceAlgorithm::TwoLevel,
            AllreduceAlgorithm::PipelinedRing,
        ] {
            for cfg in [
                MpiConfig::default_mpi(),
                MpiConfig::mpi_opt(),
                opt_chunked.clone(),
            ] {
                let topo = ClusterTopology::lassen(2);
                let elems = 5_000_000usize; // 20 MB — exercises IPC threshold
                let t_real = MpiWorld::run(&topo, cfg.clone(), move |c| {
                    let mut buf = vec![1.0f32; elems];
                    allreduce_with(c, &mut buf, 1, algo);
                    c.now()
                })
                .makespan();
                let t_synth = MpiWorld::run(&topo, cfg, move |c| {
                    allreduce_elems(c, elems, 1, algo);
                    c.now()
                })
                .makespan();
                let rel = (t_real - t_synth).abs() / t_real;
                assert!(
                    rel < 1e-9,
                    "{algo:?}: real {t_real} vs synthetic {t_synth} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn synthetic_bcast_times_match_real() {
        let topo = ClusterTopology::lassen(2);
        let elems = 1_000_000usize;
        let t_real = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            let mut buf = vec![1.0f32; elems];
            bcast(c, &mut buf, 0, 1);
            c.now()
        })
        .makespan();
        let t_synth = MpiWorld::run(&topo, MpiConfig::mpi_opt(), move |c| {
            bcast_elems(c, elems, 0, 1);
            c.now()
        })
        .makespan();
        assert!(((t_real - t_synth) / t_real).abs() < 1e-9);
    }

    #[test]
    fn scales_to_512_synthetic_ranks() {
        // The reason this module exists: a 512-rank allreduce of a 10 MB
        // gradient runs in milliseconds of wall time and bytes of memory.
        let topo = ClusterTopology::lassen(128);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            allreduce_elems(c, 2_500_000, 1, AllreduceAlgorithm::TwoLevel);
            c.now()
        });
        assert_eq!(res.ranks.len(), 512);
        assert!(res.makespan() > 0.0);
    }
}
