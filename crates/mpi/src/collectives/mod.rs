//! Collective operations.
//!
//! All collectives operate on real `f32` buffers: results are bit-exact and
//! property-tested against sequential reductions. Timing falls out of the
//! p2p layer's virtual clocks.

mod allgather;
mod allreduce;
mod barrier;
mod bcast;
mod rooted;
pub mod synthetic;
pub mod tasks;
pub mod wire;

pub use allgather::allgather;
pub use allreduce::{Allreduce, AllreduceAlgorithm, CollectiveBuf};
// Re-exporting deprecated items trips the lint at the `pub use` itself;
// keep the old names importable for downstream code mid-migration.
#[allow(deprecated)]
pub use allreduce::{
    allreduce, allreduce_auto, allreduce_auto_labeled, allreduce_op, allreduce_with,
};
pub use barrier::barrier;
pub use bcast::bcast;
pub use rooted::{gather, reduce, scatter};
pub use wire::{WireFormat, DEFAULT_TOPK_PERMILLE};

/// Reduction operator (`MPI_Op`). Gradient averaging uses [`ReduceOp::Sum`];
/// Max/Min serve metric aggregation (e.g. slowest-rank step time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReduceOp {
    /// Elementwise sum (`MPI_SUM`).
    #[default]
    Sum,
    /// Elementwise maximum (`MPI_MAX`).
    Max,
    /// Elementwise minimum (`MPI_MIN`).
    Min,
}

impl ReduceOp {
    /// Combine `other` into `acc` elementwise.
    pub fn combine(self, acc: &mut [f32], other: &[f32]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a = a.max(b);
                }
            }
            ReduceOp::Min => {
                for (a, &b) in acc.iter_mut().zip(other) {
                    *a = a.min(b);
                }
            }
        }
    }
}

/// Tag namespace reserved for collective traffic.
pub(crate) const COLL_TAG_BASE: u64 = 1 << 62;

/// Compose a unique tag from a collective sequence number and a step index.
///
/// The step field is 32 bits wide so pipelined collectives can encode a
/// (phase step, chunk index) pair without colliding across sequence numbers.
pub(crate) fn coll_tag(seq: u64, step: u64) -> u64 {
    debug_assert!(step < (1 << 32));
    COLL_TAG_BASE | (seq << 32) | step
}

/// Chunk boundaries splitting `len` elements into `parts` ranges.
pub(crate) fn chunk_range(len: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    let start = i * len / parts;
    let end = (i + 1) * len / parts;
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_exactly() {
        for len in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 3, 4, 8] {
                let mut total = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let r = chunk_range(len, parts, i);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    total += r.len();
                }
                assert_eq!(total, len);
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn tags_are_unique_per_seq_step() {
        assert_ne!(coll_tag(1, 0), coll_tag(1, 1));
        assert_ne!(coll_tag(1, 0), coll_tag(2, 0));
        assert!(coll_tag(1, 0) >= COLL_TAG_BASE);
    }

    #[test]
    fn reduce_ops_combine() {
        let mut a = vec![1.0, 2.0];
        ReduceOp::Sum.combine(&mut a, &[0.5, 0.5]);
        assert_eq!(a, vec![1.5, 2.5]);
        let mut b = vec![1.0, 5.0];
        ReduceOp::Max.combine(&mut b, &[3.0, 2.0]);
        assert_eq!(b, vec![3.0, 5.0]);
        let mut c = vec![1.0, 5.0];
        ReduceOp::Min.combine(&mut c, &[3.0, 2.0]);
        assert_eq!(c, vec![1.0, 2.0]);
    }
}
