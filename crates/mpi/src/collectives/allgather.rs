//! Ring allgather.

use crate::comm::Comm;
use crate::message::Payload;

use super::coll_tag;

/// Gather every rank's buffer to all ranks (ring algorithm). Buffers may
/// have different lengths. Returns the contributions indexed by rank.
pub fn allgather(comm: &mut Comm, mine: Vec<f32>, buf_id: u64) -> Vec<Vec<f32>> {
    let p = comm.size();
    let rank = comm.rank();
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); p];
    if p == 1 {
        out[0] = mine;
        return out;
    }
    // Contribution lengths may legitimately differ per rank, so the
    // signature carries no element count.
    comm.verify_coll("allgather", "-", "f32", 0, "ring", None, 0);
    let seq = comm.next_seq();
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;
    out[rank] = mine;
    // step s: forward the block that originated at (rank − s) mod p
    for step in 0..p - 1 {
        let send_origin = (rank + p - step) % p;
        let recv_origin = (rank + p - step - 1) % p;
        let payload = Payload::F32(out[send_origin].clone());
        let incoming = comm
            .sendrecv(
                right,
                coll_tag(seq, step as u64),
                payload,
                buf_id,
                left,
                coll_tag(seq, step as u64),
                buf_id,
            )
            .into_f32();
        out[recv_origin] = incoming;
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use dlsr_net::ClusterTopology;

    use super::*;

    #[test]
    fn gathers_all_contributions_in_rank_order() {
        let topo = ClusterTopology::lassen(2);
        let res = MpiWorld::run(&topo, MpiConfig::mpi_opt(), |c| {
            // rank r contributes [r; r+1] (variable lengths)
            let mine = vec![c.rank() as f32; c.rank() + 1];
            allgather(c, mine, 1)
        });
        for (r, gathered) in res.ranks.iter().enumerate() {
            for (src, block) in gathered.iter().enumerate() {
                assert_eq!(block.len(), src + 1, "rank {r} block {src}");
                assert!(block.iter().all(|&v| v == src as f32));
            }
        }
    }

    #[test]
    fn single_rank() {
        let topo = ClusterTopology {
            name: "one".into(),
            nodes: 1,
            gpus_per_node: 1,
        };
        let res = MpiWorld::run(&topo, MpiConfig::default_mpi(), |c| {
            allgather(c, vec![9.0], 1)
        });
        assert_eq!(res.ranks[0], vec![vec![9.0]]);
    }
}
