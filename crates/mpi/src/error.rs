//! Typed communicator errors.
//!
//! The send/recv hot path returns [`CommError`] through the `try_*`
//! variants ([`crate::Comm::try_send`], [`crate::Comm::try_recv`],
//! [`crate::Comm::try_wait`]); transient transport faults are consumed
//! internally by the retry/backoff policy ([`crate::config::RetryPolicy`])
//! and only surface here once retries are exhausted. The panicking
//! wrappers (`send`/`recv`/`wait`) keep the PR-4 verifier convention for
//! terminal errors: one rank panicking tears down its channels, every
//! peer's blocking call fails, and the whole world aborts together
//! through `std::thread::scope` join.

use std::fmt;

use dlsr_net::TransportError;

/// A communicator operation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CommError {
    /// A peer rank outside `0..size` was addressed.
    InvalidRank {
        /// The offending rank argument.
        rank: usize,
        /// World size.
        size: usize,
    },
    /// A single transmission attempt failed (retried internally; exposed
    /// for diagnostics and tests).
    Transport(TransportError),
    /// Every transmission attempt of one message failed; the link is
    /// treated as down. Terminal.
    RetriesExhausted {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// How many attempts were made.
        attempts: u32,
        /// The last attempt's failure.
        last: TransportError,
    },
    /// A peer's channel endpoint is gone — some rank already aborted.
    /// Terminal.
    WorldTornDown {
        /// The rank observing the teardown.
        rank: usize,
    },
    /// The CUDA IPC handshake failed even though path selection chose the
    /// peer-to-peer path. Terminal (a config/topology bug, not a fault).
    Ipc(String),
    /// Sending this message would push the world's in-flight host bytes
    /// past the configured mailbox budget
    /// ([`crate::MpiConfig::sim_mailbox_budget`]) — the fabric refuses to
    /// queue it rather than grow without bound. Terminal.
    MailboxBudget {
        /// The sending rank.
        rank: usize,
        /// In-flight host bytes the send would have reached.
        in_flight: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for a {size}-rank world")
            }
            CommError::Transport(e) => write!(f, "transport fault: {e}"),
            CommError::RetriesExhausted {
                src,
                dst,
                attempts,
                last,
            } => write!(
                f,
                "link {src} -> {dst} down: {attempts} transmission attempts failed (last: {last})"
            ),
            CommError::WorldTornDown { rank } => {
                write!(f, "rank {rank}: peers exited, the world is torn down")
            }
            CommError::Ipc(msg) => write!(f, "CUDA IPC handshake failed: {msg}"),
            CommError::MailboxBudget {
                rank,
                in_flight,
                budget,
            } => write!(
                f,
                "rank {rank}: send would put {in_flight} in-flight host bytes past the \
                 {budget}-byte mailbox budget (raise MpiConfig::sim_mailbox_budget or drain \
                 receives sooner)"
            ),
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Transport(e) | CommError::RetriesExhausted { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for CommError {
    fn from(e: TransportError) -> Self {
        CommError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_errors_name_the_link_and_cause() {
        let e = CommError::RetriesExhausted {
            src: 1,
            dst: 6,
            attempts: 5,
            last: TransportError::Lost {
                src: 1,
                dst: 6,
                attempt: 5,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("1 -> 6") && msg.contains("5 transmission attempts"));
        assert!(std::error::Error::source(&e).is_some());
        let w: CommError = TransportError::Corrupted {
            src: 0,
            dst: 1,
            attempt: 2,
        }
        .into();
        assert!(matches!(w, CommError::Transport(_)));
    }
}
