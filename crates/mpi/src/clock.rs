//! Per-rank virtual time.

/// A monotone virtual clock in seconds.
///
/// Compute costs advance it locally; receives merge it with message arrival
/// times. All experiment timings reported by the workspace are differences
/// of virtual clocks.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct VClock(f64);

impl VClock {
    /// Clock at time zero.
    pub fn zero() -> Self {
        VClock(0.0)
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.0
    }

    /// Advance by a non-negative duration.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time step {dt}");
        debug_assert!(dt.is_finite(), "non-finite time step");
        self.0 += dt;
    }

    /// Merge with an event timestamp: the clock cannot observe an event
    /// before it happened.
    pub fn merge(&mut self, t: f64) {
        if t > self.0 {
            self.0 = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = VClock::zero();
        c.advance(1.5);
        c.advance(0.5);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn merge_is_max() {
        let mut c = VClock::zero();
        c.advance(3.0);
        c.merge(2.0);
        assert_eq!(c.now(), 3.0);
        c.merge(5.0);
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_advance_is_rejected_in_debug() {
        let mut c = VClock::zero();
        c.advance(-1.0);
    }
}
